"""Telemetry exporters: OpenMetrics text exposition, JSON-lines, CSV.

The OpenMetrics exporter emits a spec-conforming exposition document —
``# TYPE`` / ``# UNIT`` / ``# HELP`` metadata lines, sanitised metric
and label names, escaped label values and help text, a single ``# EOF``
terminator — so the output of ``python -m repro.telemetry`` is directly
scrapeable by a real Prometheus.  By default each series exposes its
latest sample (what a scraper sees); ``history=True`` emits every
timestamped sample, which stays within the grammar and is what the
EXPERIMENTS walkthrough plots.

Counter samples that coincided with a traced operation carry the obs
trace id as an OpenMetrics exemplar
(``... # {trace_id="42"} <value> <timestamp>``), linking a scraped
number back to the causal trace that produced it.

:func:`validate_openmetrics` is a small independent grammar checker
used by the unit tests and the smoke gate; it validates structure
(metadata ordering, name charset, sample syntax, EOF) rather than
re-implementing the full spec.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.series import iter_series

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, *, prefix: str = "") -> str:
    """Coerce *name* into the OpenMetrics metric-name charset."""
    out = _INVALID_CHARS.sub("_", name)
    if prefix:
        out = f"{prefix}_{out}"
    if not _NAME_RE.match(out):
        out = "_" + out
    return out


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    """Shortest exact decimal form (repr keeps round-trip fidelity)."""
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_NAME_RE.match(k) and k or sanitize_name(k)}='
        f'"{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


#: The media type scrapers expect for the exposition format (served by
#: the gateway's ``GET /metrics``).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")


def to_openmetrics(
    document: dict,
    *,
    prefix: str = "repro",
    history: bool = False,
) -> str:
    """Render a merged telemetry document as OpenMetrics text."""
    # Group series by family (metric name); one metadata block each.
    families: Dict[str, List[dict]] = {}
    for data in iter_series(document):
        families.setdefault(data["name"], []).append(data)

    lines: List[str] = []
    for name in sorted(families):
        group = families[name]
        kind = group[0].get("kind", "gauge")
        unit = group[0].get("unit", "")
        help_text = group[0].get("help", "")
        metric = sanitize_name(name, prefix=prefix)
        # A counter family's name must not carry the _total suffix; the
        # sample lines do.
        family = metric[:-6] if (kind == "counter"
                                 and metric.endswith("_total")) else metric
        lines.append(f"# TYPE {family} {kind}")
        if unit and family.endswith(f"_{unit}"):
            lines.append(f"# UNIT {family} {unit}")
        if help_text:
            lines.append(f"# HELP {family} {_escape(help_text)}")
        sample_name = family + "_total" if kind == "counter" else family
        for data in group:
            labels = _labels_text(data.get("labels", {}))
            samples = data["samples"]
            if not samples:
                continue
            if not history:
                samples = samples[-1:]
            exemplar = ""
            if kind == "counter" and data.get("exemplars"):
                t, v, trace_id = data["exemplars"][-1]
                exemplar = (f' # {{trace_id="{trace_id}"}} '
                            f"{_format_value(v)} {t / 1e9:.9f}")
            for index, (t, v) in enumerate(samples):
                # The exemplar (one per series) rides the final sample.
                tail = exemplar if index == len(samples) - 1 else ""
                lines.append(
                    f"{sample_name}{labels} {_format_value(v)} "
                    f"{t / 1e9:.9f}{tail}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ validator
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>-?(?:[0-9.eE+-]+|NaN|Inf|\+Inf|-Inf))"
    r"(?: (?P<ts>-?[0-9]+(?:\.[0-9]+)?))?"
    r"(?P<exemplar> # \{[^{}]*\} -?[0-9.eE+-]+"
    r"(?: -?[0-9]+(?:\.[0-9]+)?)?)?$"
)
_LABEL_ITEM_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$'
)
_METADATA_RE = re.compile(
    r"^# (?P<kw>TYPE|UNIT|HELP) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<rest>.*)$"
)


def validate_openmetrics(text: str) -> List[str]:
    """Check *text* against the exposition-format grammar.

    Returns a list of human-readable problems (empty = valid).  Checks
    the structural rules a scraper depends on: metric/label name
    charset, metadata syntax and placement, sample line syntax, exactly
    one ``# EOF`` as the final line.
    """
    errors: List[str] = []
    if not text.endswith("\n"):
        errors.append("document must end with a newline")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        errors.append("final line must be '# EOF'")
    typed: Dict[str, str] = {}
    seen_eof = False
    for lineno, line in enumerate(lines, 1):
        if seen_eof:
            errors.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            seen_eof = True
            continue
        if not line:
            errors.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            meta = _METADATA_RE.match(line)
            if meta is None:
                errors.append(f"line {lineno}: malformed metadata: {line!r}")
                continue
            if meta.group("kw") == "TYPE":
                family = meta.group("name")
                if family in typed:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {family}")
                typed[family] = meta.group("rest")
                if meta.group("rest") not in (
                        "counter", "gauge", "histogram", "summary",
                        "unknown", "info", "stateset", "gaugehistogram"):
                    errors.append(
                        f"line {lineno}: unknown type {meta.group('rest')!r}")
            continue
        sample = _SAMPLE_RE.match(line)
        if sample is None:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        labels = sample.group("labels")
        if labels:
            for item in _split_labels(labels[1:-1]):
                if item and not _LABEL_ITEM_RE.match(item):
                    errors.append(
                        f"line {lineno}: malformed label item: {item!r}")
        name = sample.group("name")
        family = name[:-6] if name.endswith("_total") else name
        if family not in typed and name not in typed:
            errors.append(
                f"line {lineno}: sample {name!r} precedes its TYPE line")
    if not seen_eof:
        errors.append("missing # EOF terminator")
    return errors


def _split_labels(inner: str) -> List[str]:
    """Split label pairs on commas outside quoted values."""
    items, depth, current = [], False, []
    for ch in inner:
        if ch == '"':
            depth = not depth
            current.append(ch)
        elif ch == "," and not depth:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        items.append("".join(current))
    return items


# ----------------------------------------------------------- jsonl / csv
def to_jsonl(document: dict) -> str:
    """One JSON object per sample — the full trajectory, stream-ready."""
    lines = []
    for data in iter_series(document):
        base = {
            "name": data["name"],
            "labels": data.get("labels", {}),
            "kind": data.get("kind", "gauge"),
        }
        for t, v in data["samples"]:
            row = dict(base)
            row["t_s"] = t / 1e9
            row["value"] = v
            lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def to_csv(document: dict) -> str:
    """``name,labels,t_s,value`` rows for spreadsheet-style tooling."""
    lines = ["name,labels,t_s,value"]
    for data in iter_series(document):
        labels = ";".join(f"{k}={v}" for k, v in
                          sorted(data.get("labels", {}).items()))
        for t, v in data["samples"]:
            lines.append(f"{data['name']},{labels},{t / 1e9:.9f},{v!r}")
    return "\n".join(lines) + "\n"


__all__ = ["to_openmetrics", "to_jsonl", "to_csv", "validate_openmetrics",
           "sanitize_name", "OPENMETRICS_CONTENT_TYPE"]
