"""Declarative health/SLO evaluation over telemetry windows.

A :class:`SloRule` states an invariant over a metric's trajectory —
``duty_cycle p95 < 1%``, ``reads_ok/reads_sent >= 99%`` per window,
``energy per node per day <= budget`` — and is evaluated over tumbling
windows of the merged series document.  The output distinguishes what a
snapshot-only report cannot: a fleet that *degraded and recovered*
(some failing windows, final window passing) from one that is *broken*
(still failing at the end) or was *healthy throughout*.

Everything is deterministic: window boundaries are a pure function of
the horizon and ``window_s``, aggregate math runs over the merged
document (itself a pure function of ``(scenario, seed)``), and verdict
floats are rounded before JSON encoding so verdicts are byte-stable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import percentile
from repro.telemetry.series import iter_series

#: Legal window aggregates.  ``delta`` (last minus first, summed over
#: label sets) is the right aggregate for cumulative counters; the
#: value aggregates suit level gauges.
AGGREGATES = ("last", "mean", "min", "max", "p50", "p95", "p99", "delta")

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class SloRule:
    """One health rule: an aggregate over windows compared to a bound.

    With ``ratio_to`` set, the rule evaluates
    ``delta(series) / delta(ratio_to)`` per window (both cumulative
    counters); windows where the denominator did not advance are
    skipped — no traffic is neither healthy nor unhealthy.  ``scale``
    multiplies the aggregate before comparison (e.g. normalising a
    windowed energy delta to joules per node per day).
    """

    name: str
    series: str
    aggregate: str = "last"
    op: str = "<"
    threshold: float = 0.0
    window_s: float = 10.0
    ratio_to: Optional[str] = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.aggregate not in AGGREGATES:
            raise ValueError(f"unknown aggregate: {self.aggregate!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison: {self.op!r}")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    # ---------------------------------------------------------------- parsing
    _GRAMMAR = re.compile(
        r"^\s*(?P<name>[\w.-]+)\s*:\s*"
        r"(?P<series>[\w]+)"
        r"(?:\s*/\s*(?P<denom>[\w]+))?"
        r"(?:\s*\.\s*(?P<agg>last|mean|min|max|p50|p95|p99|delta))?"
        r"\s*(?P<op><=|>=|<|>)\s*"
        r"(?P<threshold>-?[\d.eE+-]+)(?P<pct>%)?"
        r"(?:\s+window\s*=\s*(?P<window>[\d.]+)s?)?\s*$"
    )

    @classmethod
    def parse(cls, text: str) -> "SloRule":
        """Parse the compact rule syntax used by CLIs.

        ``name: series[.agg] OP threshold[%] [window=SECONDS]`` or
        ``name: num/den OP threshold[%] [window=SECONDS]`` (ratio of
        window deltas).  Examples::

            duty: radio_duty_cycle.p95 < 1% window=10
            completion: reads_ok_total/reads_sent_total >= 99% window=10
            queue: kernel_queue_depth.max < 5000
        """
        match = cls._GRAMMAR.match(text)
        if match is None:
            raise ValueError(f"cannot parse health rule: {text!r}")
        threshold = float(match.group("threshold"))
        if match.group("pct"):
            threshold /= 100.0
        denom = match.group("denom")
        agg = match.group("agg") or ("delta" if denom else "last")
        kwargs = dict(
            name=match.group("name"),
            series=match.group("series"),
            aggregate=agg,
            op=match.group("op"),
            threshold=threshold,
            ratio_to=denom,
        )
        if match.group("window"):
            kwargs["window_s"] = float(match.group("window"))
        return cls(**kwargs)


@dataclass(frozen=True)
class WindowVerdict:
    """One rule evaluated over one tumbling window."""

    t0_s: float
    t1_s: float
    value: float
    ok: bool

    def as_dict(self) -> dict:
        return {"t0_s": round(self.t0_s, 9), "t1_s": round(self.t1_s, 9),
                "value": round(self.value, 9), "ok": self.ok}


@dataclass
class RuleResult:
    """Everything one rule produced over the whole horizon."""

    rule: SloRule
    windows: List[WindowVerdict]

    @property
    def ok(self) -> bool:
        return all(w.ok for w in self.windows)

    @property
    def degraded_windows(self) -> List[WindowVerdict]:
        return [w for w in self.windows if not w.ok]

    @property
    def status(self) -> str:
        """``ok`` | ``degraded`` | ``recovered`` | ``no-data``.

        ``recovered`` means at least one window failed but the final
        evaluated window passed — degradation that healed, which an
        end-of-run snapshot cannot express.
        """
        if not self.windows:
            return "no-data"
        if self.ok:
            return "ok"
        return "recovered" if self.windows[-1].ok else "degraded"

    def as_dict(self) -> dict:
        return {
            "series": self.rule.series,
            "aggregate": self.rule.aggregate,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "window_s": self.rule.window_s,
            "ratio_to": self.rule.ratio_to,
            "status": self.status,
            "ok": self.ok,
            "degraded": len(self.degraded_windows),
            "windows": [w.as_dict() for w in self.windows],
        }


@dataclass
class HealthReport:
    """All rule results for one run."""

    results: List[RuleResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def status(self) -> str:
        """Worst rule status: degraded > recovered > ok > no-data."""
        statuses = {r.status for r in self.results}
        for status in ("degraded", "recovered", "ok"):
            if status in statuses:
                return status
        return "no-data"

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "status": self.status,
            "rules": {r.rule.name: r.as_dict() for r in self.results},
        }


def _windowed_samples(
    data: dict, t0_ns: int, t1_ns: int
) -> List[Tuple[int, float]]:
    return [(t, v) for t, v in data["samples"] if t0_ns <= t < t1_ns]


def _window_delta(data: dict, t0_ns: int, t1_ns: int) -> float:
    """last-in-window minus last-before-window of a cumulative series."""
    baseline = 0.0
    last = None
    for t, v in data["samples"]:
        if t < t0_ns:
            baseline = v
        elif t < t1_ns:
            last = v
        else:
            break
    return 0.0 if last is None else last - baseline


def _aggregate(rule: SloRule, document: dict,
               t0_ns: int, t1_ns: int) -> Optional[float]:
    """The rule's aggregate over one window; None = nothing to judge."""
    matching = list(iter_series(document, rule.series))
    if not matching:
        return None
    if rule.ratio_to is not None:
        num = sum(_window_delta(d, t0_ns, t1_ns) for d in matching)
        den = sum(_window_delta(d, t0_ns, t1_ns)
                  for d in iter_series(document, rule.ratio_to))
        return None if den == 0 else num / den
    if rule.aggregate == "delta":
        return sum(_window_delta(d, t0_ns, t1_ns) for d in matching)
    values = [v for d in matching
              for _, v in _windowed_samples(d, t0_ns, t1_ns)]
    if not values:
        return None
    if rule.aggregate == "last":
        # Per label set, the freshest sample; judge the worst of them.
        lasts = []
        for d in matching:
            window = _windowed_samples(d, t0_ns, t1_ns)
            if window:
                lasts.append(window[-1][1])
        return max(lasts) if rule.op in ("<", "<=") else min(lasts)
    if rule.aggregate == "mean":
        return sum(values) / len(values)
    if rule.aggregate == "min":
        return min(values)
    if rule.aggregate == "max":
        return max(values)
    return percentile(values, float(rule.aggregate[1:]))


def horizon_ns(document: dict) -> int:
    """Latest sample timestamp across every series (0 when empty)."""
    horizon = 0
    for data in iter_series(document):
        if data["samples"]:
            horizon = max(horizon, data["samples"][-1][0])
    return horizon


def evaluate_rule(rule: SloRule, document: dict) -> RuleResult:
    """Evaluate *rule* over tumbling windows spanning the document."""
    end_ns = horizon_ns(document)
    window_ns = int(rule.window_s * 1e9)
    windows: List[WindowVerdict] = []
    t0 = 0
    compare = _OPS[rule.op]
    while t0 < end_ns:
        t1 = min(t0 + window_ns, end_ns + 1)
        value = _aggregate(rule, document, t0, t1)
        if value is not None:
            value *= rule.scale
            windows.append(WindowVerdict(
                t0 / 1e9, min(t1, end_ns) / 1e9, value,
                compare(value, rule.threshold),
            ))
        t0 += window_ns
    return RuleResult(rule, windows)


def evaluate(rules: Sequence[SloRule], document: dict) -> HealthReport:
    """Evaluate every rule; results keep the caller's rule order."""
    return HealthReport([evaluate_rule(rule, document) for rule in rules])


#: Default rules for fleet/chaos runs: windowed read completion and a
#: radio duty-cycle ceiling.  The duty series measures whole-channel
#: airtime per shard (every node's frames), so the ceiling is a
#: channel-saturation guard — healthy scenarios sit around 2–4%;
#: retransmission storms push past 8%.
DEFAULT_RULES: Tuple[SloRule, ...] = (
    SloRule("read_completion", "reads_ok_total", aggregate="delta",
            ratio_to="reads_sent_total", op=">=", threshold=0.99,
            window_s=10.0),
    SloRule("duty_cycle_p95", "radio_duty_cycle", aggregate="p95",
            op="<", threshold=0.08, window_s=10.0),
)


__all__ = ["SloRule", "WindowVerdict", "RuleResult", "HealthReport",
           "evaluate", "evaluate_rule", "horizon_ns", "DEFAULT_RULES",
           "AGGREGATES"]
