"""The shard telemetry collector: sim-time sampling of every layer.

One :class:`ShardTelemetry` serves one
:class:`~repro.fleet.deployment.ShardDeployment`.  On a configurable
sim-time cadence (via the kernel's :meth:`Simulator.every` hook) it
probes:

* energy by category from each Thing's :class:`EnergyMeter`;
* radio TX/RX bytes, frames and the derived duty cycle (exact airtime
  from the network's frame counters);
* retransmission / duplicate-suppression / reply-cache-hit counts from
  the :mod:`repro.protocol.reliability` layer (as surfaced through the
  shard's metrics and the Things' caches);
* pending-table depth across client, manager and Things;
* VM cycles retired by the event routers;
* kernel event-queue depth.

Fleet-wide additive quantities are recorded without labels (they
``sum``-merge pointwise across shards); level-style quantities carry a
``shard`` label so merged documents keep per-shard trajectories; with
``per_node=True``, per-Thing energy/TX series carry a ``node`` label.

Sampling callbacks are read-only: they never mutate simulation state,
consume no RNG, and schedule nothing but their own next tick — a
telemetry-enabled run's workload behaviour is byte-identical to a
disabled run's (only the ``sim.events`` count differs, by exactly the
number of sampling ticks).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hw.power import EnergyMeter
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.series import SeriesBank
from repro.sim.kernel import ns_from_s

#: Counter series fed from shard metrics counters: telemetry name →
#: (metrics counter, help text).
_METRIC_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    ("reads_sent_total", "reads.sent", "Client read requests sent"),
    ("reads_ok_total", "reads.ok", "Client reads completed"),
    ("reads_timeout_total", "reads.timeout", "Client reads timed out"),
    ("driver_requests_total", "driver.requests",
     "Driver install requests issued by Things"),
    ("driver_installs_total", "driver.installs",
     "Driver images installed on Things"),
    ("identifications_total", "identifications",
     "Peripheral identification rounds completed"),
    ("reliability_retransmits_total", "reliability.retransmits",
     "Datagram retransmissions by the reliability layer"),
    ("reliability_dups_suppressed_total", "reliability.dups_suppressed",
     "Duplicate datagrams suppressed by receivers"),
    ("sim_events_total", "sim.events", "Simulator events executed"),
)


class ShardTelemetry:
    """Attach sim-time sampling to one shard deployment."""

    def __init__(self, deployment, config: TelemetryConfig) -> None:
        self.deployment = deployment
        self.config = config
        self.shard = deployment.spec.index
        self.bank = SeriesBank(capacity=config.capacity)
        self.cadence_ns = ns_from_s(config.cadence_s)
        self._shard_labels = {"shard": str(self.shard)}
        #: Previous cumulative values, for per-interval deltas
        #: (duty cycle, exemplar attachment).
        self._prev: Dict[str, float] = {}
        self._prev_airtime = 0.0
        #: Most recent traced operation seen since the last sample:
        #: ``(time_ns, trace_id)`` or None.
        self._last_traced: Optional[Tuple[int, int]] = None
        self._last_sample_ns = -1
        #: Sample subscribers (gateway streaming hook): called with
        #: ``(time_ns, collector)`` after every completed sample.
        #: Subscribers must be read-only, like sampling itself.
        self._sample_listeners = []
        self._exemplar_listener = None
        tracer = deployment.sim.tracer
        if config.exemplars and tracer is not None:
            self._exemplar_listener = self._on_trace_event
            tracer.add_listener(self._exemplar_listener)
        # Certified for fast-forward but *ordered* (independent=False):
        # sample() reads cross-cutting state (meters, metric counters,
        # queue depths) that certified samplers also mutate, so during a
        # skipped window each tick must observe every earlier-instant
        # bulk application — the kernel fires ordered handles in exact
        # merged (time, seq) order for precisely this case.
        self._periodic = deployment.sim.every(
            self.cadence_ns, self.sample, name="telemetry-sample",
            fast_forward=True, independent=False)
        # Anchor every series with a t=0 sample so window deltas and
        # plots start from the origin.
        self.sample()

    # ---------------------------------------------------------------- control
    def stop(self) -> None:
        """Stop sampling (lets ``sim.run()`` terminate).  Idempotent."""
        self._periodic.cancel()
        tracer = self.deployment.sim.tracer
        if tracer is not None and self._exemplar_listener is not None:
            tracer.remove_listener(self._exemplar_listener)
            self._exemplar_listener = None

    def _on_trace_event(self, event) -> None:
        if event.trace_id is not None:
            self._last_traced = (event.time_ns, event.trace_id)

    def add_sample_listener(self, listener) -> None:
        """Subscribe to sampling ticks: ``listener(time_ns, collector)``
        fires after each completed sample (the gateway's ``/stream``
        telemetry push rides this).  Listeners must not mutate
        simulation state — the read-only sampling contract extends to
        them."""
        self._sample_listeners.append(listener)

    def remove_sample_listener(self, listener) -> None:
        """Detach a sample subscriber.  Idempotent."""
        try:
            self._sample_listeners.remove(listener)
        except ValueError:
            pass

    # --------------------------------------------------------------- sampling
    def _counter(self, name: str, value: float, help: str = "",
                 unit: str = "") -> None:
        """Record a fleet-wide cumulative counter sample; attaches the
        interval's exemplar when the counter advanced under a trace."""
        trace_id = None
        prev = self._prev.get(name)
        if (self._last_traced is not None and prev is not None
                and value > prev):
            trace_id = self._last_traced[1]
        self._prev[name] = value
        self.bank.series(
            name, kind="counter", merge="sum", unit=unit, help=help,
        ).record(self._now_ns, value, trace_id)

    def _level(self, name: str, value: float, help: str = "",
               unit: str = "") -> None:
        """Record a per-shard level gauge (labelled, max-merge)."""
        self.bank.series(
            name, kind="gauge", merge="max", labels=self._shard_labels,
            unit=unit, help=help,
        ).record(self._now_ns, value)

    def sample(self) -> None:
        """Take one sample of every probe at the current sim time.

        Idempotent per timestamp: a finalize-time sample that coincides
        with the last periodic tick is skipped, so merged documents
        never carry duplicate timestamps.
        """
        deployment = self.deployment
        now_ns = deployment.sim.now_ns
        if now_ns == self._last_sample_ns:
            return
        self._last_sample_ns = now_ns
        self._now_ns = now_ns
        things = deployment.things
        metrics_counters = deployment.metrics._counters

        # --- energy, by category and per node --------------------------
        meters = [thing.meter.snapshot() for thing in things]
        by_category = EnergyMeter.merge(meters)
        total = sum(by_category.values())
        self._counter("energy_joules_total", total,
                      "Energy dissipated by this fleet's Things",
                      unit="joules")
        for category, joules in by_category.items():
            self.bank.series(
                "energy_category_joules_total", kind="counter",
                merge="sum", labels={"category": category}, unit="joules",
                help="Energy dissipated, decomposed by source category",
            ).record(self._now_ns, joules)

        # --- radio ------------------------------------------------------
        net = deployment.network
        stats = net.stats
        self._counter("radio_tx_bytes_total", stats.bytes_sent,
                      "Datagram payload bytes offered to the radio",
                      unit="bytes")
        rx_bytes = (sum(t.stack.stats.bytes_received for t in things)
                    + deployment.client.stack.stats.bytes_received
                    + deployment.manager.stack.stats.bytes_received)
        self._counter("radio_rx_bytes_total", rx_bytes,
                      "Datagram payload bytes received by stacks",
                      unit="bytes")
        self._counter("radio_frames_total", stats.frames_sent,
                      "802.15.4 frames put on the air")
        airtime = net.airtime_s()
        self._counter("radio_airtime_seconds_total", airtime,
                      "Cumulative radio time-on-air", unit="seconds")
        interval_s = self.cadence_ns / 1e9
        duty = (airtime - self._prev_airtime) / interval_s
        self._prev_airtime = airtime
        self._level("radio_duty_cycle", duty,
                    "Fraction of the last interval the radio spent "
                    "transmitting")

        # --- reliability --------------------------------------------------
        for name, counter, help in _METRIC_COUNTERS:
            value = metrics_counters.get(counter)
            self._counter(name, value.value if value is not None else 0,
                          help)
        hits = sum(t.reply_cache_hits for t in things)
        self._counter("reliability_reply_cache_hits_total", hits,
                      "Duplicate requests answered from reply caches")

        # --- pending tables / queues -------------------------------------
        pending = (deployment.client.pending_count()
                   + deployment.manager.pending_count()
                   + sum(t.pending_installs() for t in things))
        self._level("pending_requests", pending,
                    "In-flight request-table entries (client + manager "
                    "+ Thing installs)")
        self._level("kernel_queue_depth", deployment.sim.pending_count(),
                    "Live events queued in the simulation kernel")
        self._level("vm_queue_depth",
                    sum(t.router.queue_depth for t in things),
                    "Deliveries queued at Thing event routers")

        # --- VM -----------------------------------------------------------
        self._counter("vm_cycles_total",
                      sum(t.router.stats.cycles for t in things),
                      "MCU cycles retired by VM event dispatch")

        # --- per node (optional) -----------------------------------------
        if self.config.per_node:
            first = deployment.spec.first_thing
            for local, thing in enumerate(things):
                labels = {"node": str(first + local)}
                self.bank.series(
                    "node_energy_joules_total", kind="counter",
                    merge="sum", labels=labels, unit="joules",
                    help="Energy dissipated per Thing",
                ).record(self._now_ns, thing.meter.total())
                self.bank.series(
                    "node_tx_bytes_total", kind="counter", merge="sum",
                    labels=labels, unit="bytes",
                    help="Stack bytes sent per Thing",
                ).record(self._now_ns, thing.stack.stats.bytes_sent)

        self._last_traced = None
        for listener in self._sample_listeners:
            listener(now_ns, self)

    # --------------------------------------------------------------- exports
    def snapshot(self) -> dict:
        """Pickle/JSON-safe view; rides the metrics snapshot across the
        process boundary from fleet workers."""
        snap = self.bank.snapshot()
        snap["cadence_ns"] = self.cadence_ns
        snap["shard"] = self.shard
        return snap


def install_telemetry(deployment, config: TelemetryConfig) -> ShardTelemetry:
    """Create and attach a collector for *deployment*."""
    return ShardTelemetry(deployment, config)


__all__ = ["ShardTelemetry", "install_telemetry"]
