"""Telemetry configuration: a frozen dataclass of primitives.

Lives in its own module so :mod:`repro.fleet.scenario` can embed a
config in pickle-safe :class:`FleetScenario` values without importing
the collector (and its transitive deps) at scenario-build time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryConfig:
    """How a fleet run samples its time series.

    The config is inert data: a scenario carrying one costs nothing
    until a :class:`~repro.fleet.deployment.ShardDeployment` attaches a
    collector for it, and a scenario without one (the default) skips
    the telemetry layer entirely — the disabled mode is attach-time
    zero-overhead, like :mod:`repro.obs.tracer`.
    """

    #: Simulated seconds between samples.
    cadence_s: float = 1.0
    #: Ring-buffer bound per series (oldest samples evicted first).
    capacity: int = 4096
    #: Also record per-node series (energy, TX bytes per Thing) —
    #: higher resolution, proportionally more samples.
    per_node: bool = False
    #: Attach obs trace ids as exemplars to counter samples whose
    #: interval saw a traced operation (no-op unless the shard traces).
    exemplars: bool = True

    def __post_init__(self) -> None:
        if self.cadence_s <= 0:
            raise ValueError("cadence_s must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")


#: Default config used by CLIs when telemetry is switched on.
DEFAULT_TELEMETRY = TelemetryConfig()

__all__ = ["TelemetryConfig", "DEFAULT_TELEMETRY"]
