"""Ring-buffer time series and the deterministic shard-order merge.

A :class:`TimeSeries` is a bounded sequence of ``(time_ns, value)``
samples for one metric with one label set.  Shards record into their
own :class:`SeriesBank` while simulating and export a pickle/JSON-safe
snapshot; :meth:`SeriesBank.merge` folds per-shard snapshots in
shard-index order — the same byte-identical-merge discipline as
:class:`repro.fleet.metrics.Metrics` — so the merged document is a pure
function of ``(scenario, seed)`` no matter how many worker processes
executed the shards.

Merge semantics are declared per series:

* ``sum``  — additive quantities sampled fleet-wide on every shard
  (joules, bytes, retransmit counts): samples align by timestamp and
  values add;
* ``max``  — level-style quantities where the fleet-wide value is the
  worst shard (queue depth);
* ``last`` — values every shard reports identically (configuration).

Series whose label sets differ (e.g. a ``shard`` or ``node`` label)
never collide, so per-node trajectories simply union into the merged
document.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

#: Legal series kinds, in OpenMetrics terms.
SERIES_KINDS = ("counter", "gauge")

#: Legal cross-shard merge modes.
MERGE_MODES = ("sum", "max", "last")

#: Exemplars kept per series (OpenMetrics allows roughly one per
#: sample; we keep the most recent few, which is what a scraper sees).
EXEMPLAR_LIMIT = 32


def series_key(name: str, labels: Optional[Dict[str, str]]) -> Tuple:
    """Canonical identity of one series: name + sorted label items."""
    if not labels:
        return (name,)
    return (name,) + tuple(sorted(labels.items()))


class TimeSeries:
    """One metric trajectory: a fixed-capacity ring of timed samples."""

    __slots__ = ("name", "labels", "kind", "merge", "unit", "help",
                 "_samples", "dropped", "exemplars")

    def __init__(
        self,
        name: str,
        *,
        kind: str = "gauge",
        merge: str = "sum",
        labels: Optional[Dict[str, str]] = None,
        unit: str = "",
        help: str = "",
        capacity: int = 4096,
    ) -> None:
        if kind not in SERIES_KINDS:
            raise ValueError(f"unknown series kind: {kind!r}")
        if merge not in MERGE_MODES:
            raise ValueError(f"unknown merge mode: {merge!r}")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.kind = kind
        self.merge = merge
        self.unit = unit
        self.help = help
        self._samples: Deque[Tuple[int, float]] = deque(maxlen=capacity)
        #: Samples evicted by the ring bound (oldest first).
        self.dropped = 0
        #: Recent ``(time_ns, value, trace_id)`` exemplar triples tying
        #: samples to obs traces.
        self.exemplars: List[Tuple[int, float, int]] = []

    # ------------------------------------------------------------- recording
    def record(self, time_ns: int, value: float,
               trace_id: Optional[int] = None) -> None:
        samples = self._samples
        if len(samples) == samples.maxlen:
            self.dropped += 1
        samples.append((int(time_ns), float(value)))
        if trace_id is not None:
            exemplars = self.exemplars
            if len(exemplars) >= EXEMPLAR_LIMIT:
                exemplars.pop(0)
            exemplars.append((int(time_ns), float(value), int(trace_id)))

    # --------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[Tuple[int, float], ...]:
        return tuple(self._samples)

    @property
    def last(self) -> Optional[Tuple[int, float]]:
        return self._samples[-1] if self._samples else None

    @property
    def key(self) -> Tuple:
        return series_key(self.name, self.labels)

    # -------------------------------------------------------------- snapshot
    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "kind": self.kind,
            "merge": self.merge,
            "unit": self.unit,
            "help": self.help,
            "samples": [[t, v] for t, v in self._samples],
            "dropped": self.dropped,
        }
        if self.exemplars:
            out["exemplars"] = [[t, v, i] for t, v, i in self.exemplars]
        return out


class SeriesBank:
    """A registry of named series; one per shard while collecting."""

    SNAPSHOT_SCHEMA = {
        "layer": "telemetry",
        "version": 1,
        "fields": ("_capacity", "_series"),
    }

    def __init__(self, *, capacity: int = 4096) -> None:
        self._capacity = capacity
        self._series: Dict[Tuple, TimeSeries] = {}

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def series(
        self,
        name: str,
        *,
        kind: str = "gauge",
        merge: str = "sum",
        labels: Optional[Dict[str, str]] = None,
        unit: str = "",
        help: str = "",
    ) -> TimeSeries:
        key = series_key(name, labels)
        ts = self._series.get(key)
        if ts is None:
            ts = self._series[key] = TimeSeries(
                name, kind=kind, merge=merge, labels=labels,
                unit=unit, help=help, capacity=self._capacity,
            )
        return ts

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self):
        for key in sorted(self._series):
            yield self._series[key]

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[TimeSeries]:
        return self._series.get(series_key(name, labels))

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Pickle/JSON-safe view, series sorted by (name, labels)."""
        return {
            "series": [self._series[k].to_dict()
                       for k in sorted(self._series)],
        }

    @staticmethod
    def merge(snapshots: Iterable[Optional[dict]]) -> dict:
        """Merge per-shard snapshots in the order given (shard order).

        Series sharing (name, labels) combine pointwise by their
        declared merge mode over the union of timestamps; disjoint
        series pass through.  Iterating shards in index order makes the
        float sums — hence the JSON encoding — byte-identical for any
        worker count.
        """
        merged: Dict[Tuple, dict] = {}
        # Per-key ordered timestamp -> value maps (python dicts keep
        # insertion order; timestamps arrive sorted within one shard).
        values: Dict[Tuple, Dict[int, float]] = {}
        for snap in snapshots:
            if not snap:
                continue
            for data in snap.get("series", ()):
                key = series_key(data["name"], data.get("labels"))
                mode = data.get("merge", "sum")
                if key not in merged:
                    base = dict(data)
                    base["samples"] = []
                    base.pop("exemplars", None)
                    base["exemplars"] = list(data.get("exemplars", ()))
                    merged[key] = base
                    values[key] = {int(t): v for t, v in data["samples"]}
                    continue
                base = merged[key]
                base["dropped"] += data.get("dropped", 0)
                exemplars = base["exemplars"]
                exemplars.extend(data.get("exemplars", ()))
                if len(exemplars) > EXEMPLAR_LIMIT:
                    del exemplars[:len(exemplars) - EXEMPLAR_LIMIT]
                acc = values[key]
                for t, v in data["samples"]:
                    t = int(t)
                    if t not in acc:
                        acc[t] = v
                    elif mode == "sum":
                        acc[t] += v
                    elif mode == "max":
                        acc[t] = max(acc[t], v)
                    else:  # "last"
                        acc[t] = v
        out = []
        for key in sorted(merged):
            data = merged[key]
            data["samples"] = [[t, v] for t, v in
                               sorted(values[key].items())]
            if not data["exemplars"]:
                data.pop("exemplars")
            out.append(data)
        return {"series": out}


def iter_series(document: dict, name: Optional[str] = None):
    """Iterate series dicts of a snapshot/merged document, optionally
    restricted to one metric name (any label set)."""
    for data in document.get("series", ()):
        if name is None or data["name"] == name:
            yield data


__all__ = ["TimeSeries", "SeriesBank", "series_key", "iter_series",
           "SERIES_KINDS", "MERGE_MODES", "EXEMPLAR_LIMIT"]
