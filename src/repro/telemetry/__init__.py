"""repro.telemetry — fleet-wide time-series telemetry and health.

The layer above :mod:`repro.fleet.metrics` (end-of-run scalars) and
:mod:`repro.obs` (per-operation causal traces): sim-time-sampled
*trajectories* of every layer's vitals, merged deterministically across
shards, exported as OpenMetrics/JSON-lines/CSV, and judged by a
declarative health/SLO engine that can tell "degraded but recovering"
from "broken".

Enable by giving a scenario a :class:`TelemetryConfig`::

    from repro.fleet.scenario import SCENARIOS
    from repro.telemetry import TelemetryConfig

    scenario = SCENARIOS["smoke"].scaled(telemetry=TelemetryConfig())
    result = run_scenario(scenario, workers=4)
    document = result.telemetry_document()

or from the CLI: ``python -m repro.telemetry run --scenario smoke``.
"""

from repro.telemetry.config import DEFAULT_TELEMETRY, TelemetryConfig
from repro.telemetry.collector import ShardTelemetry, install_telemetry
from repro.telemetry.export import (
    to_csv,
    to_jsonl,
    to_openmetrics,
    validate_openmetrics,
)
from repro.telemetry.health import (
    DEFAULT_RULES,
    HealthReport,
    RuleResult,
    SloRule,
    evaluate,
    evaluate_rule,
)
from repro.telemetry.series import SeriesBank, TimeSeries, iter_series

__all__ = [
    "TelemetryConfig",
    "DEFAULT_TELEMETRY",
    "ShardTelemetry",
    "install_telemetry",
    "SeriesBank",
    "TimeSeries",
    "iter_series",
    "to_openmetrics",
    "to_jsonl",
    "to_csv",
    "validate_openmetrics",
    "SloRule",
    "RuleResult",
    "HealthReport",
    "evaluate",
    "evaluate_rule",
    "DEFAULT_RULES",
]
