"""repro.fleet — sharded fleet-scale scenario engine with a metrics core.

Opens the many-node workload: declarative :class:`FleetScenario`
deployments of µPnP gateways/Things under stochastic churn, partitioned
into independent shards, executed serially or across worker processes,
with counters/gauges/histograms merged deterministically across shards.

    from repro.fleet import FleetScenario, run_scenario
    result = run_scenario(FleetScenario(things=200), workers=4)
    print(result.counter("identifications"))
"""

from repro.fleet.deployment import ShardDeployment
from repro.fleet.metrics import Counter, Gauge, Metrics
from repro.fleet.report import render_report, result_to_json, write_json
from repro.fleet.runner import FleetResult, run_scenario, run_shard
from repro.fleet.scenario import (
    SCENARIOS,
    ChurnProfile,
    FleetScenario,
    ShardSpec,
)

__all__ = [
    "SCENARIOS",
    "ChurnProfile",
    "Counter",
    "FleetResult",
    "FleetScenario",
    "Gauge",
    "Metrics",
    "ShardDeployment",
    "ShardSpec",
    "render_report",
    "result_to_json",
    "run_scenario",
    "run_shard",
    "write_json",
]
