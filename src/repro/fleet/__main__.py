"""Command-line entry point for fleet-scale scenario runs.

    python -m repro.fleet --nodes 200 --workers 4 --seed 1
    python -m repro.fleet --scenario dense --json fleet.json
    python -m repro.fleet --list

Runs a named (or parameter-overridden) :class:`FleetScenario` across
worker processes and prints the merged metrics report, optionally also
writing the full JSON document.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a fleet-scale uPnP scenario and report metrics.",
    )
    parser.add_argument("--scenario", default="metro",
                        help="named scenario to start from (see --list)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the number of Things in the fleet")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="override Things per gateway shard")
    parser.add_argument("--duration", type=float, default=None,
                        help="override simulated duration (seconds)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the master seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for shard execution")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full result as JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a cross-layer trace on every shard and "
                             "write the merged Perfetto JSON here")
    parser.add_argument("--trace-limit", type=int, default=None,
                        help="per-shard trace ring-buffer bound")
    parser.add_argument("--list", action="store_true",
                        help="list named scenarios and exit")
    args = parser.parse_args(argv)

    from repro.fleet.report import render_report, write_json
    from repro.fleet.runner import run_scenario
    from repro.fleet.scenario import SCENARIOS

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"{name:<8} {scenario.things:>5} things, "
                  f"{scenario.shard_count} shards, "
                  f"{scenario.duration_s:g} s simulated")
        return 0

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario '{args.scenario}'; try --list",
              file=sys.stderr)
        return 2
    scenario = SCENARIOS[args.scenario]
    overrides = {}
    if args.nodes is not None:
        overrides["things"] = args.nodes
        overrides["name"] = f"{scenario.name}-{args.nodes}"
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.trace is not None:
        overrides["trace"] = True
    if args.trace_limit is not None:
        overrides["trace_limit"] = args.trace_limit
    if overrides:
        try:
            scenario = scenario.scaled(**overrides)
        except ValueError as exc:
            print(f"invalid scenario parameters: {exc}", file=sys.stderr)
            return 2

    result = run_scenario(scenario, workers=args.workers)
    print(render_report(result))
    if args.trace:
        from repro.obs.export import write_trace

        document = result.trace_document()
        try:
            write_trace(args.trace, document)
        except OSError as exc:
            print(f"cannot write {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {len(document['traceEvents'])} trace events to "
              f"{args.trace} (load in https://ui.perfetto.dev, or run "
              f"'python -m repro.obs report {args.trace}')")
    if args.json:
        try:
            write_json(result, args.json)
        except OSError as exc:
            print(f"cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
