"""Command-line entry point for fleet-scale scenario runs.

    python -m repro.fleet --nodes 200 --workers 4 --seed 1
    python -m repro.fleet --scenario dense --json fleet.json
    python -m repro.fleet --list

Runs a named (or parameter-overridden) :class:`FleetScenario` across
worker processes and prints the merged metrics report, optionally also
writing the full JSON document.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a fleet-scale uPnP scenario and report metrics.",
    )
    parser.add_argument("--scenario", default="metro",
                        help="named scenario to start from (see --list)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the number of Things in the fleet")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="override Things per gateway shard")
    parser.add_argument("--duration", type=float, default=None,
                        help="override simulated duration (seconds)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the master seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for shard execution")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full result as JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a cross-layer trace on every shard and "
                             "write the merged Perfetto JSON here")
    parser.add_argument("--trace-limit", type=int, default=None,
                        help="per-shard trace ring-buffer bound")
    parser.add_argument("--telemetry", action="store_true",
                        help="sample fleet-wide time series on every shard "
                             "and print the telemetry dashboard")
    parser.add_argument("--telemetry-cadence", type=float, default=None,
                        metavar="SECONDS",
                        help="sim-time sampling cadence (implies "
                             "--telemetry)")
    parser.add_argument("--openmetrics", metavar="PATH", default=None,
                        help="write merged telemetry as OpenMetrics text "
                             "(implies --telemetry)")
    parser.add_argument("--fast-forward", action="store_true",
                        help="enable the kernel's closed-form idle "
                             "fast-forward on every shard (digest-neutral; "
                             "skips certified periodic windows analytically)")
    parser.add_argument("--sampling", action="store_true",
                        help="install the duty-cycled sampling load "
                             "(periodic per-Thing sensor reads + baseline "
                             "energy accrual) on every shard")
    parser.add_argument("--profile", action="store_true",
                        help="profile every shard (per-event cost, opcode "
                             "heat, idle gaps) and print the profile report")
    parser.add_argument("--profile-out", metavar="DIR", default=None,
                        help="also write profile.json + collapsed-stack + "
                             "speedscope exports into DIR (implies "
                             "--profile)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="write shard checkpoints into DIR "
                             "(resumable with --resume DIR)")
    parser.add_argument("--checkpoint-at", type=float, default=None,
                        metavar="SECONDS",
                        help="checkpoint instant in simulated seconds "
                             "(default: the run midpoint)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="SECONDS",
                        help="rolling checkpoint cadence in simulated "
                             "seconds (the last one wins unless "
                             "--checkpoint-keep retains more)")
    parser.add_argument("--checkpoint-keep", type=int, default=None,
                        metavar="N",
                        help="with --checkpoint-every: retain the last N "
                             "checkpoint instants (at-<ns> subdirectories) "
                             "and garbage-collect older ones")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="restore a fleet checkpoint and continue "
                             "(ignores scenario flags; uses the saved "
                             "scenario)")
    parser.add_argument("--resume-to", type=float, default=None,
                        metavar="SECONDS",
                        help="with --resume: run to this horizon instead "
                             "of the scenario's original duration")
    parser.add_argument("--list", action="store_true",
                        help="list named scenarios and exit")
    args = parser.parse_args(argv)

    from repro.fleet.report import render_report, write_json
    from repro.fleet.runner import CheckpointPlan, resume_scenario, run_scenario
    from repro.fleet.scenario import SCENARIOS

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"{name:<8} {scenario.things:>5} things, "
                  f"{scenario.shard_count} shards, "
                  f"{scenario.duration_s:g} s simulated")
        return 0

    if args.resume:
        from repro.snapshot.checkpoint import CheckpointError

        try:
            result = resume_scenario(
                args.resume, workers=args.workers, run_to_s=args.resume_to,
            )
        except CheckpointError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        print(f"resumed {result.scenario.name} from {args.resume}\n")
        print(render_report(result))
        if args.json:
            try:
                write_json(result, args.json)
            except OSError as exc:
                print(f"cannot write {args.json}: {exc}", file=sys.stderr)
                return 1
            print(f"\nwrote {args.json}")
        return 0

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario '{args.scenario}'; try --list",
              file=sys.stderr)
        return 2
    scenario = SCENARIOS[args.scenario]
    overrides = {}
    if args.nodes is not None:
        overrides["things"] = args.nodes
        overrides["name"] = f"{scenario.name}-{args.nodes}"
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.trace is not None:
        overrides["trace"] = True
    if args.trace_limit is not None:
        overrides["trace_limit"] = args.trace_limit
    if args.telemetry or args.telemetry_cadence or args.openmetrics:
        from repro.telemetry.config import TelemetryConfig

        cadence = args.telemetry_cadence or 1.0
        overrides["telemetry"] = TelemetryConfig(cadence_s=cadence)
    if args.profile or args.profile_out:
        from repro.profile.config import DEFAULT_PROFILE

        overrides["profile"] = DEFAULT_PROFILE
    if args.fast_forward:
        overrides["fast_forward"] = True
    if args.sampling and scenario.sampling is None:
        from repro.fleet.sampling import SamplingConfig

        overrides["sampling"] = SamplingConfig()
    if overrides:
        try:
            scenario = scenario.scaled(**overrides)
        except ValueError as exc:
            print(f"invalid scenario parameters: {exc}", file=sys.stderr)
            return 2

    if args.checkpoint_keep is not None and args.checkpoint_keep < 1:
        print("--checkpoint-keep must be >= 1", file=sys.stderr)
        return 2
    plan = None
    if args.checkpoint_dir:
        plan = CheckpointPlan(
            directory=args.checkpoint_dir,
            at_s=args.checkpoint_at,
            every_s=args.checkpoint_every,
            keep=args.checkpoint_keep,
        )
    result = run_scenario(scenario, workers=args.workers, checkpoint=plan)
    if plan is not None:
        print(f"checkpoints in {plan.directory}/ "
              f"(resume: python -m repro.fleet --resume "
              f"{plan.directory})\n")
    print(render_report(result))
    if scenario.telemetry is not None:
        from repro.telemetry.report import dashboard

        document = result.telemetry_document()
        print("\ntelemetry:")
        print(dashboard(document))
        if args.openmetrics:
            from repro.telemetry.export import to_openmetrics

            try:
                with open(args.openmetrics, "w", encoding="utf-8") as fh:
                    fh.write(to_openmetrics(document, history=True))
            except OSError as exc:
                print(f"cannot write {args.openmetrics}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"\nwrote {args.openmetrics}")
    if scenario.profile is not None:
        from repro.profile.collector import profile_digest
        from repro.profile.report import render_report

        merged = result.profile_document()
        digest = profile_digest(merged)
        print("\nprofile:")
        print(render_report({
            "scenario": scenario.name, "seed": scenario.seed,
            "merged": merged, "digest": digest,
        }))
        if args.profile_out:
            import json as _json
            from pathlib import Path

            from repro.profile.export import write_collapsed, write_speedscope

            out_dir = Path(args.profile_out)
            try:
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / "profile.json").write_text(_json.dumps(
                    {"scenario": scenario.name, "seed": scenario.seed,
                     "workers": result.workers, "merged": merged,
                     "digest": digest,
                     "shards": result.profile_snapshots},
                    indent=1, sort_keys=True) + "\n")
                write_collapsed(str(out_dir / "profile.collapsed"),
                                result.profile_snapshots)
                write_speedscope(str(out_dir / "profile.speedscope.json"),
                                 result.profile_snapshots)
            except OSError as exc:
                print(f"cannot write {args.profile_out}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"\nwrote {out_dir}/profile.json, profile.collapsed, "
                  f"profile.speedscope.json")
    if args.trace:
        from repro.obs.export import write_trace

        document = result.trace_document()
        try:
            write_trace(args.trace, document)
        except OSError as exc:
            print(f"cannot write {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {len(document['traceEvents'])} trace events to "
              f"{args.trace} (load in https://ui.perfetto.dev, or run "
              f"'python -m repro.obs report {args.trace}')")
    if args.json:
        try:
            write_json(result, args.json)
        except OSError as exc:
            print(f"cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
