"""The fleet metrics core: counters, gauges and mergeable histograms.

Every shard of a fleet run records into its own :class:`Metrics`
instance while simulating, then exports a JSON-able *snapshot*.  The
runner merges the per-shard snapshots — counters and gauges add,
histograms add bucket-wise (see :class:`repro.sim.stats.Histogram`) —
in shard-index order, so the merged result is byte-identical no matter
how many worker processes executed the shards.

Latency distributions report p50/p95/p99 through the same percentile
conventions as :func:`repro.sim.stats.percentile`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import Histogram


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A per-shard scalar (e.g. joules of energy); shards merge by sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, value: float) -> None:
        self.value += float(value)


#: Default histogram bounds for latency metrics (seconds).  Chosen once
#: here so every shard builds identically-shaped (hence mergeable)
#: histograms.
LATENCY_BOUNDS: Tuple[float, float] = (1e-4, 100.0)


class Metrics:
    """A registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- recording
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self,
        name: str,
        lo: float = LATENCY_BOUNDS[0],
        hi: float = LATENCY_BOUNDS[1],
        buckets_per_decade: int = 16,
    ) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(lo, hi, buckets_per_decade)
        return hist

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """A JSON-able, pickle-safe view of everything recorded."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.to_json() for k, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Merge per-shard snapshots (counters/gauges add, histograms
        add bucket-wise).  Merging in shard order keeps float sums
        deterministic regardless of worker count."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Histogram] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0.0) + value
            for name, data in snap.get("histograms", {}).items():
                hist = Histogram.from_json(data)
                histograms[name] = (
                    histograms[name].merge(hist) if name in histograms else hist
                )
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                k: histograms[k].to_json() for k in sorted(histograms)
            },
        }

    @staticmethod
    def histogram_from(merged: dict, name: str) -> Optional[Histogram]:
        data = merged.get("histograms", {}).get(name)
        return None if data is None else Histogram.from_json(data)

    @staticmethod
    def percentiles(
        merged: dict, name: str, qs: Iterable[float] = (50, 95, 99)
    ) -> Optional[List[float]]:
        """p50/p95/p99 (by default) of a merged latency histogram."""
        hist = Metrics.histogram_from(merged, name)
        if hist is None or hist.count == 0:
            return None
        return [hist.percentile(q) for q in qs]


__all__ = ["Counter", "Gauge", "Metrics", "LATENCY_BOUNDS"]
