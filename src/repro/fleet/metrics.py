"""The fleet metrics core: counters, gauges and mergeable histograms.

Every shard of a fleet run records into its own :class:`Metrics`
instance while simulating, then exports a JSON-able *snapshot*.  The
runner merges the per-shard snapshots — counters and gauges add,
histograms add bucket-wise (see :class:`repro.sim.stats.Histogram`) —
in shard-index order, so the merged result is byte-identical no matter
how many worker processes executed the shards.

Latency distributions report p50/p95/p99 through the same percentile
conventions as :func:`repro.sim.stats.percentile`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import Histogram


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


#: Legal gauge merge modes (how shard values combine into the fleet
#: value): ``sum`` for additive quantities (joules, bytes), ``max`` for
#: level-style gauges where the fleet cares about the worst shard
#: (queue depth, pending-table size), ``last`` for configuration-like
#: values every shard reports identically.
GAUGE_MERGE_MODES = ("sum", "max", "last")


class Gauge:
    """A per-shard scalar (e.g. joules of energy).

    ``mode`` declares how shards merge: additive gauges sum, level
    gauges take the max across shards, and ``last`` keeps the value of
    the highest-indexed shard.  Summing a queue depth across shards
    would invent a fleet-wide queue that never existed — which is why
    the mode is explicit per gauge rather than a blanket sum.
    """

    __slots__ = ("value", "mode")

    def __init__(self, mode: str = "sum") -> None:
        if mode not in GAUGE_MERGE_MODES:
            raise ValueError(f"unknown gauge merge mode: {mode!r}")
        self.value = 0.0
        self.mode = mode

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, value: float) -> None:
        self.value += float(value)


#: Default histogram bounds for latency metrics (seconds).  Chosen once
#: here so every shard builds identically-shaped (hence mergeable)
#: histograms.
LATENCY_BOUNDS: Tuple[float, float] = (1e-4, 100.0)


class Metrics:
    """A registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- recording
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str, mode: str = "sum") -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(mode)
        elif gauge.mode != mode:
            raise ValueError(
                f"gauge {name!r} registered with mode {gauge.mode!r}, "
                f"requested {mode!r}"
            )
        return gauge

    def histogram(
        self,
        name: str,
        lo: float = LATENCY_BOUNDS[0],
        hi: float = LATENCY_BOUNDS[1],
        buckets_per_decade: int = 16,
    ) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(lo, hi, buckets_per_decade)
        return hist

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """A JSON-able, pickle-safe view of everything recorded."""
        snap = {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.to_json() for k, h in sorted(self._histograms.items())
            },
        }
        modes = {
            k: g.mode for k, g in sorted(self._gauges.items())
            if g.mode != "sum"
        }
        if modes:
            # Only non-default modes travel, keeping old snapshots (and
            # their merge behaviour) byte-identical.
            snap["gauge_modes"] = modes
        return snap

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Merge per-shard snapshots (counters add, gauges combine by
        their declared mode, histograms add bucket-wise).  Merging in
        shard order keeps float sums deterministic regardless of worker
        count."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        gauge_modes: Dict[str, str] = {}
        histograms: Dict[str, Histogram] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            modes = snap.get("gauge_modes", {})
            for name, value in snap.get("gauges", {}).items():
                mode = modes.get(name, "sum")
                gauge_modes.setdefault(name, mode)
                if name not in gauges:
                    gauges[name] = value
                elif mode == "sum":
                    gauges[name] += value
                elif mode == "max":
                    gauges[name] = max(gauges[name], value)
                else:  # "last": highest shard index wins (shard order)
                    gauges[name] = value
            for name, data in snap.get("histograms", {}).items():
                hist = Histogram.from_json(data)
                histograms[name] = (
                    histograms[name].merge(hist) if name in histograms else hist
                )
        merged = {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                k: histograms[k].to_json() for k in sorted(histograms)
            },
        }
        modes_out = {
            k: m for k, m in sorted(gauge_modes.items()) if m != "sum"
        }
        if modes_out:
            merged["gauge_modes"] = modes_out
        return merged

    @staticmethod
    def histogram_from(merged: dict, name: str) -> Optional[Histogram]:
        data = merged.get("histograms", {}).get(name)
        return None if data is None else Histogram.from_json(data)

    @staticmethod
    def percentiles(
        merged: dict, name: str, qs: Iterable[float] = (50, 95, 99)
    ) -> Optional[List[float]]:
        """p50/p95/p99 (by default) of a merged latency histogram."""
        hist = Metrics.histogram_from(merged, name)
        if hist is None or hist.count == 0:
            return None
        return [hist.percentile(q) for q in qs]


__all__ = ["Counter", "Gauge", "Metrics", "GAUGE_MERGE_MODES",
           "LATENCY_BOUNDS"]
