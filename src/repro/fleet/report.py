"""Human-readable and JSON renderings of a fleet run's merged metrics."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import List

from repro.fleet.metrics import Metrics
from repro.fleet.runner import FleetResult

#: Latency histograms shown with percentiles, in report order.
LATENCY_ROWS = (
    ("latency.identification_s", "identification"),
    ("latency.discovery_s", "discovery"),
    ("latency.driver_install_s", "driver install"),
    ("latency.read_s", "remote read"),
)


def render_report(result: FleetResult) -> str:
    """The CLI's metrics report for one fleet run."""
    scenario = result.scenario
    merged = result.merged
    lines: List[str] = []
    lines.append(
        f"fleet scenario '{scenario.name}': {scenario.things} things in "
        f"{scenario.shard_count} shards ({scenario.shard_size}/shard), "
        f"{scenario.duration_s:g} s simulated, seed {scenario.seed}"
    )
    mode = "process pool" if result.used_processes else "serial"
    lines.append(
        f"executed with {result.workers} worker(s) [{mode}] in "
        f"{result.wall_s:.2f} s wall ({result.events_per_s:,.0f} sim events/s)"
    )
    if result.ff_windows_skipped:
        lines.append(
            f"fast-forward: {result.ff_events_skipped:,} events applied "
            f"analytically in {result.ff_windows_skipped:,} windows"
        )
    lines.append("")
    lines.append("counters")
    for name, value in merged.get("counters", {}).items():
        lines.append(f"  {name:<28} {value:>12,}")
    gauges = merged.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for name, value in gauges.items():
            lines.append(f"  {name:<28} {value:>12.4f}")
    lines.append("latency percentiles (ms)")
    header = f"  {'':<16}{'p50':>9} {'p95':>9} {'p99':>9} {'count':>9}"
    lines.append(header)
    for key, label in LATENCY_ROWS:
        hist = Metrics.histogram_from(merged, key)
        if hist is None or hist.count == 0:
            lines.append(f"  {label:<16}{'-':>9} {'-':>9} {'-':>9} {0:>9}")
            continue
        p50, p95, p99 = (hist.percentile(q) * 1e3 for q in (50, 95, 99))
        lines.append(
            f"  {label:<16}{p50:>9.2f} {p95:>9.2f} {p99:>9.2f} "
            f"{hist.count:>9,}"
        )
    traces = [t for t in result.shard_traces if t]
    if traces:
        events = sum(len(t.get("events", ())) for t in traces)
        dropped = sum(t.get("dropped", 0) for t in traces)
        line = (f"trace: {events:,} events from {len(traces)} shard tracer(s)")
        if dropped:
            line += f", {dropped:,} dropped (ring full)"
        lines.append("")
        lines.append(line)
    return "\n".join(lines)


def result_to_json(result: FleetResult) -> dict:
    """A JSON document for ``--json``: scenario, execution, metrics."""
    return {
        "scenario": asdict(result.scenario),
        "execution": {
            "workers": result.workers,
            "used_processes": result.used_processes,
            "wall_s": result.wall_s,
            "sim_events": result.sim_events,
            "events_per_s": result.events_per_s,
            "shards": len(result.shard_snapshots),
        },
        "metrics": result.merged,
    }


def write_json(result: FleetResult, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result_to_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = ["render_report", "result_to_json", "write_json", "LATENCY_ROWS"]
