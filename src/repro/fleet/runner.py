"""The shard runner: fleet scenarios across worker processes.

A fleet run partitions its scenario into independent gateway shards
(:meth:`FleetScenario.shards`), executes each shard's deployment on its
own :class:`~repro.sim.kernel.Simulator`, and merges the per-shard
metric snapshots.  Shards cross process boundaries as pickle-safe
:class:`ShardSpec` values and come back as plain snapshot dicts, so the
parallel path works under any multiprocessing start method.

The merge happens in shard-index order whether shards ran serially or
on a :class:`~concurrent.futures.ProcessPoolExecutor`, which makes the
merged metrics a pure function of ``(scenario, seed)`` — identical for
any ``workers`` setting.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fleet.deployment import ShardDeployment
from repro.fleet.metrics import Metrics
from repro.fleet.scenario import FleetScenario, ShardSpec


def run_shard(spec: ShardSpec) -> dict:
    """Execute one shard; module-level so worker processes can pickle it."""
    deployment = ShardDeployment(spec)
    snapshot = deployment.run().snapshot()
    tracer = deployment.sim.tracer
    if tracer is not None:
        # Rides the metrics snapshot across the process boundary;
        # Metrics.merge ignores the extra key.
        snapshot["trace"] = tracer.snapshot()
    if deployment.telemetry is not None:
        snapshot["telemetry"] = deployment.telemetry.snapshot()
    return snapshot


@dataclass
class FleetResult:
    """Merged outcome of a fleet run, plus execution metadata.

    ``merged`` is deterministic for a given scenario; the wall-clock
    fields describe this particular execution and are kept out of the
    metrics so determinism checks compare apples to apples.
    """

    scenario: FleetScenario
    merged: dict
    shard_snapshots: List[dict] = field(repr=False, default_factory=list)
    workers: int = 1
    wall_s: float = 0.0
    used_processes: bool = False

    @property
    def sim_events(self) -> int:
        return self.merged.get("counters", {}).get("sim.events", 0)

    @property
    def events_per_s(self) -> float:
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0

    def counter(self, name: str) -> int:
        return self.merged.get("counters", {}).get(name, 0)

    def percentiles(self, name: str, qs=(50, 95, 99)) -> Optional[List[float]]:
        return Metrics.percentiles(self.merged, name, qs)

    @property
    def shard_traces(self) -> List[Optional[dict]]:
        """Per-shard tracer snapshots, in shard-index order (None where
        the shard did not trace)."""
        return [snap.get("trace") for snap in self.shard_snapshots]

    def trace_document(self) -> dict:
        """The merged Chrome trace JSON document (Perfetto-loadable)."""
        from repro.obs.export import merge_traces

        return merge_traces(self.shard_traces)

    @property
    def telemetry_snapshots(self) -> List[Optional[dict]]:
        """Per-shard telemetry snapshots, in shard-index order (None
        where the shard did not collect)."""
        return [snap.get("telemetry") for snap in self.shard_snapshots]

    def telemetry_document(self) -> dict:
        """The merged time-series document (shard-order merge — a pure
        function of ``(scenario, seed)`` for any worker count)."""
        from repro.telemetry.series import SeriesBank

        return SeriesBank.merge(self.telemetry_snapshots)


def run_scenario(
    scenario: FleetScenario,
    *,
    workers: int = 1,
) -> FleetResult:
    """Run every shard of *scenario* and merge their metrics.

    ``workers > 1`` fans shards out over a process pool (falling back
    to the serial path if the pool cannot be created or dies); shard
    results are always merged in shard-index order.
    """
    specs = scenario.shards()
    workers = max(1, int(workers))
    started = time.perf_counter()
    used_processes = False
    if workers == 1 or len(specs) == 1:
        snapshots = [run_shard(spec) for spec in specs]
    else:
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(specs))
            ) as pool:
                # Executor.map preserves input order regardless of
                # completion order — merge order stays deterministic.
                snapshots = list(pool.map(run_shard, specs))
            used_processes = True
        except (BrokenProcessPool, OSError, PermissionError):
            # Environments without working process spawning (sandboxes,
            # restricted containers) still get correct, serial results.
            snapshots = [run_shard(spec) for spec in specs]
    wall = time.perf_counter() - started
    return FleetResult(
        scenario=scenario,
        merged=Metrics.merge(snapshots),
        shard_snapshots=snapshots,
        workers=workers,
        wall_s=wall,
        used_processes=used_processes,
    )


__all__ = ["run_shard", "run_scenario", "FleetResult"]
