"""The shard runner: fleet scenarios across worker processes.

A fleet run partitions its scenario into independent gateway shards
(:meth:`FleetScenario.shards`), executes each shard's deployment on its
own :class:`~repro.sim.kernel.Simulator`, and merges the per-shard
metric snapshots.  Shards cross process boundaries as pickle-safe
:class:`ShardSpec` values and come back as plain snapshot dicts, so the
parallel path works under any multiprocessing start method.

The merge happens in shard-index order whether shards ran serially or
on a :class:`~concurrent.futures.ProcessPoolExecutor`, which makes the
merged metrics a pure function of ``(scenario, seed)`` — identical for
any ``workers`` setting.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fleet.deployment import ShardDeployment
from repro.fleet.metrics import Metrics
from repro.fleet.scenario import FleetScenario, ShardSpec
from repro.sim.kernel import ns_from_s


@dataclass(frozen=True)
class CheckpointPlan:
    """Where and when a fleet run writes checkpoints.

    ``at_s`` is the checkpoint instant in simulated seconds; ``None``
    with a positive ``every_s`` checkpoints periodically instead.  The
    plan is a frozen dataclass of primitives so it crosses process
    boundaries inside :func:`run_shard` arguments.
    """

    directory: str
    at_s: Optional[float] = None
    every_s: Optional[float] = None
    label: str = ""
    #: Rolling retention: keep only the last N checkpoint instants,
    #: each in its own ``at-<ns>`` subdirectory; older instants are
    #: garbage-collected as the run advances.  ``None`` keeps the flat
    #: single-instant layout ("the last one wins" overwriting).
    keep: Optional[int] = None

    def instants_s(self, duration_s: float) -> List[float]:
        """The checkpoint instants this plan produces for one run."""
        if self.at_s is not None:
            return [min(float(self.at_s), duration_s)]
        if self.every_s and self.every_s > 0:
            out, t = [], self.every_s
            while t < duration_s:
                out.append(t)
                t += self.every_s
            return out
        # Default: one checkpoint at the midpoint.
        return [duration_s / 2.0]


def _finish_shard(deployment: ShardDeployment) -> dict:
    """Finalize and package one shard's results for the merge."""
    snapshot = deployment.finalize().snapshot()
    tracer = deployment.sim.tracer
    if tracer is not None:
        # Rides the metrics snapshot across the process boundary;
        # Metrics.merge ignores the extra key.
        snapshot["trace"] = tracer.snapshot()
    if deployment.telemetry is not None:
        snapshot["telemetry"] = deployment.telemetry.snapshot()
    if deployment.profiler is not None:
        snapshot["profile"] = deployment.profiler.snapshot()
    sim = deployment.sim
    if sim.ff_windows:
        # Wall-clock-plane stats (how the run executed, not what it
        # computed) — Metrics.merge ignores the extra key, so they can
        # never perturb the merged digest.
        snapshot["fastforward"] = {
            "windows": sim.ff_windows,
            "events": sim.ff_events,
        }
    return snapshot


def run_shard(spec: ShardSpec, plan: Optional[CheckpointPlan] = None) -> dict:
    """Execute one shard; module-level so worker processes can pickle it.

    With a :class:`CheckpointPlan`, the shard pauses at each planned
    instant and writes a checkpoint directory before continuing — the
    saved state is exactly the state the run itself continues from, so
    resuming reproduces the uninterrupted run byte-for-byte.
    """
    deployment = ShardDeployment(spec)
    duration_s = spec.scenario.duration_s
    if plan is None:
        deployment.start()
        deployment.sim.run_until(ns_from_s(duration_s))
        return _finish_shard(deployment)
    import shutil
    from pathlib import Path

    from repro.snapshot.checkpoint import (
        instant_dir_name,
        save_shard,
        shard_dir_name,
    )

    deployment.start()
    instants = plan.instants_s(duration_s)
    for number, at_s in enumerate(instants):
        deployment.sim.run_until(ns_from_s(at_s))
        if plan.keep is None:
            target = Path(plan.directory) / shard_dir_name(spec.index)
        else:
            target = (Path(plan.directory)
                      / instant_dir_name(ns_from_s(at_s))
                      / shard_dir_name(spec.index))
        save_shard(deployment, target, label=plan.label or f"t={at_s:g}s")
        if plan.keep is not None and number >= plan.keep:
            # Rolling GC: this shard's copy under the instant that just
            # fell off the window (fleet-level meta GC happens once in
            # run_scenario, after all shards finish).
            expired = (Path(plan.directory)
                       / instant_dir_name(ns_from_s(instants[number - plan.keep]))
                       / shard_dir_name(spec.index))
            shutil.rmtree(expired, ignore_errors=True)
    deployment.sim.run_until(ns_from_s(duration_s))
    return _finish_shard(deployment)


def live_shards(scenario: FleetScenario) -> List[ShardDeployment]:
    """Build and launch every shard of *scenario* without running time.

    This is the hosting hook for the live service layer
    (:mod:`repro.gateway`): each deployment has its churn/traffic
    processes scheduled but its clock still at zero, so a caller can
    interleave its own work (serving requests, injecting reads) with
    explicit ``sim.run_until`` advances.  The deployments are the same
    objects :func:`run_shard` drives, built in shard-index order from
    the same specs — a hosted fleet's behaviour for a given sequence of
    advances is a pure function of ``(scenario, advances)``.
    """
    deployments = []
    for spec in scenario.shards():
        deployment = ShardDeployment(spec)
        deployment.start()
        deployments.append(deployment)
    return deployments


def resume_shard(directory, run_to_s: float) -> dict:
    """Restore one shard checkpoint and run it to *run_to_s*."""
    from repro.snapshot.checkpoint import load_shard

    deployment = load_shard(directory).deployment
    deployment.sim.run_until(ns_from_s(run_to_s))
    return _finish_shard(deployment)


@dataclass
class FleetResult:
    """Merged outcome of a fleet run, plus execution metadata.

    ``merged`` is deterministic for a given scenario; the wall-clock
    fields describe this particular execution and are kept out of the
    metrics so determinism checks compare apples to apples.
    """

    scenario: FleetScenario
    merged: dict
    shard_snapshots: List[dict] = field(repr=False, default_factory=list)
    workers: int = 1
    wall_s: float = 0.0
    used_processes: bool = False

    @property
    def sim_events(self) -> int:
        return self.merged.get("counters", {}).get("sim.events", 0)

    @property
    def events_per_s(self) -> float:
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ff_windows_skipped(self) -> int:
        """Fast-forward windows applied analytically, across shards."""
        return sum(snap.get("fastforward", {}).get("windows", 0)
                   for snap in self.shard_snapshots)

    @property
    def ff_events_skipped(self) -> int:
        """Events applied inside fast-forward windows (counted in
        ``sim_events`` but never individually dispatched)."""
        return sum(snap.get("fastforward", {}).get("events", 0)
                   for snap in self.shard_snapshots)

    def counter(self, name: str) -> int:
        return self.merged.get("counters", {}).get(name, 0)

    def percentiles(self, name: str, qs=(50, 95, 99)) -> Optional[List[float]]:
        return Metrics.percentiles(self.merged, name, qs)

    @property
    def shard_traces(self) -> List[Optional[dict]]:
        """Per-shard tracer snapshots, in shard-index order (None where
        the shard did not trace)."""
        return [snap.get("trace") for snap in self.shard_snapshots]

    def trace_document(self) -> dict:
        """The merged Chrome trace JSON document (Perfetto-loadable).

        Shards that also sampled telemetry contribute their series as
        Chrome counter ("C") events, so Perfetto draws the fleet's
        gauges as tracks right above the event timeline.
        """
        from repro.obs.export import merge_traces

        telemetry = self.telemetry_snapshots
        return merge_traces(
            self.shard_traces,
            telemetry=telemetry if any(t for t in telemetry) else None,
        )

    @property
    def telemetry_snapshots(self) -> List[Optional[dict]]:
        """Per-shard telemetry snapshots, in shard-index order (None
        where the shard did not collect)."""
        return [snap.get("telemetry") for snap in self.shard_snapshots]

    def telemetry_document(self) -> dict:
        """The merged time-series document (shard-order merge — a pure
        function of ``(scenario, seed)`` for any worker count)."""
        from repro.telemetry.series import SeriesBank

        return SeriesBank.merge(self.telemetry_snapshots)

    @property
    def profile_snapshots(self) -> List[Optional[dict]]:
        """Per-shard profile snapshots, in shard-index order (None
        where the shard did not profile)."""
        return [snap.get("profile") for snap in self.shard_snapshots]

    def profile_document(self) -> dict:
        """The merged profile (shard-order merge; the deterministic
        plane is a pure function of ``(scenario, seed)`` for any
        worker count)."""
        from repro.profile.collector import merge_profiles

        return merge_profiles(self.profile_snapshots)


def _fan_out(tasks, workers: int):
    """Run ``(fn, arg)`` pairs serially or on a process pool, preserving
    order; returns (results, used_processes)."""
    if workers == 1 or len(tasks) == 1:
        return [fn(arg) for fn, arg in tasks], False
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks))
        ) as pool:
            # Executor.map preserves input order regardless of
            # completion order — merge order stays deterministic.
            futures = [pool.submit(fn, arg) for fn, arg in tasks]
            return [future.result() for future in futures], True
    except (BrokenProcessPool, OSError, PermissionError):
        # Environments without working process spawning (sandboxes,
        # restricted containers) still get correct, serial results.
        return [fn(arg) for fn, arg in tasks], False


def run_scenario(
    scenario: FleetScenario,
    *,
    workers: int = 1,
    checkpoint: Optional[CheckpointPlan] = None,
) -> FleetResult:
    """Run every shard of *scenario* and merge their metrics.

    ``workers > 1`` fans shards out over a process pool (falling back
    to the serial path if the pool cannot be created or dies); shard
    results are always merged in shard-index order.  A
    :class:`CheckpointPlan` makes every shard write checkpoints at the
    planned instants; the fleet-level metadata lands next to them so
    :func:`resume_scenario` can rebuild the whole fleet.
    """
    import functools

    specs = scenario.shards()
    workers = max(1, int(workers))
    started = time.perf_counter()
    worker = run_shard if checkpoint is None else functools.partial(
        run_shard, plan=checkpoint)
    snapshots, used_processes = _fan_out(
        [(worker, spec) for spec in specs], workers)
    if checkpoint is not None:
        from repro.snapshot.checkpoint import save_fleet_meta

        instants = checkpoint.instants_s(scenario.duration_s)
        if checkpoint.keep is None:
            save_fleet_meta(
                checkpoint.directory, scenario,
                sim_time_ns=ns_from_s(instants[-1]) if instants else 0,
                shards=len(specs), label=checkpoint.label,
            )
        else:
            import shutil
            from pathlib import Path

            from repro.snapshot.checkpoint import instant_dir_name

            retained = instants[-checkpoint.keep:]
            for at_s in retained:
                save_fleet_meta(
                    Path(checkpoint.directory)
                    / instant_dir_name(ns_from_s(at_s)),
                    scenario, sim_time_ns=ns_from_s(at_s),
                    shards=len(specs), label=checkpoint.label,
                )
            # GC instants outside the retention window (shards already
            # removed their own copies incrementally; this sweeps the
            # directories themselves plus any stale leftovers).
            keep_names = {instant_dir_name(ns_from_s(at_s))
                          for at_s in retained}
            root = Path(checkpoint.directory)
            for child in root.iterdir():
                if (child.is_dir() and child.name.startswith("at-")
                        and child.name not in keep_names):
                    shutil.rmtree(child, ignore_errors=True)
    wall = time.perf_counter() - started
    return FleetResult(
        scenario=scenario,
        merged=Metrics.merge(snapshots),
        shard_snapshots=snapshots,
        workers=workers,
        wall_s=wall,
        used_processes=used_processes,
    )


def resume_scenario(
    checkpoint_dir,
    *,
    workers: int = 1,
    run_to_s: Optional[float] = None,
) -> FleetResult:
    """Restore a fleet checkpoint and run every shard to completion.

    ``run_to_s`` overrides the scenario's original horizon (must not be
    before the checkpoint instant).  Results merge in shard-index order
    exactly like :func:`run_scenario`, so a resumed run's merged
    metrics are byte-identical to the uninterrupted run's.
    """
    import functools

    from repro.snapshot.checkpoint import (
        CheckpointError,
        fleet_checkpoint_dirs,
        load_fleet_meta,
        resolve_fleet_dir,
        scenario_from_dict,
    )

    # Rolling-retention runs nest one fleet checkpoint per retained
    # instant; resolve to the latest so --resume works on both layouts.
    checkpoint_dir = resolve_fleet_dir(checkpoint_dir)
    meta = load_fleet_meta(checkpoint_dir)
    scenario = scenario_from_dict(meta["scenario"])
    horizon_s = scenario.duration_s if run_to_s is None else float(run_to_s)
    if ns_from_s(horizon_s) < int(meta["sim_time_ns"]):
        raise CheckpointError(
            f"cannot run to {horizon_s:g}s: checkpoint was taken at "
            f"{meta['sim_time_ns'] / 1e9:g}s"
        )
    shard_dirs = fleet_checkpoint_dirs(checkpoint_dir)
    workers = max(1, int(workers))
    started = time.perf_counter()
    worker = functools.partial(resume_shard, run_to_s=horizon_s)
    snapshots, used_processes = _fan_out(
        [(worker, str(path)) for path in shard_dirs], workers)
    wall = time.perf_counter() - started
    return FleetResult(
        scenario=scenario,
        merged=Metrics.merge(snapshots),
        shard_snapshots=snapshots,
        workers=workers,
        wall_s=wall,
        used_processes=used_processes,
    )


__all__ = [
    "CheckpointPlan",
    "FleetResult",
    "live_shards",
    "resume_scenario",
    "resume_shard",
    "run_scenario",
    "run_shard",
]
