"""One gateway shard of a fleet scenario, built and driven to completion.

A :class:`ShardDeployment` owns a private :class:`Simulator` and
:class:`Network` carrying one µPnP manager (the gateway/border router),
one client, and this shard's Things in a star topology around the
gateway.  Churn processes — plug/unplug cycles, driver hot-updates,
client discovery/read/stream traffic — are scheduled from per-node RNG
forks, so a shard's entire event sequence is a deterministic function
of ``(scenario, shard index)``.

Instrumentation points on the plug/discover/install paths (Thing and
Client event listeners, the simulator trace hook, network/stack/router
stats) feed the shard's :class:`~repro.fleet.metrics.Metrics`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.client import Client, ClientEvent, DiscoveredPeripheral
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing, ThingEvent
from repro.drivers.catalog import CATALOG, make_peripheral_board, populate_registry
from repro.fleet.metrics import Metrics
from repro.fleet.scenario import ShardSpec
from repro.hw.device_id import DeviceId
from repro.hw.power import EnergyMeter
from repro.net.network import Network
from repro.protocol.reliability import (
    DEFAULT_INSTALL_RETRY,
    DEFAULT_RETRY,
    NO_RETRY,
)
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry

#: Node ids inside every shard network.
GATEWAY_NODE = 0
CLIENT_NODE = 1
FIRST_THING_NODE = 2


class ShardDeployment:
    """Build, instrument and run one shard of a fleet scenario."""

    def __init__(self, spec: ShardSpec, metrics: Optional[Metrics] = None) -> None:
        self.spec = spec
        self.scenario = spec.scenario
        self.metrics = metrics or Metrics()
        self.sim = Simulator()
        if self.scenario.trace:
            from repro.obs.tracer import install_tracer

            # The id base keeps trace ids globally unique across the
            # fleet, so the shard-order merge never collides traces.
            install_tracer(
                self.sim,
                limit=self.scenario.trace_limit,
                trace_id_base=(spec.index + 1) << 32,
                label=f"shard-{spec.index}",
            )
        # The per-shard registry root: every stochastic decision in this
        # shard forks from here, never from global state.
        self.rng = RngRegistry(self.scenario.seed).fork(f"shard-{spec.index}")
        self.network = Network(self.sim, rng=self.rng.fork("network"))
        self.registry = Registry()
        populate_registry(self.registry)
        if self.scenario.reliability:
            retry = self.scenario.retry or DEFAULT_RETRY
            install_retry = self.scenario.install_retry or DEFAULT_INSTALL_RETRY
        else:
            retry = install_retry = NO_RETRY
        # Backoff jitter draws from registered streams (not ad-hoc
        # Randoms) so the whole shard's entropy lives in self.rng and
        # checkpoints capture it; fork() caching means these are the
        # same registries the traffic drivers fork later.
        self.manager = Manager(self.sim, self.network, GATEWAY_NODE,
                               self.registry, retry=retry,
                               rng=self.rng.fork("manager").stream("jitter"))
        self.client = Client(
            self.sim, self.network, CLIENT_NODE,
            default_timeout_s=self.scenario.churn.discovery_timeout_s * 4,
            retry=retry,
            rng=self.rng.fork("client").stream("jitter"),
        )
        self.things: List[Thing] = []
        self._thing_rngs: List[RngRegistry] = []
        for local in range(spec.things):
            global_id = spec.first_thing + local
            node_rng = self.rng.fork(f"thing-{global_id}")
            thing = Thing(
                self.sim, self.network, FIRST_THING_NODE + local,
                channels=self.scenario.channels,
                rng=node_rng,
                label=f"thing-{global_id}",
                install_retry=install_retry,
            )
            self.things.append(thing)
            self._thing_rngs.append(node_rng)
            self.network.connect(GATEWAY_NODE, FIRST_THING_NODE + local)
        self.network.connect(GATEWAY_NODE, CLIENT_NODE)
        self.network.build_dodag(GATEWAY_NODE)

        # Known (thing address, device id) pairs the client can read.
        self._known: List[Tuple[object, DeviceId]] = []
        self._active_streams = 0
        self._install_requested_at: Dict[Tuple[int, int], float] = {}
        self._catalog_keys = [key for key, _ in self.scenario.peripheral_mix]
        self._catalog_weights = [w for _, w in self.scenario.peripheral_mix]

        self._wire_instrumentation()

        #: Time-series collector, present only when the scenario asks —
        #: a telemetry-less deployment constructs nothing and keeps the
        #: kernel/network hot paths untouched.
        self.telemetry = None
        if self.scenario.telemetry is not None:
            from repro.telemetry.collector import ShardTelemetry

            self.telemetry = ShardTelemetry(self, self.scenario.telemetry)

        #: Cross-layer profiler, present only when the scenario asks —
        #: same zero-cost-when-absent contract as tracer/telemetry.
        self.profiler = None
        if self.scenario.profile is not None:
            from repro.profile.collector import ShardProfiler

            self.profiler = ShardProfiler(self, self.scenario.profile)

        #: Duty-cycled sampling load (fast-forward certified), present
        #: only when the scenario asks.
        self.samplers: List = []
        self.baselines: List = []
        if self.scenario.sampling is not None:
            from repro.fleet.sampling import install_sampling

            self.samplers, self.baselines = install_sampling(
                self.sim, self.things, self.scenario.sampling,
                first_id=spec.first_thing,
            )
        if self.scenario.fast_forward:
            self.sim.enable_fast_forward()

    # ------------------------------------------------------- instrumentation
    def _wire_instrumentation(self) -> None:
        # The bulk variant keeps the counter identical when a
        # fast-forward window or batch drain applies n events at once.
        self.sim.add_trace_hook(self._on_sim_event, bulk=self._on_sim_events)
        for thing in self.things:
            thing.add_listener(
                lambda event, t=thing: self._on_thing_event(t, event)
            )
        self.client.add_listener(self._on_client_event)
        self.manager.add_listener(self._on_manager_event)

    def _on_sim_event(self, time_ns: int, name: str) -> None:
        del time_ns, name
        self.metrics.inc("sim.events")

    def _on_sim_events(self, time_ns: int, name: str, n: int) -> None:
        del time_ns, name
        self.metrics.inc("sim.events", n)

    def _on_thing_event(self, thing: Thing, event: ThingEvent) -> None:
        kind = event.kind
        if kind == "identified":
            self.metrics.inc("identifications")
        elif kind == "identification" and event.detail.endswith("ms"):
            self.metrics.observe(
                "latency.identification_s", float(event.detail[:-2]) / 1e3
            )
        elif kind == "driver-requested" and event.device_id is not None:
            self.metrics.inc("driver.requests")
            self._install_requested_at.setdefault(
                (thing.stack.node_id, event.device_id.value), event.time_s
            )
        elif kind == "driver-installed" and event.device_id is not None:
            self.metrics.inc("driver.installs")
            requested = self._install_requested_at.pop(
                (thing.stack.node_id, event.device_id.value), None
            )
            if requested is not None:
                self.metrics.observe(
                    "latency.driver_install_s", event.time_s - requested
                )
        elif kind == "driver-activated":
            self.metrics.inc("driver.activations")
        elif kind == "advertised":
            self.metrics.inc("advertisements")
        elif kind == "removed":
            self.metrics.inc("removals")
        elif kind == "driver-request-retransmit":
            self.metrics.inc("reliability.retransmits")
        elif kind == "driver-request-failed":
            self.metrics.inc("driver.request_failures")
        elif kind in ("dup-upload-suppressed", "dup-request-suppressed"):
            self.metrics.inc("reliability.dups_suppressed")
        elif kind == "crashed":
            self.metrics.inc("chaos.crashes")
        elif kind == "rebooted":
            self.metrics.inc("chaos.reboots")

    def _on_client_event(self, event: ClientEvent) -> None:
        kind = event.kind
        if kind == "discover-sent":
            self.metrics.inc("discoveries.sent")
        elif kind == "discover-first-response" and event.latency_s is not None:
            self.metrics.observe("latency.discovery_s", event.latency_s)
        elif kind == "discover-complete":
            self.metrics.inc("discoveries.completed")
        elif kind == "read-sent":
            self.metrics.inc("reads.sent")
        elif kind == "read-reply" and event.latency_s is not None:
            self.metrics.inc("reads.ok")
            self.metrics.observe("latency.read_s", event.latency_s)
        elif kind == "read-timeout":
            self.metrics.inc("reads.timeout")
        elif kind == "stream-established":
            self.metrics.inc("streams.established")
        elif kind == "stream-data":
            self.metrics.inc("stream.data")
        elif kind.endswith("-retransmit"):
            self.metrics.inc("reliability.retransmits")
        elif kind == "dup-suppressed":
            self.metrics.inc("reliability.dups_suppressed")

    def _on_manager_event(self, event) -> None:
        kind = event.kind
        if kind.endswith("-retransmit"):
            self.metrics.inc("reliability.retransmits")
        elif kind.endswith("-timeout"):
            self.metrics.inc("manager.timeouts")

    # ----------------------------------------------------------- churn drive
    def _pick_peripheral(self, rng: random.Random) -> str:
        return rng.choices(self._catalog_keys, self._catalog_weights, k=1)[0]

    def _start_thing_churn(self, local: int) -> None:
        thing = self.things[local]
        node_rng = self._thing_rngs[local]
        churn_rng = node_rng.stream("churn")
        mfg_rng = node_rng.stream("mfg")
        churn = self.scenario.churn

        def plug_board() -> None:
            free = [
                ch for ch in range(self.scenario.channels)
                if thing.board.board_at(ch) is None
            ]
            if not free:
                return
            key = self._pick_peripheral(churn_rng)
            board = make_peripheral_board(key, rng=mfg_rng)
            thing.plug(board, free[0])
            self.metrics.inc("plugs")

        def churn_tick() -> None:
            occupied = [
                ch for ch in range(self.scenario.channels)
                if thing.board.board_at(ch) is not None
            ]
            if occupied and churn_rng.random() < churn.unplug_probability:
                thing.unplug(churn_rng.choice(occupied))
                self.metrics.inc("unplugs")
            else:
                plug_board()
            self.sim.schedule(
                ns_from_s(churn_rng.expovariate(1.0 / churn.churn_interval_s)),
                churn_tick, name="fleet-churn",
            )

        first_plug_at = churn_rng.uniform(0.0, churn.initial_plug_window_s)
        self.sim.schedule(ns_from_s(first_plug_at), plug_board,
                          name="fleet-first-plug")
        self.sim.schedule(
            ns_from_s(first_plug_at
                      + churn_rng.expovariate(1.0 / churn.churn_interval_s)),
            churn_tick, name="fleet-churn",
        )

    def _start_client_traffic(self) -> None:
        client_rng = self.rng.fork("client")
        discover_rng = client_rng.stream("discover")
        read_rng = client_rng.stream("read")
        stream_rng = client_rng.stream("stream")
        churn = self.scenario.churn

        def discovered(found: List[DiscoveredPeripheral]) -> None:
            for item in found:
                pair = (item.thing, item.device_id)
                if pair not in self._known:
                    self._known.append(pair)
                self.metrics.inc("discoveries.found")
            if found and stream_rng.random() < churn.stream_probability:
                self._subscribe_stream(stream_rng.choice(found))

        def discovery_tick() -> None:
            key = self._pick_peripheral(discover_rng)
            self.client.discover(
                CATALOG[key].device_id, discovered,
                timeout_s=churn.discovery_timeout_s,
            )
            self.sim.schedule(
                ns_from_s(discover_rng.expovariate(
                    1.0 / churn.discovery_interval_s)),
                discovery_tick, name="fleet-discover",
            )

        def read_tick() -> None:
            if self._known:
                thing_addr, device_id = read_rng.choice(self._known)
                self.client.read(thing_addr, device_id, lambda result: None,
                                 timeout_s=churn.read_timeout_s)
            self.sim.schedule(
                ns_from_s(read_rng.expovariate(1.0 / churn.read_interval_s)),
                read_tick, name="fleet-read",
            )

        self.sim.schedule(ns_from_s(0.2), discovery_tick, name="fleet-discover")
        self.sim.schedule(ns_from_s(0.5), read_tick, name="fleet-read")

    def _subscribe_stream(self, found: DiscoveredPeripheral) -> None:
        churn = self.scenario.churn

        def established(handle) -> None:
            if handle is None:
                return
            self._active_streams += 1

            def expire() -> None:
                self._active_streams -= 1
                handle.cancel()

            self.sim.schedule(ns_from_s(churn.stream_lifetime_s), expire,
                              name="fleet-stream-expire")

        self.client.stream(
            found.thing, found.device_id, lambda result: None,
            interval_ms=churn.stream_interval_ms,
            on_established=established,
        )

    def _start_hot_updates(self) -> None:
        update_rng = self.rng.fork("manager").stream("hot-update")
        churn = self.scenario.churn

        def update_tick() -> None:
            thing = update_rng.choice(self.things)
            key = self._pick_peripheral(update_rng)
            if self.manager.push_driver(thing.address, CATALOG[key].device_id):
                self.metrics.inc("driver.hot_updates")
            self.sim.schedule(
                ns_from_s(update_rng.expovariate(
                    1.0 / churn.hot_update_interval_s)),
                update_tick, name="fleet-hot-update",
            )

        self.sim.schedule(
            ns_from_s(update_rng.expovariate(1.0 / churn.hot_update_interval_s)),
            update_tick, name="fleet-hot-update",
        )

    # ---------------------------------------------------------------- running
    #: Event names driving the open-loop load; cancelling them (between
    #: :meth:`start` and :meth:`finalize`) lets in-flight work drain.
    CHURN_EVENT_NAMES = ("fleet-churn", "fleet-discover", "fleet-read",
                        "fleet-hot-update")

    def start(self) -> None:
        """Launch the churn/traffic processes without running the clock.

        Callers (e.g. chaos campaigns) that need to interleave their own
        scheduling use ``start()`` + ``sim.run_until(...)`` +
        :meth:`finalize` instead of :meth:`run`.
        """
        for local in range(len(self.things)):
            self._start_thing_churn(local)
        self._start_client_traffic()
        self._start_hot_updates()

    def finalize(self) -> Metrics:
        """Fold end-of-run counters into the metrics and return them."""
        if self.telemetry is not None:
            # Closing sample (skipped if a tick already sampled "now"),
            # then stop so a subsequent sim.run() can terminate.
            self.telemetry.sample()
            self.telemetry.stop()
        self._collect_final()
        return self.metrics

    def run(self) -> Metrics:
        """Drive the shard for the scenario duration; return its metrics."""
        self.start()
        self.sim.run_until(ns_from_s(self.scenario.duration_s))
        return self.finalize()

    def _collect_final(self) -> None:
        """Fold end-of-run counters from every layer into the metrics."""
        net = self.network.stats
        self.metrics.inc("net.datagrams_sent", net.datagrams_sent)
        self.metrics.inc("net.datagrams_delivered", net.datagrams_delivered)
        self.metrics.inc("net.frames_sent", net.frames_sent)
        self.metrics.inc("net.bytes_sent", net.bytes_sent)
        self.metrics.inc("net.multicast_transmissions",
                         net.multicast_transmissions)
        stack_bytes = 0
        vm_dispatched = 0
        for thing in self.things:
            stack_bytes += thing.stack.stats.bytes_sent
            vm_dispatched += thing.router.stats.dispatched
        stack_bytes += self.client.stack.stats.bytes_sent
        stack_bytes += self.manager.stack.stats.bytes_sent
        self.metrics.inc("net.stack_bytes_sent", stack_bytes)
        self.metrics.inc("vm.events_dispatched", vm_dispatched)
        by_category = EnergyMeter.merge(
            thing.meter.snapshot() for thing in self.things
        )
        self.metrics.gauge("energy.things_joules").add(
            sum(by_category.values()))
        for category, joules in by_category.items():
            self.metrics.gauge(f"energy.{category}_joules").add(joules)
        if self.samplers:
            # Folded in Thing order, so shard metrics are independent of
            # whether ticks ran stepped, batched, or fast-forwarded.
            self.metrics.inc("sampling.reads",
                             sum(s.count for s in self.samplers))
            self.metrics.inc("sampling.sum",
                             sum(s.total for s in self.samplers))
            self.metrics.inc("sampling.baseline_ticks",
                             sum(b.count for b in self.baselines))
        self.metrics.inc("manager.install_requests",
                         self.manager.stats.install_requests)
        self.metrics.inc("manager.uploads", self.manager.stats.uploads)
        self.metrics.inc("manager.duplicate_install_requests",
                         self.manager.stats.duplicate_install_requests)
        net_faults = (net.faults_dropped + net.faults_duplicated
                      + net.faults_delayed)
        if net_faults:
            self.metrics.inc("chaos.datagram_faults", net_faults)


__all__ = ["ShardDeployment", "GATEWAY_NODE", "CLIENT_NODE", "FIRST_THING_NODE"]
