"""Declarative fleet scenarios: many-gateway µPnP deployments.

A :class:`FleetScenario` describes a whole deployment — how many Things,
how they are grouped into gateway shards, which peripherals the
population carries, and the stochastic churn driving it (plug/unplug
cycles, driver hot-updates, client discovery/read/stream traffic).

Everything here is a frozen dataclass of primitives, so scenarios and
:class:`ShardSpec` partitions are pickle-safe and can cross process
boundaries to the shard runner.  All randomness inside a shard derives
from ``RngRegistry(seed).fork(f"shard-{index}")`` and then per-node
forks, so a shard's behaviour depends only on ``(scenario, index)`` —
never on which worker process executes it or how many workers exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.fleet.sampling import SamplingConfig
from repro.profile.config import ProfileConfig
from repro.protocol.reliability import RetryPolicy
from repro.telemetry.config import TelemetryConfig


@dataclass(frozen=True)
class ChurnProfile:
    """Stochastic load shaping for a fleet run.

    Intervals are means of exponential delays (memoryless processes);
    probabilities are per-decision.
    """

    #: Every Thing plugs its first board uniformly inside this window.
    initial_plug_window_s: float = 1.0
    #: Mean delay between churn actions (plug or unplug) per Thing.
    churn_interval_s: float = 12.0
    #: A churn action unplugs an occupied channel with this probability
    #: (otherwise it plugs a new board into a free channel).
    unplug_probability: float = 0.35
    #: Mean delay between manager-driven driver hot-updates, per shard.
    hot_update_interval_s: float = 15.0
    #: Mean delay between client peripheral discoveries, per shard.
    discovery_interval_s: float = 2.0
    #: Collection window for each discovery.
    discovery_timeout_s: float = 0.5
    #: Mean delay between client reads of known peripherals, per shard.
    read_interval_s: float = 1.0
    #: After a successful discovery, subscribe to a stream with this
    #: probability.
    stream_probability: float = 0.25
    #: Requested stream period.
    stream_interval_ms: int = 1000
    #: Cancel each stream after roughly this long (exercises timer
    #: cancellation, i.e. kernel tombstones).
    stream_lifetime_s: float = 6.0
    #: Per-read request timeout.  Under fault campaigns this must cover
    #: the retry policy's worst-case retransmission span.
    read_timeout_s: float = 2.0


#: Relative weights of catalogue peripherals in the deployed population.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("tmp36", 4.0),
    ("hih4030", 2.0),
    ("bmp180", 2.0),
    ("id20la", 1.0),
    ("max6675", 1.0),
    ("relay", 1.0),
)


@dataclass(frozen=True)
class FleetScenario:
    """A whole µPnP deployment, declaratively.

    The fleet is partitioned into gateway *shards*: each shard is an
    independent network (one manager/border-router, one client, up to
    ``shard_size`` Things) running on its own simulator, which is what
    makes fleet runs embarrassingly parallel.
    """

    name: str = "custom"
    #: Total Things across the whole fleet.
    things: int = 50
    #: Things per gateway shard.
    shard_size: int = 25
    #: Channels (peripheral slots) per Thing.
    channels: int = 3
    #: Simulated duration of the run.
    duration_s: float = 30.0
    #: Master seed; all shard randomness forks from it.
    seed: int = 1
    peripheral_mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    churn: ChurnProfile = field(default_factory=ChurnProfile)
    #: Record a cross-layer trace (:mod:`repro.obs`) on every shard.
    trace: bool = False
    #: Per-shard tracer ring-buffer bound when tracing.
    trace_limit: int = 100_000
    #: Endpoint reliability layer (retransmission + duplicate control).
    #: Off reproduces the pre-reliability protocol for A/B benchmarks.
    reliability: bool = True
    #: Client/manager request retry schedule (``None`` = library default).
    #: :class:`~repro.protocol.reliability.RetryPolicy` is a frozen
    #: dataclass of primitives, so scenarios stay pickle-safe.
    retry: Optional[RetryPolicy] = None
    #: Thing driver-install retry schedule (``None`` = library default).
    install_retry: Optional[RetryPolicy] = None
    #: Sample fleet-wide time series (:mod:`repro.telemetry`) on every
    #: shard.  ``None`` (the default) attaches nothing — the disabled
    #: mode costs zero on the hot paths.
    telemetry: Optional[TelemetryConfig] = None
    #: Profile every shard (:mod:`repro.profile`): per-event cost,
    #: opcode heat, idle-gap analysis.  Same zero-cost-when-``None``
    #: contract as ``trace`` and ``telemetry``.
    profile: Optional[ProfileConfig] = None
    #: Duty-cycled sampling load (:mod:`repro.fleet.sampling`): periodic
    #: per-Thing sensor reads and baseline energy accrual.  These events
    #: are fast-forward certified, so they dominate the idle windows the
    #: kernel can skip analytically.  ``None`` installs nothing.
    sampling: Optional["SamplingConfig"] = None
    #: Enable the kernel's closed-form idle fast-forward on every shard.
    #: Digest-neutral by construction (the differential suite proves it);
    #: off by default so existing scenarios run exactly as before.
    fast_forward: bool = False

    def __post_init__(self) -> None:
        if self.things < 1:
            raise ValueError("a fleet needs at least one Thing")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.peripheral_mix:
            raise ValueError("peripheral_mix must not be empty")

    # ------------------------------------------------------------- sharding
    @property
    def shard_count(self) -> int:
        return (self.things + self.shard_size - 1) // self.shard_size

    def shards(self) -> List["ShardSpec"]:
        """Partition into pickle-safe, independently runnable shards.

        The partition is a pure function of the scenario — worker count
        never changes shard boundaries, which is what keeps merged
        metrics identical across ``--workers`` settings.
        """
        specs = []
        for index in range(self.shard_count):
            first = index * self.shard_size
            count = min(self.shard_size, self.things - first)
            specs.append(ShardSpec(self, index, first, count))
        return specs

    def scaled(self, **overrides) -> "FleetScenario":
        """A copy with the given fields replaced (CLI overrides)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ShardSpec:
    """One gateway shard: the unit of parallel execution."""

    scenario: FleetScenario
    index: int
    #: Global id of this shard's first Thing (ids label metrics/events).
    first_thing: int
    #: Number of Things in this shard.
    things: int


#: Named scenarios runnable via ``python -m repro.fleet --scenario``.
SCENARIOS: Dict[str, FleetScenario] = {
    "smoke": FleetScenario(
        name="smoke", things=10, shard_size=5, duration_s=10.0,
    ),
    "metro": FleetScenario(
        name="metro", things=50, shard_size=25, duration_s=30.0,
    ),
    "dense": FleetScenario(
        name="dense", things=200, shard_size=25, duration_s=30.0,
        churn=ChurnProfile(churn_interval_s=8.0, discovery_interval_s=1.5),
    ),
    # The duty-cycled profiling reference: sparse churn and slow reads
    # leave long inter-event gaps, so the idle-gap analyzer has real
    # fast-forward opportunity to quantify.
    "default": FleetScenario(
        name="default", things=20, shard_size=10, duration_s=20.0,
        churn=ChurnProfile(
            churn_interval_s=30.0, discovery_interval_s=5.0,
            read_interval_s=4.0, hot_update_interval_s=40.0,
            stream_probability=0.15,
        ),
    ),
    # The live-service hosting reference (repro.gateway): calm churn
    # and no client-side stream noise, so most sim events while serving
    # are the gateway's own bridged reads/actions.  duration_s is only
    # the default horizon for batch runs — a hosted gateway serves
    # indefinitely.
    "gateway": FleetScenario(
        name="gateway", things=20, shard_size=20, duration_s=60.0,
        churn=ChurnProfile(
            churn_interval_s=60.0, discovery_interval_s=10.0,
            read_interval_s=8.0, hot_update_interval_s=90.0,
            stream_probability=0.0,
        ),
        # Telemetry on by default: the gateway's /stream pushes each
        # shard's sample ticks to WebSocket subscribers.
        telemetry=TelemetryConfig(cadence_s=1.0),
    ),
    # "default" plus the duty-cycled sampling load: every Thing wakes
    # every 50 ms to read a sensor and every 100 ms to accrue sleep
    # energy.  >95% of its events are fast-forward certified, making it
    # the reference workload for ``--fast-forward`` speedups (and the
    # scenario the fastforward benchmarks/differential tests run).
    "duty": FleetScenario(
        name="duty", things=20, shard_size=10, duration_s=20.0,
        churn=ChurnProfile(
            churn_interval_s=30.0, discovery_interval_s=5.0,
            read_interval_s=4.0, hot_update_interval_s=40.0,
            stream_probability=0.15,
        ),
        sampling=SamplingConfig(),
    ),
}


__all__ = [
    "ChurnProfile",
    "FleetScenario",
    "ShardSpec",
    "SCENARIOS",
    "DEFAULT_MIX",
]
