"""Duty-cycled periodic sampling load for fleet nodes.

μPnP nodes in the field are >99% idle: they wake on a timer, read a
sensor, accrue a little energy, and sleep.  This module models that
duty cycle explicitly — a per-Thing :class:`SensorSampler` and
:class:`BaselineAccrual` registered through ``Simulator.every`` — and
is the primary workload the closed-form fast-forward tier
(:meth:`repro.sim.kernel.Simulator.run_until`) accelerates: both
samplers are **fast-forward certified** (their callbacks never touch
the event queue, their state is disjoint per handle, and each ships a
``bulk(n)`` applier whose effect is bit-identical to n sequential
ticks, including the order of float adds into the energy meter).

The sampled readings feed integer accumulators that
``ShardDeployment._collect_final`` folds into the merged fleet metrics
(so the digest-parity machinery proves fast-forward changed nothing),
and the per-tick energy lands in each Thing's meter under dedicated
``sensor`` / ``idle`` categories that surface through the existing
``energy.*_joules`` gauges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import ns_from_ms

#: Event names, shared with the kernel batch registry and the profiler.
SENSOR_EVENT = "sensor-sample"
BASELINE_EVENT = "baseline-accrue"


@dataclass(frozen=True)
class SamplingConfig:
    """Periodic sampling load per Thing (frozen → pickle-safe)."""

    #: Sensor read cadence per Thing.
    sensor_interval_ms: int = 50
    #: Baseline (sleep-current) accrual cadence per Thing.
    baseline_interval_ms: int = 100
    #: Energy per sensor read, microjoules (ADC + bus transaction).
    sensor_read_uj: float = 1.8
    #: Energy per baseline tick, microjoules (sleep draw integrated
    #: over one tick).
    baseline_uj: float = 0.33

    def __post_init__(self) -> None:
        if self.sensor_interval_ms <= 0 or self.baseline_interval_ms <= 0:
            raise ValueError("sampling intervals must be positive")


class SensorSampler:
    """One Thing's periodic sensor read.

    The reading is a deterministic 11-bit LCG stream seeded from the
    Thing's global id, so counts and sums are reproducible and
    shard-order mergeable.  ``apply(n)`` advances the stream by n
    ticks with the identical arithmetic a tick-by-tick run performs —
    the loop is the closed form here; what fast-forward removes is the
    n× kernel dispatch around it, not the integer work itself.
    """

    __slots__ = ("_x", "_read_j", "_meter", "count", "total")

    def __init__(self, global_id: int, meter, read_uj: float) -> None:
        self._x = (global_id * 2654435761 + 1) & 0x7FFFFFFF
        self._read_j = read_uj * 1e-6
        self._meter = meter
        self.count = 0
        self.total = 0

    def tick(self) -> None:
        x = (self._x * 1103515245 + 12345) & 0x7FFFFFFF
        self._x = x
        self.count += 1
        self.total += x >> 20
        self._meter.add("sensor", self._read_j)

    def apply(self, n: int) -> None:
        x = self._x
        total = 0
        for _ in range(n):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
            total += x >> 20
        self._x = x
        self.count += n
        self.total += total
        self._meter.add_n("sensor", self._read_j, n)


class BaselineAccrual:
    """One Thing's sleep-current energy accrual."""

    __slots__ = ("_tick_j", "_meter", "count")

    def __init__(self, meter, tick_uj: float) -> None:
        self._tick_j = tick_uj * 1e-6
        self._meter = meter
        self.count = 0

    def tick(self) -> None:
        self.count += 1
        self._meter.add("idle", self._tick_j)

    def apply(self, n: int) -> None:
        self.count += n
        self._meter.add_n("idle", self._tick_j, n)


def install_sampling(sim, things, config: SamplingConfig, first_id: int = 0):
    """Register certified samplers for every Thing on *sim*.

    Returns ``(samplers, baselines)`` in Thing order, for final-stat
    folding.  ``first_id`` is the shard's first global Thing id, so LCG
    seeds are fleet-unique.  Sampler events are also batch-registered:
    with fast-forward off, the per-Thing cadences align across a shard,
    so run_until drains each instant's K same-name events in one sweep.
    """
    sensor_ns = ns_from_ms(config.sensor_interval_ms)
    baseline_ns = ns_from_ms(config.baseline_interval_ms)
    samplers = []
    baselines = []
    for local, thing in enumerate(things):
        sampler = SensorSampler(
            first_id + local, thing.meter, config.sensor_read_uj)
        sim.every(sensor_ns, sampler.tick, name=SENSOR_EVENT,
                  fast_forward=True, bulk=sampler.apply)
        samplers.append(sampler)
        accrual = BaselineAccrual(thing.meter, config.baseline_uj)
        sim.every(baseline_ns, accrual.tick, name=BASELINE_EVENT,
                  fast_forward=True, bulk=accrual.apply)
        baselines.append(accrual)
    sim.register_batch(SENSOR_EVENT)
    sim.register_batch(BASELINE_EVENT)
    return samplers, baselines


__all__ = [
    "SamplingConfig",
    "SensorSampler",
    "BaselineAccrual",
    "install_sampling",
    "SENSOR_EVENT",
    "BASELINE_EVENT",
]
