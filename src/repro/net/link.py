"""IEEE 802.15.4 link model.

The evaluation platform's radio is the ATMega128RFA1's on-die 802.15.4
transceiver: 250 kbit/s in the 2.4 GHz band, 127-byte PHY frames.  The
model accounts frame airtime exactly and adds unslotted CSMA/CA backoff
as a uniform random delay — the main source of the standard deviations
reported in Table 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: PHY payload limit (aMaxPHYPacketSize).
MAX_PHY_PAYLOAD = 127

#: Synchronisation header + PHR transmitted before the payload (bytes).
PHY_OVERHEAD_BYTES = 6

#: MAC header + FCS for the addressing mode 6LoWPAN uses (bytes).
MAC_OVERHEAD_BYTES = 21

#: Link-layer payload available to the adaptation layer per frame.
MAC_PAYLOAD_LIMIT = MAX_PHY_PAYLOAD - MAC_OVERHEAD_BYTES

BITRATE_BPS = 250_000.0


@dataclass(frozen=True)
class LinkModel:
    """Timing and reliability of one 802.15.4 hop."""

    bitrate_bps: float = BITRATE_BPS
    #: Uniform CSMA/CA backoff window (seconds).
    csma_min_s: float = 0.4e-3
    csma_max_s: float = 2.4e-3
    #: RX/TX turnaround + ACK wait per frame.
    turnaround_s: float = 0.6e-3
    #: Independent per-frame loss probability.
    loss_probability: float = 0.0
    #: Probability that a clear-channel assessment finds the medium busy
    #: (background traffic).  Each busy CCA doubles the backoff window,
    #: up to ``max_backoffs`` attempts — unslotted CSMA/CA's BE ramp.
    busy_probability: float = 0.0
    max_backoffs: int = 5

    def airtime_s(self, mac_payload_bytes: int) -> float:
        """Time on air for one frame carrying *mac_payload_bytes*."""
        if not 0 <= mac_payload_bytes <= MAC_PAYLOAD_LIMIT:
            raise ValueError(
                f"frame payload {mac_payload_bytes} exceeds the "
                f"{MAC_PAYLOAD_LIMIT}-byte 802.15.4 limit"
            )
        total = PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES + mac_payload_bytes
        return total * 8.0 / self.bitrate_bps

    def csma_delay_s(self, rng: random.Random) -> float:
        """One sample of the CSMA/CA backoff delay.

        Under congestion (``busy_probability > 0``) each busy channel
        assessment doubles the backoff window, modelling the 802.15.4
        BE ramp; delay therefore grows super-linearly with load.
        """
        delay = rng.uniform(self.csma_min_s, self.csma_max_s)
        window = self.csma_max_s
        for _ in range(self.max_backoffs):
            if self.busy_probability <= 0 or rng.random() >= self.busy_probability:
                break
            window *= 2.0
            delay += rng.uniform(self.csma_min_s, window)
        return delay

    def frame_delay_s(self, mac_payload_bytes: int, rng: random.Random) -> float:
        """Total per-hop delay for one frame: backoff + air + turnaround."""
        return (
            self.csma_delay_s(rng)
            + self.airtime_s(mac_payload_bytes)
            + self.turnaround_s
        )

    def frame_lost(self, rng: random.Random) -> bool:
        return self.loss_probability > 0 and rng.random() < self.loss_probability


__all__ = [
    "LinkModel",
    "MAX_PHY_PAYLOAD",
    "MAC_PAYLOAD_LIMIT",
    "PHY_OVERHEAD_BYTES",
    "MAC_OVERHEAD_BYTES",
    "BITRATE_BPS",
]
