"""Per-node network stack: addresses, sockets, groups (§5).

A :class:`NetworkStack` is the node-local view of the network: its
unicast IPv6 address, UDP sockets, multicast group memberships and
(for the µPnP manager) anycast membership.  Local CPU costs of the
embedded stack are charged before datagrams enter the network and
before received datagrams reach a socket, per the timing profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.hw.device_id import DeviceId
from repro.hw.power import EnergyMeter
from repro.net.ipv6 import Ipv6Address
from repro.net.multicast import peripheral_group
from repro.net.network import Network
from repro.net.packets import UdpDatagram
from repro.sim.kernel import ns_from_s

SocketHandler = Callable[[UdpDatagram], None]


class StackError(Exception):
    """Socket/address misuse on a node's stack."""


@dataclass
class StackStats:
    sent: int = 0
    received: int = 0
    no_socket: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Datagrams silently discarded because the node was down (crashed).
    dropped_down: int = 0


class NetworkStack:
    """One node's IPv6/UDP endpoint in a simulated µPnP network."""

    SNAPSHOT_SCHEMA = {
        "layer": "net",
        "version": 1,
        "fields": ("_network", "_node_id", "_iid", "_address", "_sockets",
                   "_groups", "_meter", "_down", "stats"),
    }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def __init__(
        self,
        network: Network,
        node_id: int,
        *,
        iid: Optional[int] = None,
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        self._network = network
        self._node_id = node_id
        self._iid = iid if iid is not None else node_id + 1
        self._address = network.unicast_address(self._iid)
        self._sockets: Dict[int, SocketHandler] = {}
        self._groups: Set[Ipv6Address] = set()
        self._meter = meter
        self._down = False
        self.stats = StackStats()
        network.register(self)

    # ------------------------------------------------------------ identity
    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def address(self) -> Ipv6Address:
        return self._address

    @property
    def network(self) -> Network:
        return self._network

    @property
    def sim(self):
        return self._network.sim

    @property
    def is_down(self) -> bool:
        return self._down

    def set_down(self, down: bool) -> None:
        """Take the node off the air (crash) or bring it back (reboot).

        While down, outbound sends and inbound deliveries are silently
        discarded — a powered-off radio neither transmits nor hears.
        """
        self._down = down

    # -------------------------------------------------------------- sockets
    def bind(self, port: int, handler: SocketHandler) -> None:
        if port in self._sockets:
            raise StackError(f"port {port} already bound")
        self._sockets[port] = handler

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    # ---------------------------------------------------------------- send
    def sendto(
        self,
        dst: Ipv6Address,
        dst_port: int,
        payload: bytes,
        *,
        src_port: int,
        after: Optional[Callable[[], None]] = None,
    ) -> UdpDatagram:
        """Queue *payload* for transmission; returns the datagram.

        The local stack's send-path CPU time elapses before the frames
        hit the air; *after* (if given) fires at that point.
        """
        datagram = UdpDatagram(self._address, src_port, dst, dst_port, bytes(payload))
        if self._down:
            self.stats.dropped_down += 1
            return datagram
        cpu = self._network.timing.packet_cpu_s(datagram.size, receive=False)
        self._charge_cpu(cpu)
        self.stats.sent += 1
        self.stats.bytes_sent += datagram.size
        self._trace_cpu("stack.send", cpu, datagram.size)

        def _transmit() -> None:
            self._network.send(self._node_id, datagram)
            if after is not None:
                after()

        self.sim.schedule(ns_from_s(cpu), _transmit, name="stack-send")
        return datagram

    # --------------------------------------------------------------- receive
    def deliver(self, datagram: UdpDatagram) -> None:
        """Called by the network when frames for us finish arriving."""
        if self._down:
            self.stats.dropped_down += 1
            return
        cpu = self._network.timing.packet_cpu_s(datagram.size, receive=True)
        self._charge_cpu(cpu)
        self._trace_cpu("stack.recv", cpu, datagram.size)

        def _dispatch() -> None:
            handler = self._sockets.get(datagram.dst_port)
            if handler is None:
                self.stats.no_socket += 1
                return
            self.stats.received += 1
            self.stats.bytes_received += datagram.size
            handler(datagram)

        self.sim.schedule(ns_from_s(cpu), _dispatch, name="stack-recv")

    # ---------------------------------------------------------------- groups
    def generate_group_address(
        self,
        device_id: DeviceId | int,
        callback: Callable[[Ipv6Address], None],
    ) -> None:
        """Derive the multicast group for *device_id* (§5.1).

        Charged at the measured 2.59 ms (Table 4 row 1).
        """
        timing = self._network.timing
        jitter = self._rng().uniform(-timing.addr_gen_jitter_s,
                                     timing.addr_gen_jitter_s)
        duration = max(0.0, timing.addr_gen_cpu_s + jitter)
        self._charge_cpu(duration)
        group = peripheral_group(self._network.prefix48, device_id)
        self.sim.schedule(ns_from_s(duration), lambda: callback(group),
                          name="addr-gen")

    def join_group(
        self,
        group: Ipv6Address,
        callback: Optional[Callable[[], None]] = None,
    ) -> None:
        """Join *group* (RPL DAO + SMRF state; 5.44 ms, Table 4 row 2)."""
        timing = self._network.timing
        jitter = self._rng().uniform(-timing.group_join_jitter_s,
                                     timing.group_join_jitter_s)
        duration = max(0.0, timing.group_join_cpu_s + jitter)
        self._charge_cpu(duration)

        def _joined() -> None:
            self._groups.add(group)
            self._network.join_group(self._node_id, group)
            if callback is not None:
                callback()

        self.sim.schedule(ns_from_s(duration), _joined, name="group-join")

    def leave_group(self, group: Ipv6Address) -> None:
        self._groups.discard(group)
        self._network.leave_group(self._node_id, group)

    def groups(self) -> Set[Ipv6Address]:
        return set(self._groups)

    def join_anycast(self, address: Ipv6Address) -> None:
        """Serve *address* as an anycast member (the µPnP manager does)."""
        self._network.join_anycast(self._node_id, address)

    # --------------------------------------------------------------- helpers
    def _trace_cpu(self, name: str, cpu_s: float, size: int) -> None:
        """Record this node's send/receive-path CPU as a slice."""
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled_for("net"):
            tracer.complete(
                name, "net", tracer.track(f"node-{self._node_id} stack"),
                ns_from_s(cpu_s), args={"bytes": size},
            )

    def _rng(self):
        return self._network._rng  # shared deterministic stream

    def _charge_cpu(self, seconds: float) -> None:
        if self._meter is not None:
            from repro.mcu.spec import ATMEGA128RFA1

            self._meter.add_draw("net-cpu", ATMEGA128RFA1.active_draw, seconds)


__all__ = ["NetworkStack", "StackError", "StackStats", "SocketHandler"]
