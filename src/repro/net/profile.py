"""Timing profile of the network software stack (§6.4 calibration).

On a 16 MHz 8-bit MCU running Contiki, per-packet software cost (uIP
input/output processing, 6LoWPAN (de)compression, RPL bookkeeping, copy
in and out of the radio FIFO) dominates the ~2 ms frame airtime.  This
profile carries those CPU constants; the defaults are calibrated so the
one-hop scenario of §6.4 lands on Table 4's rows, and every constant is
in one place so multi-hop / lossy experiments can scale them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetTimingProfile:
    """Per-operation CPU costs of the embedded network stack."""

    #: Stack output path for a locally-originated datagram.
    send_cpu_s: float = 9.0e-3
    #: Stack input path for a locally-destined datagram.
    recv_cpu_s: float = 9.0e-3
    #: Forwarding cost at an intermediate hop (no socket delivery).
    forward_cpu_s: float = 9.24e-3
    #: Marginal copy/checksum cost per payload byte.
    per_byte_cpu_s: float = 20.0e-6

    #: Deriving a peripheral's multicast address (Table 4 row 1).
    addr_gen_cpu_s: float = 2.59e-3
    addr_gen_jitter_s: float = 52.0e-6
    #: Joining a multicast group: RPL DAO + SMRF state (Table 4 row 2).
    group_join_cpu_s: float = 5.44e-3
    group_join_jitter_s: float = 17.0e-6

    #: Manager-side driver repository lookup.
    manager_lookup_cpu_s: float = 0.3e-3
    #: Writing one byte of a received driver image to flash.
    flash_write_per_byte_s: float = 50.0e-6
    #: Activating an installed driver: image verification, driver-table
    #: rebuild, state allocation and the init event (data-dependent, so
    #: it carries substantial jitter — the dominant term of Table 4's
    #: install-row standard deviation).
    driver_activation_cpu_s: float = 54.0e-3
    driver_activation_jitter_s: float = 17.0e-3

    def packet_cpu_s(self, payload_bytes: int, *, receive: bool) -> float:
        """CPU time to push/pull one datagram through the local stack."""
        base = self.recv_cpu_s if receive else self.send_cpu_s
        return base + payload_bytes * self.per_byte_cpu_s


DEFAULT_NET_TIMING = NetTimingProfile()

__all__ = ["NetTimingProfile", "DEFAULT_NET_TIMING"]
