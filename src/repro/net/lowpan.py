"""6LoWPAN adaptation layer model (RFC 4944 / RFC 6282) [36].

µPnP realises IPv6 over 802.15.4 through 6LoWPAN (§6).  For the
simulation we model the two properties that matter to timing and
energy: *header compression* (an IPv6+UDP header pair compresses to a
few bytes when both addresses are on-link) and *fragmentation* (UDP
payloads that do not fit one frame are split with FRAG1/FRAGN headers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.link import MAC_PAYLOAD_LIMIT

#: Compressed IPHC (IPv6) + NHC (UDP) header bytes in the common on-link
#: case: dispatch + IPHC(2) + CID/context + compressed ports/checksum.
COMPRESSED_HEADERS_BYTES = 10

#: Uncompressed IPv6 (40) + UDP (8) headers, for reference/compression-off.
UNCOMPRESSED_HEADERS_BYTES = 48

#: FRAG1 / FRAGN header sizes (RFC 4944 §5.3).
FRAG1_HEADER_BYTES = 4
FRAGN_HEADER_BYTES = 5


@dataclass(frozen=True)
class LowpanModel:
    """Computes frame payload layouts for UDP datagrams."""

    compression: bool = True
    mac_payload_limit: int = MAC_PAYLOAD_LIMIT

    @property
    def header_bytes(self) -> int:
        return (
            COMPRESSED_HEADERS_BYTES
            if self.compression
            else UNCOMPRESSED_HEADERS_BYTES
        )

    def frame_payload_sizes(self, udp_payload_bytes: int) -> List[int]:
        """MAC payload sizes of the frame(s) carrying one UDP datagram.

        Returns one entry per frame, in transmission order.
        """
        if udp_payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        datagram = self.header_bytes + udp_payload_bytes
        if datagram <= self.mac_payload_limit:
            return [datagram]
        # Fragmented: FRAG1 then FRAGN frames; fragment payloads must be
        # multiples of 8 bytes except the last (RFC 4944).
        sizes: List[int] = []
        remaining = datagram
        first_capacity = (self.mac_payload_limit - FRAG1_HEADER_BYTES) // 8 * 8
        take = min(first_capacity, remaining)
        sizes.append(take + FRAG1_HEADER_BYTES)
        remaining -= take
        next_capacity = (self.mac_payload_limit - FRAGN_HEADER_BYTES) // 8 * 8
        while remaining > 0:
            take = min(next_capacity, remaining)
            sizes.append(take + FRAGN_HEADER_BYTES)
            remaining -= take
        return sizes

    def frame_count(self, udp_payload_bytes: int) -> int:
        return len(self.frame_payload_sizes(udp_payload_bytes))

    def total_link_bytes(self, udp_payload_bytes: int) -> int:
        """Total MAC payload bytes across all fragments."""
        return sum(self.frame_payload_sizes(udp_payload_bytes))


DEFAULT_LOWPAN = LowpanModel()

__all__ = [
    "LowpanModel",
    "DEFAULT_LOWPAN",
    "COMPRESSED_HEADERS_BYTES",
    "UNCOMPRESSED_HEADERS_BYTES",
    "FRAG1_HEADER_BYTES",
    "FRAGN_HEADER_BYTES",
]
