"""Network topology: which nodes hear which (the connectivity graph)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


class TopologyError(Exception):
    """Invalid topology operations (unknown nodes, self-links)."""


class Topology:
    """An undirected connectivity graph over integer node ids."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Set[int]] = {}

    # --------------------------------------------------------------- editing
    def add_node(self, node_id: int) -> None:
        self._adjacency.setdefault(node_id, set())

    def connect(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError("no self-links")
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def disconnect(self, a: int, b: int) -> None:
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)

    # --------------------------------------------------------------- queries
    def nodes(self) -> List[int]:
        return sorted(self._adjacency)

    def neighbors(self, node_id: int) -> Set[int]:
        try:
            return set(self._adjacency[node_id])
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def are_neighbors(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, set())

    def shortest_path(self, src: int, dst: int) -> Optional[List[int]]:
        """BFS hop-count path [src, ..., dst]; None when unreachable."""
        if src not in self._adjacency or dst not in self._adjacency:
            raise TopologyError("unknown endpoint")
        if src == dst:
            return [src]
        parent: Dict[int, int] = {src: src}
        frontier = [src]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for neighbor in sorted(self._adjacency[node]):
                    if neighbor not in parent:
                        parent[neighbor] = node
                        if neighbor == dst:
                            path = [dst]
                            while path[-1] != src:
                                path.append(parent[path[-1]])
                            return list(reversed(path))
                        nxt.append(neighbor)
            frontier = nxt
        return None

    def hop_distance(self, src: int, dst: int) -> Optional[int]:
        path = self.shortest_path(src, dst)
        return None if path is None else len(path) - 1

    # -------------------------------------------------------------- builders
    @classmethod
    def full_mesh(cls, node_ids: Iterable[int]) -> "Topology":
        """Every node hears every other (the 'one-hop' setting of §6.4)."""
        topo = cls()
        ids = list(node_ids)
        for node in ids:
            topo.add_node(node)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                topo.connect(a, b)
        return topo

    @classmethod
    def star(cls, center: int, leaves: Iterable[int]) -> "Topology":
        topo = cls()
        topo.add_node(center)
        for leaf in leaves:
            topo.connect(center, leaf)
        return topo

    @classmethod
    def line(cls, node_ids: Iterable[int]) -> "Topology":
        topo = cls()
        ids = list(node_ids)
        for node in ids:
            topo.add_node(node)
        for a, b in zip(ids, ids[1:]):
            topo.connect(a, b)
        return topo

    @classmethod
    def from_positions(
        cls,
        positions: Dict[int, Tuple[float, float]],
        radio_range: float,
    ) -> "Topology":
        """Unit-disk connectivity from 2-D coordinates."""
        topo = cls()
        ids = sorted(positions)
        for node in ids:
            topo.add_node(node)
        for i, a in enumerate(ids):
            ax, ay = positions[a]
            for b in ids[i + 1 :]:
                bx, by = positions[b]
                if math.hypot(ax - bx, ay - by) <= radio_range:
                    topo.connect(a, b)
        return topo


__all__ = ["Topology", "TopologyError"]
