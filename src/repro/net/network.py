"""The simulated IPv6 network: topology + RPL + SMRF + 802.15.4 timing.

One :class:`Network` owns the connectivity graph, the converged RPL
DODAG, group-membership and anycast tables, and moves datagrams between
:class:`repro.net.stack.NetworkStack` instances with per-hop delays
from the link and 6LoWPAN models.  Unicast follows shortest paths (the
converged storing-mode RPL routes); multicast follows the SMRF plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.net.ipv6 import Ipv6Address, network_prefix48
from repro.net.link import LinkModel
from repro.net.lowpan import DEFAULT_LOWPAN, LowpanModel
from repro.net.packets import UdpDatagram
from repro.net.profile import DEFAULT_NET_TIMING, NetTimingProfile
from repro.net.rpl import Dodag
from repro.net.smrf import plan as smrf_plan
from repro.net.topology import Topology
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack


class NetworkError(Exception):
    """Network-level misconfiguration (unknown destination, no DODAG)."""


@dataclass
class NetworkStats:
    frames_sent: int = 0
    frames_lost: int = 0
    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_undeliverable: int = 0
    multicast_transmissions: int = 0
    bytes_sent: int = 0
    #: MAC-layer payload bytes actually framed onto the air (datagram
    #: payload plus 6LoWPAN fragmentation headers).  Together with
    #: ``frames_sent`` this makes exact radio airtime — hence duty
    #: cycle — a closed-form function of the stats (airtime is linear
    #: in frame payload), so the hot path pays one integer add instead
    #: of a float airtime accumulation.
    mac_payload_bytes: int = 0
    #: Datagrams swallowed by an installed fault injector.
    faults_dropped: int = 0
    #: Extra datagram copies a fault injector put on the air.
    faults_duplicated: int = 0
    #: Datagrams a fault injector held back before routing (reordering).
    faults_delayed: int = 0


class Network:
    """A single µPnP network (one 48-bit prefix, one RPL instance)."""

    SNAPSHOT_SCHEMA = {
        "layer": "net",
        "version": 1,
        "fields": ("_sim", "_link", "_lowpan", "_timing", "_rng",
                   "_prefix", "_prefix48", "_stacks", "_by_address",
                   "_groups", "_anycast", "topology", "dodag", "stats",
                   "_monitors", "_delivery_monitors", "_fault_injector"),
    }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def __init__(
        self,
        sim: Simulator,
        *,
        prefix: str = "2001:db8::",
        link: LinkModel = LinkModel(),
        lowpan: LowpanModel = DEFAULT_LOWPAN,
        timing: NetTimingProfile = DEFAULT_NET_TIMING,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        self._sim = sim
        self._link = link
        self._lowpan = lowpan
        self._timing = timing
        self._rng = (rng or RngRegistry(0)).stream("network")
        self._prefix = Ipv6Address.parse(prefix)
        self._prefix48 = network_prefix48(self._prefix)
        self._stacks: Dict[int, "NetworkStack"] = {}
        self._by_address: Dict[Ipv6Address, int] = {}
        self._groups: Dict[Ipv6Address, Set[int]] = {}
        self._anycast: Dict[Ipv6Address, Set[int]] = {}
        self.topology = Topology()
        self.dodag: Optional[Dodag] = None
        self.stats = NetworkStats()
        self._monitors: List = []
        self._delivery_monitors: List = []
        self._fault_injector = None

    # ----------------------------------------------------------- composition
    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def timing(self) -> NetTimingProfile:
        return self._timing

    @property
    def lowpan(self) -> LowpanModel:
        return self._lowpan

    @property
    def link(self) -> LinkModel:
        return self._link

    @property
    def prefix48(self) -> int:
        """The 48-bit network prefix used by the multicast schema."""
        return self._prefix48

    def unicast_address(self, iid: int) -> Ipv6Address:
        """prefix:<zeros>:iid — a node's unicast address."""
        base = Ipv6Address(self._prefix48 << 80)
        return base.with_interface_id(iid)

    # ----------------------------------------------------------- registration
    def register(self, stack: "NetworkStack") -> None:
        if stack.node_id in self._stacks:
            raise NetworkError(f"node id {stack.node_id} already registered")
        self._stacks[stack.node_id] = stack
        self._by_address[stack.address] = stack.node_id
        self.topology.add_node(stack.node_id)

    def stack(self, node_id: int) -> "NetworkStack":
        return self._stacks[node_id]

    def nodes(self) -> List[int]:
        return sorted(self._stacks)

    def connect(self, a: int, b: int) -> None:
        self.topology.connect(a, b)

    def build_dodag(self, root: int) -> Dodag:
        """Converge RPL with *root* as the DODAG root / border router."""
        self.dodag = Dodag.build(self.topology, root)
        return self.dodag

    def add_monitor(self, monitor) -> None:
        """Observe every datagram entering the network: monitor(src_id,
        datagram).  Never mutates traffic."""
        self._monitors.append(monitor)

    def remove_monitor(self, monitor) -> None:
        """Detach a monitor added with :meth:`add_monitor`.  Idempotent."""
        try:
            self._monitors.remove(monitor)
        except ValueError:
            pass

    def add_delivery_monitor(self, monitor) -> None:
        """Observe every datagram the network hands to a stack:
        monitor(dst_node_id, datagram).

        Fires when delivery is *committed* (loss, faults and routing
        already resolved, per-hop delay not yet elapsed).  This is the
        delivered-datagram log the telemetry accuracy tests reconcile
        reliability counters against.  Never mutates traffic.
        """
        self._delivery_monitors.append(monitor)

    def remove_delivery_monitor(self, monitor) -> None:
        """Detach a monitor added with :meth:`add_delivery_monitor`."""
        try:
            self._delivery_monitors.remove(monitor)
        except ValueError:
            pass

    def set_fault_injector(self, injector) -> None:
        """Install (or with ``None``, remove) the datagram fault hook.

        *injector* is called as ``injector(src_id, datagram)`` for every
        datagram entering the network and returns the list of
        ``(extra_delay_s, datagram)`` copies to actually route: ``[]``
        drops it, one zero-delay entry passes it through, several entries
        duplicate it, a positive delay holds a copy back (reordering),
        and a rewritten datagram models in-flight corruption.  The chaos
        engine (:mod:`repro.chaos`) is the canonical implementation.
        """
        self._fault_injector = injector

    # ------------------------------------------------------------ membership
    def join_group(self, node_id: int, group: Ipv6Address) -> None:
        self._groups.setdefault(group, set()).add(node_id)

    def leave_group(self, node_id: int, group: Ipv6Address) -> None:
        members = self._groups.get(group)
        if members is not None:
            members.discard(node_id)
            if not members:
                del self._groups[group]

    def group_members(self, group: Ipv6Address) -> Set[int]:
        return set(self._groups.get(group, set()))

    def join_anycast(self, node_id: int, address: Ipv6Address) -> None:
        self._anycast.setdefault(address, set()).add(node_id)
        self._by_address.setdefault(address, node_id)

    def is_anycast(self, address: Ipv6Address) -> bool:
        return address in self._anycast

    # ------------------------------------------------------------- data plane
    def send(self, src_id: int, datagram: UdpDatagram) -> None:
        """Move *datagram* from node *src_id* toward its destination(s).

        Called by the source stack after it has charged its own send-path
        CPU time; this method accounts link delays and remote CPU.
        """
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += datagram.size
        for monitor in self._monitors:
            monitor(src_id, datagram)
        tracer = self._sim.tracer
        if tracer is not None and tracer.enabled_for("proto"):
            # The protocol event stream: one instant per datagram, with
            # the raw payload so ProtocolTracer can decode lazily.
            tracer.instant("proto.send", "proto", tracer.track("protocol"),
                           args={"src_id": src_id,
                                 "src": str(datagram.src),
                                 "dst": str(datagram.dst),
                                 "size": datagram.size,
                                 "payload": datagram.payload})
        if self._fault_injector is None:
            self._route(src_id, datagram)
            return
        copies = self._fault_injector(src_id, datagram)
        if not copies:
            self.stats.faults_dropped += 1
            return
        if len(copies) > 1:
            self.stats.faults_duplicated += len(copies) - 1
        for extra_delay_s, copy in copies:
            if extra_delay_s <= 0.0:
                self._route(src_id, copy)
            else:
                self.stats.faults_delayed += 1
                self._sim.schedule(
                    ns_from_s(extra_delay_s),
                    lambda c=copy: self._route(src_id, c),
                    name="chaos-delay",
                )

    def _route(self, src_id: int, datagram: UdpDatagram) -> None:
        """Route one (possibly fault-rewritten) datagram copy."""
        if datagram.dst.is_multicast:
            self._send_multicast(src_id, datagram)
        elif self.is_anycast(datagram.dst):
            target = self._nearest_anycast(src_id, datagram.dst)
            if target is None:
                self.stats.datagrams_undeliverable += 1
                return
            self._send_unicast(src_id, target, datagram)
        else:
            target = self._by_address.get(datagram.dst)
            if target is None:
                self.stats.datagrams_undeliverable += 1
                return
            self._send_unicast(src_id, target, datagram)

    # ------------------------------------------------------------ unicast path
    def _send_unicast(self, src_id: int, dst_id: int, datagram: UdpDatagram) -> None:
        if src_id == dst_id:
            self._sim.call_soon(
                lambda: self._deliver(dst_id, datagram), name="loopback"
            )
            self.stats.datagrams_delivered += 1
            return
        path = self.topology.shortest_path(src_id, dst_id)
        if path is None:
            self.stats.datagrams_undeliverable += 1
            return
        tracer = self._sim.tracer
        trace_net = tracer is not None and tracer.enabled_for("net")
        delay = 0.0
        lost = False
        for hop_index in range(len(path) - 1):
            a, b = path[hop_index], path[hop_index + 1]
            hop = self._hop_delay(datagram.size, a, b)
            if trace_net:
                self._trace_hop(tracer, a, b, delay, hop, datagram.size)
            delay += hop
            if self._frames_lost(datagram.size):
                lost = True
                break
            if hop_index < len(path) - 2:
                delay += self._timing.forward_cpu_s
        if lost:
            return
        self._schedule_delivery(dst_id, datagram, delay)

    # ---------------------------------------------------------- multicast path
    def _send_multicast(self, src_id: int, datagram: UdpDatagram) -> None:
        if self.dodag is None:
            raise NetworkError("multicast requires a converged DODAG")
        members = self.group_members(datagram.dst)
        forwarding = smrf_plan(self.dodag, src_id, members)
        tracer = self._sim.tracer
        trace_net = tracer is not None and tracer.enabled_for("net")
        arrival: Dict[int, float] = {src_id: 0.0}
        # Uplink: sender -> root along preferred parents.
        uplink = forwarding.uplink
        for a, b in zip(uplink, uplink[1:]):
            self.stats.multicast_transmissions += 1
            hop = self._hop_delay(datagram.size, a, b)
            if trace_net:
                self._trace_hop(tracer, a, b, arrival[a], hop, datagram.size)
            arrival[b] = arrival[a] + hop + self._timing.forward_cpu_s
        # Downward flood along the member-bearing tree edges.
        for a, b in forwarding.downlinks:
            self.stats.multicast_transmissions += 1
            base = arrival.get(a, 0.0)
            hop = self._hop_delay(datagram.size, a, b)
            if trace_net:
                self._trace_hop(tracer, a, b, base, hop, datagram.size)
            arrival[b] = base + hop + self._timing.forward_cpu_s
        for receiver in forwarding.receivers:
            if receiver == src_id:
                continue  # the sender does not loop its own datagram back
            self._schedule_delivery(
                receiver, datagram, arrival.get(receiver, 0.0)
            )
        # Local membership: deliver immediately (stack-internal loopback).
        if src_id in members and datagram.src != self._stacks[src_id].address:
            self._schedule_delivery(src_id, datagram, 0.0)

    # --------------------------------------------------------------- helpers
    def _trace_hop(self, tracer, a: int, b: int, offset_s: float,
                   hop_s: float, size: int) -> None:
        """Record one link traversal as a slice on the link's track."""
        tracer.complete(
            "net.hop", "net", tracer.track(f"net {a}->{b}"),
            ns_from_s(hop_s), ts_ns=self._sim.now_ns + ns_from_s(offset_s),
            args={"from": a, "to": b, "bytes": size},
        )

    def _hop_delay(self, payload_bytes: int, a: int, b: int) -> float:
        """Delay for all fragments of one datagram across one link."""
        del a, b  # links are homogeneous in this model
        delay = 0.0
        for frame_payload in self._lowpan.frame_payload_sizes(payload_bytes):
            self.stats.frames_sent += 1
            self.stats.mac_payload_bytes += frame_payload
            delay += self._link.frame_delay_s(frame_payload, self._rng)
        return delay

    def airtime_s(self) -> float:
        """Cumulative radio time-on-air implied by the frame counters.

        Airtime per frame is ``(overhead + payload) * 8 / bitrate``
        (see :meth:`LinkModel.airtime_s`), which is linear in payload —
        so the exact total falls out of two integers kept on the send
        path.  Telemetry samples this to derive the radio duty cycle.
        """
        from repro.net.link import MAC_OVERHEAD_BYTES, PHY_OVERHEAD_BYTES

        overhead = PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES
        total_bytes = (self.stats.frames_sent * overhead
                       + self.stats.mac_payload_bytes)
        return total_bytes * 8.0 / self._link.bitrate_bps

    def _frames_lost(self, payload_bytes: int) -> bool:
        if self._link.loss_probability <= 0:
            return False
        for _ in self._lowpan.frame_payload_sizes(payload_bytes):
            if self._link.frame_lost(self._rng):
                self.stats.frames_lost += 1
                return True
        return False

    def _nearest_anycast(self, src_id: int, address: Ipv6Address) -> Optional[int]:
        candidates = self._anycast.get(address, set())
        best: Optional[int] = None
        best_hops = None
        for node in sorted(candidates):
            hops = self.topology.hop_distance(src_id, node)
            if hops is None:
                continue
            if best_hops is None or hops < best_hops:
                best, best_hops = node, hops
        return best

    def _schedule_delivery(
        self, node_id: int, datagram: UdpDatagram, delay_s: float
    ) -> None:
        stack = self._stacks[node_id]
        self.stats.datagrams_delivered += 1
        if self._delivery_monitors:
            for monitor in self._delivery_monitors:
                monitor(node_id, datagram)
        self._sim.schedule(
            ns_from_s(delay_s),
            lambda: stack.deliver(datagram),
            name="net-deliver",
        )

    def _deliver(self, node_id: int, datagram: UdpDatagram) -> None:
        if self._delivery_monitors:
            for monitor in self._delivery_monitors:
                monitor(node_id, datagram)
        self._stacks[node_id].deliver(datagram)


__all__ = ["Network", "NetworkError", "NetworkStats"]
