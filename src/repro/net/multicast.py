"""The µPnP multicast addressing schema (§5.1, Figure 9).

Unicast-prefix-based IPv6 multicast addresses (RFC 3306 [15]):

    | 32 bits    | 48 bits          | 16 bits | 32 bits          |
    | ff3e:0030  | <network prefix> | 0       | <peripheral id>  |

The first 32 bits are the fixed µPnP prefix ``0xff3e0030``; the next 48
carry the unicast network prefix so the schema works in a global or
local scope; the last 32 bits are the peripheral type identifier from
the hardware identification (§3).  Two groups are reserved:
``0x00000000`` = all peripherals, ``0xffffffff`` = all µPnP clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.device_id import ALL_CLIENTS, ALL_PERIPHERALS, DeviceId
from repro.net.ipv6 import AddressError, Ipv6Address

#: The fixed first 32 bits of every µPnP multicast address.
UPNP_MULTICAST_PREFIX32 = 0xFF3E0030


def peripheral_group(network_prefix48: int, device_id: DeviceId | int) -> Ipv6Address:
    """Multicast group for all Things carrying *device_id* in the network."""
    if not 0 <= network_prefix48 < (1 << 48):
        raise AddressError("network prefix must fit 48 bits")
    peripheral = int(getattr(device_id, "value", device_id)) & 0xFFFFFFFF
    value = (
        (UPNP_MULTICAST_PREFIX32 << 96)
        | (network_prefix48 << 48)
        | (0 << 32)
        | peripheral
    )
    return Ipv6Address(value)


def all_peripherals_group(network_prefix48: int) -> Ipv6Address:
    """The reserved group representing every peripheral (0x00000000)."""
    return peripheral_group(network_prefix48, ALL_PERIPHERALS)


def all_clients_group(network_prefix48: int) -> Ipv6Address:
    """The reserved group representing every µPnP client (0xffffffff)."""
    return peripheral_group(network_prefix48, ALL_CLIENTS)


def stream_group(network_prefix48: int, device_id: DeviceId | int) -> Ipv6Address:
    """Group carrying a peripheral's value stream (§5.3.1 messages 13/14).

    Distinguished from the discovery group by setting the otherwise-zero
    16-bit pad field to 1, so stream traffic never collides with the
    Things listening on the peripheral's discovery group.
    """
    base = peripheral_group(network_prefix48, device_id)
    return Ipv6Address(base.value | (1 << 32))


#: Pad-field flag marking location-scoped groups (§9 extension).
LOCATION_FLAG = 0x4
MAX_ZONE = 0x0FFF


def location_group(
    network_prefix48: int, device_id: DeviceId | int, zone: int
) -> Ipv6Address:
    """Location-aware group (§9 future work): one peripheral type in one
    physical zone.

    Encoded in the 16-bit pad field as ``0x4zzz`` (flag nibble + 12-bit
    zone), so it coexists with discovery (pad 0) and stream (pad 1)
    groups for the same peripheral type.
    """
    if not 0 <= zone <= MAX_ZONE:
        raise AddressError(f"zone out of 12-bit range: {zone}")
    base = peripheral_group(network_prefix48, device_id)
    pad = (LOCATION_FLAG << 12) | zone
    return Ipv6Address(base.value | (pad << 32))


def parse_location_group(address: Ipv6Address):
    """(GroupInfo, zone) for a location group, else None."""
    if (address.value >> 96) != UPNP_MULTICAST_PREFIX32:
        return None
    pad = (address.value >> 32) & 0xFFFF
    if (pad >> 12) != LOCATION_FLAG:
        return None
    prefix = (address.value >> 48) & ((1 << 48) - 1)
    peripheral = address.value & 0xFFFFFFFF
    return GroupInfo(prefix, peripheral), pad & MAX_ZONE


@dataclass(frozen=True)
class GroupInfo:
    """Decomposition of a µPnP multicast address."""

    network_prefix48: int
    peripheral_id: int

    @property
    def device_id(self) -> DeviceId:
        return DeviceId(self.peripheral_id)

    @property
    def is_all_peripherals(self) -> bool:
        return self.peripheral_id == ALL_PERIPHERALS

    @property
    def is_all_clients(self) -> bool:
        return self.peripheral_id == ALL_CLIENTS


def parse_group(address: Ipv6Address) -> Optional[GroupInfo]:
    """Decompose *address*; None when it is not a µPnP multicast group."""
    if (address.value >> 96) != UPNP_MULTICAST_PREFIX32:
        return None
    if (address.value >> 32) & 0xFFFF:
        return None  # the 16 padding bits must be zero
    prefix = (address.value >> 48) & ((1 << 48) - 1)
    peripheral = address.value & 0xFFFFFFFF
    return GroupInfo(prefix, peripheral)


__all__ = [
    "UPNP_MULTICAST_PREFIX32",
    "peripheral_group",
    "all_peripherals_group",
    "all_clients_group",
    "parse_group",
    "GroupInfo",
]
