"""IPv6 addresses: parsing, RFC 5952 text form, prefixes.

The paper interconnects all µPnP entities at the network layer with
IPv6 (§5) and renders addresses using the RFC 5952 representation rules
[22] — lowercase hex, zero-run compression with ``::`` (longest run,
leftmost on ties, never for a single group).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import List, Tuple

_MAX = (1 << 128) - 1


class AddressError(ValueError):
    """Malformed IPv6 text or out-of-range numeric value."""


@total_ordering
@dataclass(frozen=True)
class Ipv6Address:
    """An immutable 128-bit IPv6 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX:
            raise AddressError(f"address out of range: {self.value:#x}")

    # ------------------------------------------------------------- builders
    @classmethod
    def parse(cls, text: str) -> "Ipv6Address":
        """Parse any RFC 4291 text form (with or without ``::``)."""
        text = text.strip().lower()
        if text.count("::") > 1:
            raise AddressError(f"multiple '::' in {text!r}")
        if "::" in text:
            head, _, tail = text.partition("::")
            head_groups = head.split(":") if head else []
            tail_groups = tail.split(":") if tail else []
            missing = 8 - len(head_groups) - len(tail_groups)
            if missing < 1:
                raise AddressError(f"'::' expands to nothing in {text!r}")
            groups = head_groups + ["0"] * missing + tail_groups
        else:
            groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"need 8 groups, got {len(groups)} in {text!r}")
        value = 0
        for group in groups:
            if not group or len(group) > 4:
                raise AddressError(f"bad group {group!r} in {text!r}")
            try:
                number = int(group, 16)
            except ValueError:
                raise AddressError(f"bad group {group!r} in {text!r}") from None
            value = (value << 16) | number
        return cls(value)

    @classmethod
    def from_groups(cls, groups: Tuple[int, ...]) -> "Ipv6Address":
        if len(groups) != 8:
            raise AddressError("need exactly 8 groups")
        value = 0
        for group in groups:
            if not 0 <= group <= 0xFFFF:
                raise AddressError(f"group out of range: {group:#x}")
            value = (value << 16) | group
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv6Address":
        if len(data) != 16:
            raise AddressError("an IPv6 address is exactly 16 bytes")
        return cls(int.from_bytes(data, "big"))

    # ------------------------------------------------------------ accessors
    def groups(self) -> Tuple[int, ...]:
        return tuple((self.value >> (112 - 16 * i)) & 0xFFFF for i in range(8))

    def packed(self) -> bytes:
        return self.value.to_bytes(16, "big")

    @property
    def is_multicast(self) -> bool:
        """ff00::/8"""
        return (self.value >> 120) == 0xFF

    @property
    def is_unspecified(self) -> bool:
        return self.value == 0

    @property
    def is_link_local(self) -> bool:
        """fe80::/10"""
        return (self.value >> 118) == 0x3FA

    def high64(self) -> int:
        return self.value >> 64

    def low64(self) -> int:
        return self.value & ((1 << 64) - 1)

    # -------------------------------------------------------------- prefixes
    def prefix_bits(self, length: int) -> int:
        """The top *length* bits as an integer."""
        if not 0 <= length <= 128:
            raise AddressError("prefix length must be 0..128")
        if length == 0:
            return 0
        return self.value >> (128 - length)

    def matches_prefix(self, prefix: "Ipv6Address", length: int) -> bool:
        return self.prefix_bits(length) == prefix.prefix_bits(length)

    def with_interface_id(self, iid: int) -> "Ipv6Address":
        """Replace the low 64 bits (the interface identifier)."""
        if not 0 <= iid < (1 << 64):
            raise AddressError("interface id must fit 64 bits")
        return Ipv6Address((self.value & ~((1 << 64) - 1)) | iid)

    # ------------------------------------------------------------ formatting
    def __str__(self) -> str:
        """RFC 5952 canonical text form."""
        groups = self.groups()
        # Find the longest run of zero groups (length >= 2), leftmost wins.
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for index, group in enumerate(groups):
            if group == 0:
                if run_start < 0:
                    run_start, run_len = index, 1
                else:
                    run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{g:x}" for g in groups)
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
        return f"{head}::{tail}"

    def __repr__(self) -> str:
        return f"Ipv6Address('{self}')"

    def __lt__(self, other: "Ipv6Address") -> bool:
        return self.value < other.value


def network_prefix48(text_or_addr: "Ipv6Address | str") -> int:
    """The 48-bit network prefix of an address (as an int)."""
    address = (
        text_or_addr
        if isinstance(text_or_addr, Ipv6Address)
        else Ipv6Address.parse(text_or_addr)
    )
    return address.prefix_bits(48)


__all__ = ["Ipv6Address", "AddressError", "network_prefix48"]
