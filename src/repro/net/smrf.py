"""SMRF — Stateless Multicast RPL Forwarding [32].

SMRF forwards multicast datagrams *down* the RPL DODAG only: a node
accepts a multicast frame solely from its preferred parent and
re-forwards it towards children whose subtrees contain group members
(group membership is propagated up the tree by RPL's group management,
modelled here as an oracle over the current membership sets).  A sender
that is not the root first passes the datagram to the root along its
default route, after which the downward flood begins.

The model computes the *forwarding plan* — which links carry the packet
and in what order — so the network layer can charge airtime and CPU per
transmission and deliver to each member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.net.rpl import Dodag


@dataclass(frozen=True)
class ForwardingPlan:
    """How one multicast datagram traverses the network.

    ``uplink`` is the node path from the sender up to the root (empty
    when the sender is the root); ``downlinks`` are (from, to) tree
    edges carrying the downward flood in BFS order; ``receivers`` are
    the group members that ultimately accept the datagram.
    """

    uplink: Tuple[int, ...]
    downlinks: Tuple[Tuple[int, int], ...]
    receivers: Tuple[int, ...]

    @property
    def transmissions(self) -> int:
        """Number of link transmissions the datagram costs."""
        return max(0, len(self.uplink) - 1) + len(self.downlinks)


def plan(dodag: Dodag, sender: int, members: Set[int]) -> ForwardingPlan:
    """Compute the SMRF forwarding plan for one multicast datagram."""
    members = {m for m in members if dodag.joined(m)}

    # Phase 1: the sender unicasts the datagram to the DODAG root.
    uplink: Tuple[int, ...] = ()
    if sender != dodag.root:
        uplink = tuple(dodag.path_to_root(sender))

    # Phase 2: flood down every subtree that contains at least one member.
    downlinks: List[Tuple[int, int]] = []
    receivers: List[int] = []
    if dodag.root in members:
        receivers.append(dodag.root)
    frontier = [dodag.root]
    while frontier:
        nxt: List[int] = []
        for node in frontier:
            for child in sorted(dodag.children.get(node, ())):
                subtree = dodag.subtree(child)
                if subtree & members:
                    downlinks.append((node, child))
                    if child in members:
                        receivers.append(child)
                    nxt.append(child)
        frontier = nxt
    return ForwardingPlan(uplink, tuple(downlinks), tuple(receivers))


def duplicate_suppression_delay_s(rng, spread_s: float = 1.0e-3) -> float:
    """SMRF's random forwarding delay (avoids synchronized collisions)."""
    return rng.uniform(0.0, spread_s)


__all__ = ["ForwardingPlan", "plan", "duplicate_suppression_delay_s"]
