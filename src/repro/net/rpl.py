"""RPL (RFC 6550) [43] — simplified DODAG construction and routing.

RPL organises the network into a Destination-Oriented DAG rooted at the
border router.  This model captures the converged state rather than the
control traffic: preferred parents are chosen by hop-count rank (BFS
from the root, deterministic lowest-id tie-break), giving every node an
upward default route and the root a complete view of downward routes
(storing mode).  SMRF (see :mod:`repro.net.smrf`) forwards multicast
along exactly this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.topology import Topology, TopologyError

#: Rank increment per hop (RPL MinHopRankIncrease default is 256).
MIN_HOP_RANK_INCREASE = 256
ROOT_RANK = 256


class RplError(Exception):
    """DODAG construction/routing failures."""


@dataclass
class Dodag:
    """A converged RPL DODAG over a topology."""

    root: int
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    rank: Dict[int, int] = field(default_factory=dict)
    children: Dict[int, Set[int]] = field(default_factory=dict)

    # -------------------------------------------------------------- building
    @classmethod
    def build(cls, topology: Topology, root: int) -> "Dodag":
        """Converge the DODAG: BFS by hop count from the root."""
        if root not in topology.nodes():
            raise RplError(f"root {root} is not in the topology")
        dodag = cls(root=root)
        dodag.parent[root] = None
        dodag.rank[root] = ROOT_RANK
        dodag.children[root] = set()
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for neighbor in sorted(topology.neighbors(node)):
                    if neighbor in dodag.rank:
                        continue
                    dodag.parent[neighbor] = node
                    dodag.rank[neighbor] = dodag.rank[node] + MIN_HOP_RANK_INCREASE
                    dodag.children.setdefault(node, set()).add(neighbor)
                    dodag.children.setdefault(neighbor, set())
                    nxt.append(neighbor)
            frontier = nxt
        return dodag

    # --------------------------------------------------------------- queries
    def joined(self, node: int) -> bool:
        return node in self.rank

    def members(self) -> List[int]:
        return sorted(self.rank)

    def path_to_root(self, node: int) -> List[int]:
        """[node, parent, ..., root]."""
        if not self.joined(node):
            raise RplError(f"node {node} is not in the DODAG")
        path = [node]
        seen = {node}
        while self.parent[path[-1]] is not None:
            nxt = self.parent[path[-1]]
            if nxt in seen:  # pragma: no cover - defensive
                raise RplError("parent loop detected")
            path.append(nxt)
            seen.add(nxt)
        return path

    def depth(self, node: int) -> int:
        """Hops from *node* up to the root."""
        return len(self.path_to_root(node)) - 1

    def subtree(self, node: int) -> Set[int]:
        """All nodes in the subtree rooted at *node* (inclusive)."""
        out = {node}
        stack = [node]
        while stack:
            for child in self.children.get(stack.pop(), ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out

    def route(self, src: int, dst: int) -> List[int]:
        """Storing-mode unicast route: up to the common ancestor, then down.

        Returns the node sequence [src, ..., dst].
        """
        if not (self.joined(src) and self.joined(dst)):
            raise RplError("endpoint not in DODAG")
        up = self.path_to_root(src)
        down = self.path_to_root(dst)
        up_set = {node: i for i, node in enumerate(up)}
        # First node on dst's root-path that also lies on src's root-path
        # is the common ancestor.
        for j, node in enumerate(down):
            if node in up_set:
                ascent = up[: up_set[node] + 1]
                descent = list(reversed(down[:j]))
                return ascent + descent
        raise RplError("no common ancestor (disconnected DODAG)")

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst)) - 1


__all__ = ["Dodag", "RplError", "MIN_HOP_RANK_INCREASE", "ROOT_RANK"]
