"""The µPnP network architecture substrate (Section 5 of the paper)."""

from repro.net.ipv6 import AddressError, Ipv6Address, network_prefix48
from repro.net.link import LinkModel, MAC_PAYLOAD_LIMIT
from repro.net.lowpan import DEFAULT_LOWPAN, LowpanModel
from repro.net.multicast import (
    GroupInfo,
    all_clients_group,
    all_peripherals_group,
    location_group,
    parse_group,
    parse_location_group,
    peripheral_group,
    stream_group,
)
from repro.net.network import Network, NetworkError, NetworkStats
from repro.net.packets import UPNP_PORT, UdpDatagram
from repro.net.profile import DEFAULT_NET_TIMING, NetTimingProfile
from repro.net.rpl import Dodag, RplError
from repro.net.smrf import ForwardingPlan, plan
from repro.net.stack import NetworkStack, StackError
from repro.net.topology import Topology, TopologyError

__all__ = [
    "AddressError",
    "Ipv6Address",
    "network_prefix48",
    "LinkModel",
    "MAC_PAYLOAD_LIMIT",
    "DEFAULT_LOWPAN",
    "LowpanModel",
    "GroupInfo",
    "all_clients_group",
    "all_peripherals_group",
    "location_group",
    "parse_group",
    "parse_location_group",
    "peripheral_group",
    "stream_group",
    "Network",
    "NetworkError",
    "NetworkStats",
    "UPNP_PORT",
    "UdpDatagram",
    "DEFAULT_NET_TIMING",
    "NetTimingProfile",
    "Dodag",
    "RplError",
    "ForwardingPlan",
    "plan",
    "NetworkStack",
    "StackError",
    "Topology",
    "TopologyError",
]
