"""UDP datagrams — the unit the µPnP protocol exchanges (§5.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ipv6 import Ipv6Address

#: "All messages are sent as UDP packets to port 6030."
UPNP_PORT = 6030


@dataclass(frozen=True, slots=True)
class UdpDatagram:
    """One UDP datagram in flight.

    ``slots=True`` because fleets allocate one of these per simulated
    frame; slotted instances are smaller and faster to construct.
    """

    src: Ipv6Address
    src_port: int
    dst: Ipv6Address
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 < self.src_port <= 0xFFFF:
            raise ValueError(f"invalid UDP port {self.src_port}")
        if not 0 < self.dst_port <= 0xFFFF:
            raise ValueError(f"invalid UDP port {self.dst_port}")

    @property
    def size(self) -> int:
        return len(self.payload)

    def reply_to(self) -> tuple[Ipv6Address, int]:
        """Where a response to this datagram should go."""
        return self.src, self.src_port


__all__ = ["UdpDatagram", "UPNP_PORT"]
