"""UDP datagrams — the unit the µPnP protocol exchanges (§5.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ipv6 import Ipv6Address

#: "All messages are sent as UDP packets to port 6030."
UPNP_PORT = 6030


@dataclass(frozen=True)
class UdpDatagram:
    """One UDP datagram in flight."""

    src: Ipv6Address
    src_port: int
    dst: Ipv6Address
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 < port <= 0xFFFF:
                raise ValueError(f"invalid UDP port {port}")

    @property
    def size(self) -> int:
        return len(self.payload)

    def reply_to(self) -> tuple[Ipv6Address, int]:
        """Where a response to this datagram should go."""
        return self.src, self.src_port


__all__ = ["UdpDatagram", "UPNP_PORT"]
