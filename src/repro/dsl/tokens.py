"""Token definitions for the µPnP driver DSL (§4.1).

The surface syntax is "inspired by the simplicity and generality of the
Python programming language": indentation delimits blocks, ``#`` starts
a comment — but simple statements are ``;``-terminated and variables
carry C-style fixed-width types, as seen in Listing 1 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # Structure
    NEWLINE = "NEWLINE"
    INDENT = "INDENT"
    DEDENT = "DEDENT"
    EOF = "EOF"
    # Atoms
    NAME = "NAME"
    INT = "INT"
    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    DOT = "."
    COLON = ":"
    SEMICOLON = ";"
    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    PLUSASSIGN = "+="
    MINUSASSIGN = "-="
    STARASSIGN = "*="
    SLASHASSIGN = "/="
    PERCENTASSIGN = "%="
    AMPASSIGN = "&="
    PIPEASSIGN = "|="
    CARETASSIGN = "^="
    LSHIFTASSIGN = "<<="
    RSHIFTASSIGN = ">>="
    # Keywords
    KW_IMPORT = "import"
    KW_EVENT = "event"
    KW_ERROR = "error"
    KW_SIGNAL = "signal"
    KW_RETURN = "return"
    KW_IF = "if"
    KW_ELIF = "elif"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_AND = "and"
    KW_OR = "or"
    KW_NOT = "not"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_THIS = "this"
    # Type names
    TYPE = "TYPE"


KEYWORDS = {
    "import": TokenType.KW_IMPORT,
    "event": TokenType.KW_EVENT,
    "error": TokenType.KW_ERROR,
    "signal": TokenType.KW_SIGNAL,
    "return": TokenType.KW_RETURN,
    "if": TokenType.KW_IF,
    "elif": TokenType.KW_ELIF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "and": TokenType.KW_AND,
    "or": TokenType.KW_OR,
    "not": TokenType.KW_NOT,
    "true": TokenType.KW_TRUE,
    "false": TokenType.KW_FALSE,
    "this": TokenType.KW_THIS,
}

TYPE_NAMES = (
    "uint8_t",
    "int8_t",
    "uint16_t",
    "int16_t",
    "uint32_t",
    "int32_t",
    "bool",
    "char",
)

#: Multi-character operators, longest first so the lexer is greedy.
OPERATORS = [
    ("<<=", TokenType.LSHIFTASSIGN),
    (">>=", TokenType.RSHIFTASSIGN),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("<<", TokenType.LSHIFT),
    (">>", TokenType.RSHIFT),
    ("++", TokenType.PLUSPLUS),
    ("--", TokenType.MINUSMINUS),
    ("+=", TokenType.PLUSASSIGN),
    ("-=", TokenType.MINUSASSIGN),
    ("*=", TokenType.STARASSIGN),
    ("/=", TokenType.SLASHASSIGN),
    ("%=", TokenType.PERCENTASSIGN),
    ("&=", TokenType.AMPASSIGN),
    ("|=", TokenType.PIPEASSIGN),
    ("^=", TokenType.CARETASSIGN),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    (",", TokenType.COMMA),
    (".", TokenType.DOT),
    (":", TokenType.COLON),
    (";", TokenType.SEMICOLON),
    ("=", TokenType.ASSIGN),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("&", TokenType.AMP),
    ("|", TokenType.PIPE),
    ("^", TokenType.CARET),
    ("~", TokenType.TILDE),
    ("!", TokenType.BANG),
    ("<", TokenType.LT),
    (">", TokenType.GT),
]

#: Compound-assignment token -> underlying binary operator token.
AUG_ASSIGN_BASE = {
    TokenType.PLUSASSIGN: TokenType.PLUS,
    TokenType.MINUSASSIGN: TokenType.MINUS,
    TokenType.STARASSIGN: TokenType.STAR,
    TokenType.SLASHASSIGN: TokenType.SLASH,
    TokenType.PERCENTASSIGN: TokenType.PERCENT,
    TokenType.AMPASSIGN: TokenType.AMP,
    TokenType.PIPEASSIGN: TokenType.PIPE,
    TokenType.CARETASSIGN: TokenType.CARET,
    TokenType.LSHIFTASSIGN: TokenType.LSHIFT,
    TokenType.RSHIFTASSIGN: TokenType.RSHIFT,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


__all__ = [
    "Token",
    "TokenType",
    "KEYWORDS",
    "TYPE_NAMES",
    "OPERATORS",
    "AUG_ASSIGN_BASE",
]
