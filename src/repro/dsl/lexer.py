"""Indentation-aware lexer for the µPnP driver DSL."""

from __future__ import annotations

from typing import Iterator, List

from repro.dsl.errors import LexError
from repro.dsl.tokens import KEYWORDS, OPERATORS, TYPE_NAMES, Token, TokenType


def tokenize(source: str) -> List[Token]:
    """Tokenise *source* into a flat token list ending with EOF.

    Blank lines and comment-only lines produce no tokens; indentation
    changes produce INDENT/DEDENT pairs exactly like Python.  Tabs count
    as 8 columns (mixing tabs and spaces inconsistently is an error in
    spirit, but resolved deterministically here).
    """
    return list(_Lexer(source).run())


class _Lexer:
    TAB_WIDTH = 8

    def __init__(self, source: str) -> None:
        self._lines = source.splitlines()
        self._indents = [0]
        self._depth = 0  # bracket depth; >0 enables implicit line joining

    def run(self) -> Iterator[Token]:
        last_line_no = len(self._lines)
        for line_no, raw in enumerate(self._lines, start=1):
            stripped = self._strip_comment(raw)
            if not stripped.strip():
                continue  # blank / comment-only lines are invisible
            if self._depth == 0:
                indent = self._measure_indent(raw)
                yield from self._emit_indentation(indent, line_no)
            yield from self._lex_code(stripped, line_no, indent_cols=0)
            if self._depth == 0:
                yield Token(TokenType.NEWLINE, "\n", line_no, len(raw) + 1)
        if self._depth != 0:
            raise LexError("unbalanced brackets at end of file", last_line_no, 1)
        # Close any open blocks at EOF.
        while len(self._indents) > 1:
            self._indents.pop()
            yield Token(TokenType.DEDENT, "", last_line_no + 1, 1)
        yield Token(TokenType.EOF, "", last_line_no + 1, 1)

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _strip_comment(line: str) -> str:
        index = line.find("#")
        return line if index < 0 else line[:index]

    def _measure_indent(self, line: str) -> int:
        columns = 0
        for ch in line:
            if ch == " ":
                columns += 1
            elif ch == "\t":
                columns += self.TAB_WIDTH - (columns % self.TAB_WIDTH)
            else:
                break
        return columns

    def _emit_indentation(self, indent: int, line_no: int) -> Iterator[Token]:
        current = self._indents[-1]
        if indent > current:
            self._indents.append(indent)
            yield Token(TokenType.INDENT, "", line_no, 1)
            return
        while indent < self._indents[-1]:
            self._indents.pop()
            yield Token(TokenType.DEDENT, "", line_no, 1)
        if indent != self._indents[-1]:
            raise LexError("inconsistent dedent", line_no, 1)

    def _lex_code(self, text: str, line_no: int, indent_cols: int) -> Iterator[Token]:
        pos = 0
        length = len(text)
        while pos < length:
            ch = text[pos]
            if ch in " \t":
                pos += 1
                continue
            column = pos + 1
            if ch.isdigit():
                token, pos = self._lex_number(text, pos, line_no)
                yield token
                continue
            if ch.isalpha() or ch == "_":
                token, pos = self._lex_name(text, pos, line_no)
                yield token
                continue
            matched = False
            for literal, token_type in OPERATORS:
                if text.startswith(literal, pos):
                    if token_type in (TokenType.LPAREN, TokenType.LBRACKET):
                        self._depth += 1
                    elif token_type in (TokenType.RPAREN, TokenType.RBRACKET):
                        if self._depth == 0:
                            raise LexError("unbalanced closing bracket", line_no, column)
                        self._depth -= 1
                    yield Token(token_type, literal, line_no, column)
                    pos += len(literal)
                    matched = True
                    break
            if not matched:
                raise LexError(f"unexpected character {ch!r}", line_no, column)

    @staticmethod
    def _lex_number(text: str, pos: int, line_no: int) -> tuple[Token, int]:
        start = pos
        if text.startswith(("0x", "0X"), pos):
            pos += 2
            while pos < len(text) and text[pos] in "0123456789abcdefABCDEF":
                pos += 1
            if pos == start + 2:
                raise LexError("malformed hex literal", line_no, start + 1)
        else:
            while pos < len(text) and text[pos].isdigit():
                pos += 1
        return Token(TokenType.INT, text[start:pos], line_no, start + 1), pos

    @staticmethod
    def _lex_name(text: str, pos: int, line_no: int) -> tuple[Token, int]:
        start = pos
        while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        word = text[start:pos]
        if word in KEYWORDS:
            token_type = KEYWORDS[word]
        elif word in TYPE_NAMES:
            token_type = TokenType.TYPE
        else:
            token_type = TokenType.NAME
        return Token(token_type, word, line_no, start + 1), pos


__all__ = ["tokenize"]
