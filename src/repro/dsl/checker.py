"""Semantic analysis for the µPnP driver DSL.

Resolves names (globals, parameters, imported-library constants),
verifies handler and signal signatures against the native-library and
runtime event vocabulary, folds constant initialisers, assigns global
slots and event-name identifiers — everything code generation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl import ast_nodes as ast
from repro.dsl.bytecode import (
    HANDLER_KIND_ERROR,
    HANDLER_KIND_EVENT,
    SlotDef,
)
from repro.dsl.errors import SemanticError
from repro.dsl.symbols import (
    LOCAL_NAME_BASE,
    NATIVE_LIBS,
    NativeLibSpec,
    RUNTIME_EVENTS,
    well_known_id,
)
from repro.dsl.types import ValueType

#: Handlers every driver must implement (§4.1: "All µPnP drivers must
#: implement at least two event handlers: init and destroy").
REQUIRED_HANDLERS = ("init", "destroy")

MAX_SLOTS = 255
MAX_ARRAY_LENGTH = 255


@dataclass(frozen=True)
class GlobalVar:
    """A resolved global variable."""

    name: str
    slot: int
    type: ValueType
    length: Optional[int]          # None => scalar
    initial_value: int = 0

    @property
    def is_array(self) -> bool:
        return self.length is not None

    def slot_def(self) -> SlotDef:
        return SlotDef(self.type, self.length)


@dataclass(frozen=True)
class CheckedHandler:
    """A handler with its resolved dispatch identity."""

    node: ast.Handler
    kind: int                       # HANDLER_KIND_EVENT / _ERROR
    name_id: int
    param_names: Tuple[str, ...]
    param_types: Tuple[ValueType, ...]


@dataclass
class CheckedProgram:
    """Everything the code generator needs, plus driver metadata."""

    program: ast.Program
    imports: List[NativeLibSpec]
    globals: Dict[str, GlobalVar]
    constants: Dict[str, int]
    handlers: List[CheckedHandler]
    local_names: List[str]          # custom names, id = LOCAL_NAME_BASE + idx
    name_ids: Dict[str, int]        # every event name used -> compiled id

    def handler_for(self, kind: int, name: str) -> Optional[CheckedHandler]:
        for handler in self.handlers:
            if handler.kind == kind and handler.node.name == name:
                return handler
        return None


def check(program: ast.Program) -> CheckedProgram:
    """Run semantic analysis; raises :class:`SemanticError` on the first
    violation, annotated with a source position."""
    return _Checker(program).run()


class _Checker:
    def __init__(self, program: ast.Program) -> None:
        self._program = program
        self._imports: List[NativeLibSpec] = []
        self._globals: Dict[str, GlobalVar] = {}
        self._constants: Dict[str, int] = {}
        self._handlers: List[CheckedHandler] = []
        self._local_names: List[str] = []
        self._name_ids: Dict[str, int] = {}
        self._params: Dict[str, int] = {}
        self._loop_depth = 0

    # ---------------------------------------------------------------- entry
    def run(self) -> CheckedProgram:
        self._resolve_imports()
        self._resolve_globals()
        self._index_handlers()
        for handler in self._handlers:
            self._check_handler_body(handler)
        self._check_required_handlers()
        self._allocate_slots_by_frequency()
        return CheckedProgram(
            program=self._program,
            imports=self._imports,
            globals=self._globals,
            constants=self._constants,
            handlers=self._handlers,
            local_names=self._local_names,
            name_ids=self._name_ids,
        )

    # -------------------------------------------------------------- imports
    def _resolve_imports(self) -> None:
        seen = set()
        for node in self._program.imports:
            if node.library in seen:
                raise SemanticError(
                    f"duplicate import of {node.library!r}", node.line, node.column
                )
            spec = NATIVE_LIBS.get(node.library)
            if spec is None:
                raise SemanticError(
                    f"unknown native library {node.library!r}", node.line, node.column
                )
            seen.add(node.library)
            self._imports.append(spec)
            for const_name, value in spec.constants.items():
                self._constants[const_name] = value

    # -------------------------------------------------------------- globals
    def _resolve_globals(self) -> None:
        for decl in self._program.globals:
            if decl.name in self._globals or decl.name in self._constants:
                raise SemanticError(
                    f"redefinition of {decl.name!r}", decl.line, decl.column
                )
            if len(self._globals) >= MAX_SLOTS:
                raise SemanticError("too many global variables", decl.line, decl.column)
            initial = 0
            if decl.initializer is not None:
                if decl.array_length is not None:
                    raise SemanticError(
                        "arrays cannot have initializers", decl.line, decl.column
                    )
                initial = decl.type.truncate(self._fold_constant(decl.initializer))
            if decl.array_length is not None and decl.array_length > MAX_ARRAY_LENGTH:
                raise SemanticError(
                    f"array too long (max {MAX_ARRAY_LENGTH})", decl.line, decl.column
                )
            self._globals[decl.name] = GlobalVar(
                name=decl.name,
                slot=len(self._globals),
                type=decl.type,
                length=decl.array_length,
                initial_value=initial,
            )

    def _allocate_slots_by_frequency(self) -> None:
        """Re-number global slots so the most-accessed scalars get the
        lowest indices — the code generator has single-byte load/store
        forms for slots 0..3 (DESIGN.md §4.4)."""
        counts: Dict[str, int] = {name: 0 for name in self._globals}

        def visit_expr(expr: object) -> None:
            if isinstance(expr, ast.NameRef):
                if expr.name in counts and not self._globals[expr.name].is_array:
                    counts[expr.name] += 1
            elif isinstance(expr, ast.IndexRef):
                visit_expr(expr.index)
            elif isinstance(expr, ast.UnaryOp):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.BinaryOp):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.PostfixOp):
                visit_expr(expr.target)

        def visit_stmt(statement: object) -> None:
            if isinstance(statement, ast.Assign):
                visit_expr(statement.target)
                visit_expr(statement.value)
            elif isinstance(statement, ast.Signal):
                for arg in statement.args:
                    visit_expr(arg)
            elif isinstance(statement, ast.Return):
                if statement.value is not None and statement.array_name is None:
                    visit_expr(statement.value)
            elif isinstance(statement, ast.ExprStatement):
                visit_expr(statement.expr)
            elif isinstance(statement, ast.If):
                visit_expr(statement.condition)
                for s in statement.then_body:
                    visit_stmt(s)
                for s in statement.else_body:
                    visit_stmt(s)
            elif isinstance(statement, ast.While):
                visit_expr(statement.condition)
                for s in statement.body:
                    visit_stmt(s)

        for handler in self._handlers:
            for statement in handler.node.body:
                visit_stmt(statement)

        ordered = sorted(
            self._globals.values(),
            key=lambda v: (v.is_array, -counts[v.name], v.slot),
        )
        self._globals = {
            var.name: GlobalVar(
                name=var.name,
                slot=index,
                type=var.type,
                length=var.length,
                initial_value=var.initial_value,
            )
            for index, var in enumerate(ordered)
        }

    def _fold_constant(self, expr: object) -> int:
        """Evaluate a compile-time-constant expression."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return 1 if expr.value else 0
        if isinstance(expr, ast.NameRef) and expr.name in self._constants:
            return self._constants[expr.name]
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self._fold_constant(expr.operand)
        raise SemanticError(
            "initializer must be a compile-time constant", expr.line, expr.column
        )

    # ------------------------------------------------------------- handlers
    def _index_handlers(self) -> None:
        seen: set = set()
        for node in self._program.handlers:
            kind = HANDLER_KIND_EVENT if node.kind == "event" else HANDLER_KIND_ERROR
            key = (kind, node.name)
            if key in seen:
                raise SemanticError(
                    f"duplicate {node.kind} handler {node.name!r}",
                    node.line, node.column,
                )
            seen.add(key)
            self._validate_handler_signature(node, kind)
            name_id = self._name_id_for(node.name)
            param_names = tuple(p.name for p in node.params)
            if len(set(param_names)) != len(param_names):
                raise SemanticError(
                    "duplicate parameter name", node.line, node.column
                )
            for param in node.params:
                if param.name in self._globals or param.name in self._constants:
                    raise SemanticError(
                        f"parameter {param.name!r} shadows a global",
                        param.line, param.column,
                    )
            self._handlers.append(
                CheckedHandler(
                    node=node,
                    kind=kind,
                    name_id=name_id,
                    param_names=param_names,
                    param_types=tuple(p.type for p in node.params),
                )
            )

    def _validate_handler_signature(self, node: ast.Handler, kind: int) -> None:
        if kind == HANDLER_KIND_ERROR:
            if node.params:
                raise SemanticError(
                    "error handlers take no parameters", node.line, node.column
                )
            return
        expected = None
        if node.name in RUNTIME_EVENTS:
            expected = RUNTIME_EVENTS[node.name]
        else:
            for lib in self._imports:
                if node.name in lib.emits:
                    expected = lib.emits[node.name]
                    break
        if expected is not None and len(node.params) != expected.arity:
            raise SemanticError(
                f"event {node.name!r} takes {expected.arity} parameter(s), "
                f"handler declares {len(node.params)}",
                node.line, node.column,
            )

    def _check_required_handlers(self) -> None:
        declared = {
            h.node.name for h in self._handlers if h.kind == HANDLER_KIND_EVENT
        }
        for required in REQUIRED_HANDLERS:
            if required not in declared:
                raise SemanticError(
                    f"driver must implement the {required!r} event handler",
                    self._program.line, self._program.column,
                )

    def _name_id_for(self, name: str) -> int:
        if name in self._name_ids:
            return self._name_ids[name]
        known = well_known_id(name)
        if known is not None:
            self._name_ids[name] = known
            return known
        name_id = LOCAL_NAME_BASE + len(self._local_names)
        if name_id > 255:
            raise SemanticError(f"too many custom event names ({name!r})")
        self._local_names.append(name)
        self._name_ids[name] = name_id
        return name_id

    # ----------------------------------------------------------------- body
    def _check_handler_body(self, handler: CheckedHandler) -> None:
        self._params = {name: i for i, name in enumerate(handler.param_names)}
        self._loop_depth = 0
        self._check_statements(handler.node.body)
        self._params = {}

    def _check_statements(self, statements: Sequence[object]) -> None:
        for statement in statements:
            self._check_statement(statement)

    def _check_statement(self, statement: object) -> None:
        if isinstance(statement, ast.Assign):
            self._check_lvalue(statement.target)
            self._check_expr(statement.value)
        elif isinstance(statement, ast.Signal):
            self._check_signal(statement)
        elif isinstance(statement, ast.Return):
            self._check_return(statement)
        elif isinstance(statement, ast.ExprStatement):
            self._check_expr(statement.expr)
        elif isinstance(statement, ast.If):
            self._check_expr(statement.condition)
            self._check_statements(statement.then_body)
            self._check_statements(statement.else_body)
        elif isinstance(statement, ast.While):
            self._check_expr(statement.condition)
            self._loop_depth += 1
            self._check_statements(statement.body)
            self._loop_depth -= 1
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError(
                    "break/continue outside of a loop",
                    statement.line, statement.column,
                )
        else:  # pragma: no cover - parser produces only the above
            raise SemanticError(f"unknown statement {type(statement).__name__}")

    def _check_signal(self, statement: ast.Signal) -> None:
        argc = len(statement.args)
        for arg in statement.args:
            self._check_expr(arg)
        if statement.target == "this":
            target = None
            for handler in self._handlers:
                if handler.node.name == statement.event:
                    target = handler
                    break
            if target is None:
                raise SemanticError(
                    f"signal this.{statement.event}: no such handler in driver",
                    statement.line, statement.column,
                )
            if argc != len(target.param_names):
                raise SemanticError(
                    f"this.{statement.event} takes {len(target.param_names)} "
                    f"argument(s), got {argc}",
                    statement.line, statement.column,
                )
            return
        lib = next((l for l in self._imports if l.name == statement.target), None)
        if lib is None:
            raise SemanticError(
                f"signal target {statement.target!r} is not an imported library",
                statement.line, statement.column,
            )
        command = lib.commands.get(statement.event)
        if command is None:
            raise SemanticError(
                f"library {lib.name!r} has no command {statement.event!r}",
                statement.line, statement.column,
            )
        if argc != command.arity:
            raise SemanticError(
                f"{lib.name}.{statement.event} takes {command.arity} "
                f"argument(s), got {argc}",
                statement.line, statement.column,
            )

    def _check_return(self, statement: ast.Return) -> None:
        if statement.value is None:
            return
        value = statement.value
        if isinstance(value, ast.NameRef):
            var = self._globals.get(value.name)
            if var is not None and var.is_array:
                # Whole-array return (Listing 1 line 33: `return rfid;`).
                object.__setattr__(statement, "array_name", value.name)
                return
        self._check_expr(value)

    def _check_lvalue(self, target: object) -> None:
        if isinstance(target, ast.NameRef):
            var = self._globals.get(target.name)
            if var is None:
                if target.name in self._params:
                    raise SemanticError(
                        f"cannot assign to parameter {target.name!r}",
                        target.line, target.column,
                    )
                raise SemanticError(
                    f"assignment to undefined variable {target.name!r}",
                    target.line, target.column,
                )
            if var.is_array:
                raise SemanticError(
                    f"cannot assign to array {target.name!r} as a whole",
                    target.line, target.column,
                )
            return
        if isinstance(target, ast.IndexRef):
            var = self._globals.get(target.name)
            if var is None or not var.is_array:
                raise SemanticError(
                    f"{target.name!r} is not an array", target.line, target.column
                )
            self._check_expr(target.index)
            return
        raise SemanticError("invalid assignment target", target.line, target.column)

    def _check_expr(self, expr: object) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.BoolLiteral)):
            return
        if isinstance(expr, ast.NameRef):
            if expr.name in self._params or expr.name in self._constants:
                return
            var = self._globals.get(expr.name)
            if var is None:
                raise SemanticError(
                    f"undefined name {expr.name!r}", expr.line, expr.column
                )
            if var.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used as a scalar "
                    "(index it, or return it whole)",
                    expr.line, expr.column,
                )
            return
        if isinstance(expr, ast.IndexRef):
            var = self._globals.get(expr.name)
            if var is None or not var.is_array:
                raise SemanticError(
                    f"{expr.name!r} is not an array", expr.line, expr.column
                )
            self._check_expr(expr.index)
            return
        if isinstance(expr, ast.UnaryOp):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.BinaryOp):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.PostfixOp):
            if not isinstance(expr.target, ast.NameRef):
                raise SemanticError(
                    "++/-- applies to scalar globals only", expr.line, expr.column
                )
            self._check_lvalue(expr.target)
            return
        raise SemanticError(f"unknown expression {type(expr).__name__}")


__all__ = [
    "check",
    "CheckedProgram",
    "CheckedHandler",
    "GlobalVar",
    "REQUIRED_HANDLERS",
]
