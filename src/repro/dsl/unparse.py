"""AST -> canonical µPnP DSL source (the toolchain's pretty-printer).

Useful for driver tooling (normalising uploaded sources, diffing driver
versions) and as a strong toolchain invariant: re-parsing the unparsed
source must compile to the identical driver image
(``tests/property/test_prop_unparse.py``).
"""

from __future__ import annotations

from typing import List

from repro.dsl import ast_nodes as ast

_INDENT = "    "

#: Binary operator precedence, matching the parser's climb order.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "<<": 7, ">>": 7,
    "+": 8, "-": 8,
    "*": 9, "/": 9, "%": 9,
}
_UNARY_LEVEL = 10


def unparse(program: ast.Program) -> str:
    """Render *program* back to canonical source text."""
    chunks: List[str] = []
    for imp in program.imports:
        chunks.append(f"import {imp.library};")
    if program.imports:
        chunks.append("")
    for decl in program.globals:
        chunks.append(_declaration(decl))
    if program.globals:
        chunks.append("")
    for handler in program.handlers:
        chunks.extend(_handler(handler))
        chunks.append("")
    while chunks and not chunks[-1]:
        chunks.pop()
    return "\n".join(chunks) + "\n"


def _declaration(decl: ast.VarDecl) -> str:
    suffix = ""
    if decl.array_length is not None:
        suffix = f"[{decl.array_length}]"
    elif decl.initializer is not None:
        suffix = f" = {unparse_expr(decl.initializer)}"
    return f"{decl.type.name} {decl.name}{suffix};"


def _handler(handler: ast.Handler) -> List[str]:
    params = ", ".join(f"{p.type.name} {p.name}" for p in handler.params)
    lines = [f"{handler.kind} {handler.name}({params}):"]
    lines.extend(_block(handler.body, 1))
    return lines


def _block(statements, depth: int) -> List[str]:
    lines: List[str] = []
    pad = _INDENT * depth
    for statement in statements:
        lines.extend(pad + line for line in _statement(statement, depth))
    return lines


def _statement(statement, depth: int) -> List[str]:
    if isinstance(statement, ast.Assign):
        return [f"{unparse_expr(statement.target)} {statement.op} "
                f"{unparse_expr(statement.value)};"]
    if isinstance(statement, ast.Signal):
        args = ", ".join(unparse_expr(a) for a in statement.args)
        return [f"signal {statement.target}.{statement.event}({args});"]
    if isinstance(statement, ast.Return):
        if statement.array_name is not None:
            return [f"return {statement.array_name};"]
        if statement.value is None:
            return ["return;"]
        return [f"return {unparse_expr(statement.value)};"]
    if isinstance(statement, ast.ExprStatement):
        return [f"{unparse_expr(statement.expr)};"]
    if isinstance(statement, ast.If):
        lines = [f"if {unparse_expr(statement.condition)}:"]
        lines.extend(_relative_block(statement.then_body, depth))
        if statement.else_body:
            lines.append("else:")
            lines.extend(_relative_block(statement.else_body, depth))
        return lines
    if isinstance(statement, ast.While):
        lines = [f"while {unparse_expr(statement.condition)}:"]
        lines.extend(_relative_block(statement.body, depth))
        return lines
    if isinstance(statement, ast.Break):
        return ["break;"]
    if isinstance(statement, ast.Continue):
        return ["continue;"]
    raise TypeError(f"cannot unparse {type(statement).__name__}")


def _relative_block(statements, depth: int) -> List[str]:
    return [_INDENT + line
            for statement in statements
            for line in _statement(statement, depth + 1)]


def unparse_expr(expr, parent_level: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ast.IntLiteral):
        # Negative literals are parenthesised in operand position:
        # `a - -3` would lex as the `--` operator.
        if expr.value < 0 and parent_level > 0:
            return f"({expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NameRef):
        return expr.name
    if isinstance(expr, ast.IndexRef):
        return f"{expr.name}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.PostfixOp):
        return f"{unparse_expr(expr.target)}{expr.op}"
    if isinstance(expr, ast.UnaryOp):
        inner = unparse_expr(expr.operand, _UNARY_LEVEL)
        text = f"{expr.op}{inner}"
        # Parenthesised whenever nested in an operand position: `- -x`
        # and `a - -x` are lexical hazards (`--`), and it reads better.
        return f"({text})" if parent_level > 0 else text
    if isinstance(expr, ast.BinaryOp):
        level = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, level)
        # Right operand parenthesised at equal level: the grammar is
        # left-associative, so `a - (b - c)` must keep its parentheses.
        right = unparse_expr(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_level > level else text
    raise TypeError(f"cannot unparse {type(expr).__name__}")


__all__ = ["unparse", "unparse_expr"]
