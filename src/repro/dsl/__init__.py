"""The µPnP driver domain-specific language (Section 4 of the paper).

Pipeline: :func:`tokenize` -> :func:`parse` -> :func:`check` ->
:func:`compile_source` producing a compact :class:`DriverImage` that the
VM in :mod:`repro.vm` executes and that is distributed over the air.
"""

from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_ERROR,
    HANDLER_KIND_EVENT,
    HandlerDef,
    Instruction,
    Op,
    SlotDef,
    decode,
)
from repro.dsl.checker import CheckedProgram, check
from repro.dsl.compiler import (
    CompilerOptions,
    DEFAULT_OPTIONS,
    compile_checked,
    compile_source,
)
from repro.dsl.disassembler import disassemble
from repro.dsl.errors import (
    CompileError,
    DslError,
    LexError,
    ParseError,
    SemanticError,
)
from repro.dsl.lexer import tokenize
from repro.dsl.lint import LintWarning, lint, lint_source
from repro.dsl.parser import parse
from repro.dsl.sloc import count_c_sloc, count_sloc
from repro.dsl.unparse import unparse, unparse_expr
from repro.dsl.symbols import (
    NATIVE_LIBS,
    NATIVE_LIBS_BY_ID,
    RUNTIME_EVENTS,
    WELL_KNOWN_NAMES,
    EventSig,
    NativeLibSpec,
    name_for_id,
    well_known_id,
)

__all__ = [
    "DriverImage",
    "HANDLER_KIND_ERROR",
    "HANDLER_KIND_EVENT",
    "HandlerDef",
    "Instruction",
    "Op",
    "SlotDef",
    "decode",
    "CheckedProgram",
    "check",
    "CompilerOptions",
    "DEFAULT_OPTIONS",
    "compile_checked",
    "compile_source",
    "disassemble",
    "CompileError",
    "DslError",
    "LexError",
    "ParseError",
    "SemanticError",
    "tokenize",
    "LintWarning",
    "lint",
    "lint_source",
    "parse",
    "count_c_sloc",
    "count_sloc",
    "NATIVE_LIBS",
    "NATIVE_LIBS_BY_ID",
    "RUNTIME_EVENTS",
    "WELL_KNOWN_NAMES",
    "EventSig",
    "NativeLibSpec",
    "name_for_id",
    "well_known_id",
    "unparse",
    "unparse_expr",
]
