"""Bytecode generation for the µPnP driver DSL.

Translates a checked program into a :class:`DriverImage`.  Compactness
(the Table 3 "Bytes" column) comes from the encoding rather than from
clever optimisation:

* global slots are allocated by access frequency so the four hottest
  scalars use the single-byte LDG0..3/STG0..3 register forms;
* constant array indices use the 3-byte LDEI form;
* jumps start short (i8) and are relaxed to long (i16) only when the
  displacement requires it (iterated until a fixed point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dsl import ast_nodes as ast
from repro.dsl.bytecode import (
    DriverImage,
    HandlerDef,
    Instruction,
    Op,
)
from repro.dsl.checker import CheckedHandler, CheckedProgram, check
from repro.dsl.errors import CompileError
from repro.dsl.parser import parse
from repro.dsl.symbols import NativeLibSpec

_BINARY_OPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.BAND,
    "|": Op.BOR,
    "^": Op.BXOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
    "==": Op.EQ,
    "!=": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}

_AUG_OPS = {
    "+=": Op.ADD,
    "-=": Op.SUB,
    "*=": Op.MUL,
    "/=": Op.DIV,
    "%=": Op.MOD,
    "&=": Op.BAND,
    "|=": Op.BOR,
    "^=": Op.BXOR,
    "<<=": Op.SHL,
    ">>=": Op.SHR,
}

#: Short/long jump opcode pairs used by the relaxation pass.
_JUMP_FORMS = {
    "JMP": (Op.JMPS, Op.JMP),
    "JZ": (Op.JZS, Op.JZ),
    "JNZ": (Op.JNZS, Op.JNZ),
}

#: Slots addressable with single-byte register forms.
_COMPACT_LOADS = (Op.LDG0, Op.LDG1, Op.LDG2, Op.LDG3,
                  Op.LDG4, Op.LDG5, Op.LDG6, Op.LDG7)
_COMPACT_STORES = (Op.STG0, Op.STG1, Op.STG2, Op.STG3,
                   Op.STG4, Op.STG5, Op.STG6, Op.STG7)

SIG_TARGET_THIS = 0


@dataclass(frozen=True)
class CompilerOptions:
    """Encoding features, individually switchable for ablation studies.

    The defaults are the production configuration; the Table 3 ablation
    bench disables each to quantify its contribution to image size.
    """

    compact_registers: bool = True   # LDG0..7 / STG0..7 single-byte forms
    short_jumps: bool = True         # i8 jumps with relaxation
    immediate_index: bool = True     # LDEI for constant array indices


DEFAULT_OPTIONS = CompilerOptions()


def compile_source(
    source: str,
    device_id: int = 0,
    options: CompilerOptions = DEFAULT_OPTIONS,
) -> DriverImage:
    """Compile DSL *source* text into an installable driver image.

    Compilations with the default options are memoized: the fleet
    engine uploads the same catalog sources once per shard, and the
    resulting :class:`DriverImage` is immutable, so recompiling is pure
    waste on the scenario hot path.  Sharing one image object across
    shards also lets the VM fastpath reuse a single translation.
    """
    if options is DEFAULT_OPTIONS:
        return _compile_source_default(source, device_id)
    return compile_checked(check(parse(source)), device_id, options)


@lru_cache(maxsize=256)
def _compile_source_default(source: str, device_id: int) -> DriverImage:
    return compile_checked(check(parse(source)), device_id, DEFAULT_OPTIONS)


def compile_checked(
    checked: CheckedProgram,
    device_id: int = 0,
    options: CompilerOptions = DEFAULT_OPTIONS,
) -> DriverImage:
    """Compile an already-checked program."""
    return _CodeGen(checked, device_id, options).generate()


class _Label:
    """A forward-referencable position in the abstract code stream."""

    __slots__ = ("offset",)

    def __init__(self) -> None:
        self.offset: Optional[int] = None


@dataclass
class _JumpItem:
    kind: str          # "JMP" | "JZ" | "JNZ"
    target: _Label
    long: bool = False

    @property
    def size(self) -> int:
        return 2 if not self.long else 3


_Item = Union[bytes, _JumpItem, _Label]


class _Assembler:
    """Accumulates abstract items; relaxes jumps; emits final bytes."""

    def __init__(self, short_jumps: bool = True) -> None:
        self._items: List[_Item] = []
        self._short_jumps = short_jumps

    def emit(self, op: Op, *args: int) -> None:
        self._items.append(Instruction(0, op, tuple(args)).encode())

    def jump(self, kind: str, target: _Label) -> None:
        if kind not in _JUMP_FORMS:
            raise CompileError(f"unknown jump kind {kind}")
        self._items.append(_JumpItem(kind, target, long=not self._short_jumps))

    def bind(self, label: _Label) -> None:
        self._items.append(label)

    def new_label(self) -> _Label:
        return _Label()

    # ------------------------------------------------------------- assembly
    def _layout(self) -> None:
        offset = 0
        for item in self._items:
            if isinstance(item, _Label):
                item.offset = offset
            elif isinstance(item, _JumpItem):
                offset += item.size
            else:
                offset += len(item)

    def assemble(self) -> bytes:
        # Relax: grow short jumps whose displacement does not fit i8.
        for _ in range(len(self._items) + 1):
            self._layout()
            changed = False
            offset = 0
            for item in self._items:
                if isinstance(item, _Label):
                    continue
                if isinstance(item, _JumpItem):
                    end = offset + item.size
                    if item.target.offset is None:
                        raise CompileError("unbound label")  # pragma: no cover
                    displacement = item.target.offset - end
                    if not item.long and not -128 <= displacement <= 127:
                        item.long = True
                        changed = True
                    offset = end
                else:
                    offset += len(item)
            if not changed:
                break
        else:  # pragma: no cover - relaxation always converges
            raise CompileError("jump relaxation did not converge")

        self._layout()
        out = bytearray()
        for item in self._items:
            if isinstance(item, _Label):
                continue
            if isinstance(item, _JumpItem):
                end = len(out) + item.size
                displacement = item.target.offset - end
                short_op, long_op = _JUMP_FORMS[item.kind]
                if item.long:
                    if not -32768 <= displacement <= 32767:
                        raise CompileError("jump displacement out of range")
                    out += Instruction(0, long_op, (displacement,)).encode()
                else:
                    out += Instruction(0, short_op, (displacement,)).encode()
            else:
                out += item
        return bytes(out)


class _CodeGen:
    def __init__(
        self,
        checked: CheckedProgram,
        device_id: int,
        options: CompilerOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._checked = checked
        self._device_id = device_id
        self._options = options
        self._asm = _Assembler(short_jumps=options.short_jumps)
        self._params: Dict[str, int] = {}
        self._loop_stack: List[Tuple[_Label, _Label]] = []  # (continue, break)

    # ----------------------------------------------------------------- main
    def generate(self) -> DriverImage:
        handler_labels: List[Tuple[CheckedHandler, _Label]] = []
        for handler in self._checked.handlers:
            label = self._asm.new_label()
            self._asm.bind(label)
            handler_labels.append((handler, label))
            self._compile_handler(handler)
        code = self._asm.assemble()
        handler_defs = tuple(
            HandlerDef(
                kind=handler.kind,
                name_id=handler.name_id,
                offset=label.offset or 0,
                n_params=len(handler.param_names),
            )
            for handler, label in handler_labels
        )
        slots = tuple(
            var.slot_def()
            for var in sorted(self._checked.globals.values(), key=lambda v: v.slot)
        )
        imports = tuple(lib.lib_id for lib in self._checked.imports)
        return DriverImage(
            device_id=self._device_id,
            slots=slots,
            imports=imports,
            handlers=handler_defs,
            code=code,
            local_names=tuple(self._checked.local_names),
        )

    def _compile_handler(self, handler: CheckedHandler) -> None:
        self._params = {n: i for i, n in enumerate(handler.param_names)}
        body = handler.node.body
        self._compile_statements(body)
        # Skip the implicit RET when the handler already ends in a return.
        if not (body and isinstance(body[-1], ast.Return)):
            self._asm.emit(Op.RET)
        self._params = {}

    # --------------------------------------------------------------- helpers
    def _load_global(self, slot: int) -> None:
        if self._options.compact_registers and slot < len(_COMPACT_LOADS):
            self._asm.emit(_COMPACT_LOADS[slot])
        else:
            self._asm.emit(Op.LDG, slot)

    def _store_global(self, slot: int) -> None:
        if self._options.compact_registers and slot < len(_COMPACT_STORES):
            self._asm.emit(_COMPACT_STORES[slot])
        else:
            self._asm.emit(Op.STG, slot)

    # ------------------------------------------------------------ statements
    def _compile_statements(self, statements: Sequence[object]) -> None:
        for statement in statements:
            self._compile_statement(statement)

    def _compile_statement(self, statement: object) -> None:
        if isinstance(statement, ast.Assign):
            self._compile_assign(statement)
        elif isinstance(statement, ast.Signal):
            self._compile_signal(statement)
        elif isinstance(statement, ast.Return):
            self._compile_return(statement)
        elif isinstance(statement, ast.ExprStatement):
            self._compile_expr(statement.expr)
            self._asm.emit(Op.DROP)
        elif isinstance(statement, ast.If):
            self._compile_if(statement)
        elif isinstance(statement, ast.While):
            self._compile_while(statement)
        elif isinstance(statement, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", statement.line)
            self._asm.jump("JMP", self._loop_stack[-1][1])
        elif isinstance(statement, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", statement.line)
            self._asm.jump("JMP", self._loop_stack[-1][0])
        else:  # pragma: no cover
            raise CompileError(f"cannot compile {type(statement).__name__}")

    def _compile_assign(self, statement: ast.Assign) -> None:
        target = statement.target
        if isinstance(target, ast.NameRef):
            var = self._checked.globals[target.name]
            if statement.op == "=":
                self._compile_expr(statement.value)
            else:
                self._load_global(var.slot)
                self._compile_expr(statement.value)
                self._asm.emit(_AUG_OPS[statement.op])
            self._store_global(var.slot)
            return
        # Array element target.
        var = self._checked.globals[target.name]
        self._compile_expr(target.index)
        if statement.op == "=":
            self._compile_expr(statement.value)
        else:
            self._asm.emit(Op.DUP)
            self._asm.emit(Op.LDE, var.slot)
            self._compile_expr(statement.value)
            self._asm.emit(_AUG_OPS[statement.op])
        self._asm.emit(Op.STE, var.slot)

    def _compile_signal(self, statement: ast.Signal) -> None:
        for arg in statement.args:
            self._compile_expr(arg)
        if statement.target == "this":
            name_id = self._checked.name_ids[statement.event]
            self._asm.emit(Op.SIG, SIG_TARGET_THIS, name_id, len(statement.args))
            return
        lib = next(l for l in self._checked.imports if l.name == statement.target)
        command_index = list(lib.commands).index(statement.event)
        self._asm.emit(Op.SIG, lib.lib_id, command_index, len(statement.args))

    def _compile_return(self, statement: ast.Return) -> None:
        if statement.array_name is not None:
            var = self._checked.globals[statement.array_name]
            self._asm.emit(Op.RETA, var.slot)
        elif statement.value is not None:
            self._compile_expr(statement.value)
            self._asm.emit(Op.RETV)
        self._asm.emit(Op.RET)

    def _compile_if(self, statement: ast.If) -> None:
        else_label = self._asm.new_label()
        self._compile_condition(statement.condition, else_label, jump_when=False)
        self._compile_statements(statement.then_body)
        if statement.else_body:
            end_label = self._asm.new_label()
            self._asm.jump("JMP", end_label)
            self._asm.bind(else_label)
            self._compile_statements(statement.else_body)
            self._asm.bind(end_label)
        else:
            self._asm.bind(else_label)

    def _compile_while(self, statement: ast.While) -> None:
        top_label = self._asm.new_label()
        end_label = self._asm.new_label()
        self._asm.bind(top_label)
        self._compile_condition(statement.condition, end_label, jump_when=False)
        self._loop_stack.append((top_label, end_label))
        self._compile_statements(statement.body)
        self._loop_stack.pop()
        self._asm.jump("JMP", top_label)
        self._asm.bind(end_label)

    def _compile_condition(
        self, condition: object, target: _Label, *, jump_when: bool
    ) -> None:
        """Evaluate *condition* and jump to *target* when its truth value
        equals *jump_when*.  Short-circuits and/or without materialising
        a boolean on the stack."""
        if isinstance(condition, ast.BinaryOp) and condition.op in ("and", "or"):
            if condition.op == "and" and not jump_when:
                self._compile_condition(condition.left, target, jump_when=False)
                self._compile_condition(condition.right, target, jump_when=False)
                return
            if condition.op == "or" and jump_when:
                self._compile_condition(condition.left, target, jump_when=True)
                self._compile_condition(condition.right, target, jump_when=True)
                return
            if condition.op == "and":  # jump_when=True
                fall = self._asm.new_label()
                self._compile_condition(condition.left, fall, jump_when=False)
                self._compile_condition(condition.right, target, jump_when=True)
                self._asm.bind(fall)
                return
            # or with jump_when=False
            fall = self._asm.new_label()
            self._compile_condition(condition.left, fall, jump_when=True)
            self._compile_condition(condition.right, target, jump_when=False)
            self._asm.bind(fall)
            return
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._compile_condition(condition.operand, target, jump_when=not jump_when)
            return
        self._compile_expr(condition)
        self._asm.jump("JNZ" if jump_when else "JZ", target)

    # ------------------------------------------------------------ expressions
    def _compile_expr(self, expr: object) -> None:
        if isinstance(expr, ast.IntLiteral):
            self._push_constant(expr.value)
        elif isinstance(expr, ast.BoolLiteral):
            self._asm.emit(Op.PUSH1 if expr.value else Op.PUSH0)
        elif isinstance(expr, ast.NameRef):
            self._compile_name(expr)
        elif isinstance(expr, ast.IndexRef):
            var = self._checked.globals[expr.name]
            constant_index = (
                self._constant_index(expr.index)
                if self._options.immediate_index else None
            )
            if constant_index is not None:
                self._asm.emit(Op.LDEI, var.slot, constant_index)
            else:
                self._compile_expr(expr.index)
                self._asm.emit(Op.LDE, var.slot)
        elif isinstance(expr, ast.UnaryOp):
            self._compile_unary(expr)
        elif isinstance(expr, ast.BinaryOp):
            self._compile_binary(expr)
        elif isinstance(expr, ast.PostfixOp):
            self._compile_postfix(expr)
        else:  # pragma: no cover
            raise CompileError(f"cannot compile expression {type(expr).__name__}")

    def _constant_index(self, expr: object) -> Optional[int]:
        if isinstance(expr, ast.IntLiteral) and 0 <= expr.value <= 255:
            return expr.value
        if isinstance(expr, ast.NameRef):
            value = self._checked.constants.get(expr.name)
            if value is not None and 0 <= value <= 255:
                return value
        return None

    def _compile_name(self, expr: ast.NameRef) -> None:
        if expr.name in self._params:
            self._asm.emit(Op.LDP, self._params[expr.name])
            return
        if expr.name in self._checked.constants:
            self._push_constant(self._checked.constants[expr.name])
            return
        var = self._checked.globals[expr.name]
        self._load_global(var.slot)

    def _compile_unary(self, expr: ast.UnaryOp) -> None:
        if expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
            self._push_constant(-expr.operand.value)
            return
        self._compile_expr(expr.operand)
        self._asm.emit({"-": Op.NEG, "~": Op.BINV, "!": Op.LNOT}[expr.op])

    def _compile_binary(self, expr: ast.BinaryOp) -> None:
        if expr.op in ("and", "or"):
            self._compile_logical(expr)
            return
        self._compile_expr(expr.left)
        self._compile_expr(expr.right)
        self._asm.emit(_BINARY_OPS[expr.op])

    def _compile_logical(self, expr: ast.BinaryOp) -> None:
        """Short-circuit ``and`` / ``or`` producing a normalised 0/1."""
        shortcut = self._asm.new_label()
        end = self._asm.new_label()
        branch = "JZ" if expr.op == "and" else "JNZ"
        for operand in (expr.left, expr.right):
            self._compile_expr(operand)
            self._asm.jump(branch, shortcut)
        self._asm.emit(Op.PUSH1 if expr.op == "and" else Op.PUSH0)
        self._asm.jump("JMP", end)
        self._asm.bind(shortcut)
        self._asm.emit(Op.PUSH0 if expr.op == "and" else Op.PUSH1)
        self._asm.bind(end)

    def _compile_postfix(self, expr: ast.PostfixOp) -> None:
        target = expr.target
        if not isinstance(target, ast.NameRef):
            raise CompileError(
                "postfix ++/-- supports scalar globals only",
                expr.line, expr.column,
            )
        var = self._checked.globals[target.name]
        self._asm.emit(Op.INCG if expr.op == "++" else Op.DECG, var.slot)

    def _push_constant(self, value: int) -> None:
        if value == 0:
            self._asm.emit(Op.PUSH0)
        elif value == 1:
            self._asm.emit(Op.PUSH1)
        elif -128 <= value <= 127:
            self._asm.emit(Op.PUSH8, value)
        elif -32768 <= value <= 32767:
            self._asm.emit(Op.PUSH16, value)
        else:
            if value > 0x7FFFFFFF:       # large unsigned literals wrap (C-style)
                value -= 1 << 32
            if not -(1 << 31) <= value < (1 << 31):
                raise CompileError(f"constant out of 32-bit range: {value}")
            self._asm.emit(Op.PUSH32, value)


__all__ = ["compile_source", "compile_checked", "CompilerOptions",
           "DEFAULT_OPTIONS", "SIG_TARGET_THIS"]
