"""Diagnostics for the µPnP driver language toolchain."""

from __future__ import annotations


class DslError(Exception):
    """Base class for all driver-language diagnostics.

    Carries source position so tooling can point at the offending line.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        where = f" (line {line}, col {column})" if line else ""
        super().__init__(f"{message}{where}")


class LexError(DslError):
    """Tokenisation failure (bad character, inconsistent indentation)."""


class ParseError(DslError):
    """Grammar violation."""


class SemanticError(DslError):
    """Name/type/signature errors found by the checker."""


class CompileError(DslError):
    """Code-generation limits exceeded (too many globals, jumps, ...)."""


__all__ = ["DslError", "LexError", "ParseError", "SemanticError", "CompileError"]
