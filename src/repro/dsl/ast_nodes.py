"""Abstract syntax tree for the µPnP driver DSL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dsl.types import ValueType


@dataclass(frozen=True)
class Node:
    line: int
    column: int


# --------------------------------------------------------------- expressions
@dataclass(frozen=True)
class IntLiteral(Node):
    value: int


@dataclass(frozen=True)
class BoolLiteral(Node):
    value: bool


@dataclass(frozen=True)
class NameRef(Node):
    """A bare name: global variable, parameter, or imported constant."""

    name: str


@dataclass(frozen=True)
class IndexRef(Node):
    """Array element access ``name[expr]``."""

    name: str
    index: "Expr"


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # "-", "~", "!"
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str  # "+", "-", ..., "==", "and", "or"
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class PostfixOp(Node):
    """``x++`` / ``x--`` (expression value is the *old* value)."""

    op: str  # "++" or "--"
    target: "LValue"


Expr = (IntLiteral, BoolLiteral, NameRef, IndexRef, UnaryOp, BinaryOp, PostfixOp)
LValue = (NameRef, IndexRef)


# ---------------------------------------------------------------- statements
@dataclass(frozen=True)
class Assign(Node):
    target: "LValue"
    op: str  # "=" or an augmented op like "+="
    value: "Expr"


@dataclass(frozen=True)
class Signal(Node):
    """``signal target.event(args);`` — target is 'this' or an import."""

    target: str
    event: str
    args: Sequence["Expr"]


@dataclass(frozen=True)
class Return(Node):
    value: Optional["Expr"]  # None for bare `return;`
    array_name: Optional[str] = None  # set when returning a whole array


@dataclass(frozen=True)
class ExprStatement(Node):
    expr: "Expr"


@dataclass(frozen=True)
class If(Node):
    condition: "Expr"
    then_body: Sequence["Stmt"]
    else_body: Sequence["Stmt"]


@dataclass(frozen=True)
class While(Node):
    condition: "Expr"
    body: Sequence["Stmt"]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


Stmt = (Assign, Signal, Return, ExprStatement, If, While, Break, Continue)


# ----------------------------------------------------------------- top level
@dataclass(frozen=True)
class Param(Node):
    type: ValueType
    name: str


@dataclass(frozen=True)
class VarDecl(Node):
    """One declarator of a global declaration line."""

    type: ValueType
    name: str
    array_length: Optional[int]  # None for scalars
    initializer: Optional["Expr"]


@dataclass(frozen=True)
class Handler(Node):
    """An ``event`` or ``error`` handler definition."""

    kind: str  # "event" | "error"
    name: str
    params: Sequence[Param]
    body: Sequence["Stmt"]


@dataclass(frozen=True)
class Import(Node):
    library: str


@dataclass(frozen=True)
class Program(Node):
    imports: Sequence[Import]
    globals: Sequence[VarDecl]
    handlers: Sequence[Handler]


__all__ = [
    "Node",
    "IntLiteral",
    "BoolLiteral",
    "NameRef",
    "IndexRef",
    "UnaryOp",
    "BinaryOp",
    "PostfixOp",
    "Assign",
    "Signal",
    "Return",
    "ExprStatement",
    "If",
    "While",
    "Break",
    "Continue",
    "Param",
    "VarDecl",
    "Handler",
    "Import",
    "Program",
    "Expr",
    "LValue",
    "Stmt",
]
