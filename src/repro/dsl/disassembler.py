"""Human-readable listings of compiled µPnP driver images."""

from __future__ import annotations

from typing import List

from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_ERROR,
    Op,
)
from repro.dsl.compiler import SIG_TARGET_THIS
from repro.dsl.symbols import NATIVE_LIBS_BY_ID, name_for_id


def disassemble(image: DriverImage) -> str:
    """Render *image* as an annotated assembly listing."""
    lines: List[str] = []
    lines.append(f"; driver for device {image.device_id:#010x}")
    lines.append(
        f"; image {image.image_size} B, code {image.code_size} B, "
        f"ram {image.ram_bytes} B"
    )
    for index, slot in enumerate(image.slots):
        suffix = f"[{slot.length}]" if slot.is_array else ""
        lines.append(f"; slot {index}: {slot.type.name}{suffix}")
    for lib_id in image.imports:
        spec = NATIVE_LIBS_BY_ID.get(lib_id)
        lines.append(f"; import {spec.name if spec else lib_id}")

    handler_starts = {
        h.offset: h for h in sorted(image.handlers, key=lambda h: h.offset)
    }
    for instruction in image.instructions():
        handler = handler_starts.get(instruction.offset)
        if handler is not None:
            kind = "error" if handler.kind == HANDLER_KIND_ERROR else "event"
            name = name_for_id(handler.name_id, image.local_names)
            lines.append(f"{kind} {name}({handler.n_params} params):")
        lines.append(f"  {instruction.offset:04x}  {_render(image, instruction)}")
    return "\n".join(lines)


def _render(image: DriverImage, instruction) -> str:
    op = instruction.op
    args = instruction.args
    if op == Op.SIG:
        target, symbol, argc = args
        if target == SIG_TARGET_THIS:
            return f"SIG this.{name_for_id(symbol, image.local_names)} argc={argc}"
        spec = NATIVE_LIBS_BY_ID.get(target)
        if spec is not None and symbol < len(spec.commands):
            command = list(spec.commands)[symbol]
            return f"SIG {spec.name}.{command} argc={argc}"
        return f"SIG lib{target}.cmd{symbol} argc={argc}"
    if op in (Op.JMP, Op.JZ, Op.JNZ, Op.JMPS, Op.JZS, Op.JNZS):
        destination = instruction.offset + instruction.size + args[0]
        return f"{op.name} -> {destination:04x}"
    if args:
        return f"{op.name} " + ", ".join(str(a) for a in args)
    return op.name


__all__ = ["disassemble"]
