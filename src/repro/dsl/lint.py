"""Automated driver validation (§9: "automated approaches to validating
third-party driver software").

The checker rejects programs that cannot work at all; the linter finds
drivers that compile but will misbehave in the field.  The global
address space runs it on upload (warnings are advisory — the paper's
"manual checking" replaced by automation), and driver developers can
run it standalone.

Rules:

``missing-completion-handler``
    The driver invokes a split-phase library command whose completion
    event has no handler (e.g. ``signal adc.read()`` without a ``data``
    handler) — the read will never finish.
``unhandled-error``
    An imported library can raise an error event the driver does not
    handle; the event is silently dropped and driver state (busy flags)
    can wedge.
``unused-variable``
    A global is declared but never read — wasted mote RAM.
``read-never-returns``
    The driver exposes ``read`` but no handler ever executes ``return``,
    so remote read requests can never complete.
``missing-busy-guard``
    ``read`` re-issues a split-phase command without any state guard;
    concurrent requests will interleave I/O (Listing 1 guards with
    ``busy``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Set, Tuple

from repro.dsl import ast_nodes as ast
from repro.dsl.bytecode import HANDLER_KIND_ERROR, HANDLER_KIND_EVENT
from repro.dsl.checker import CheckedProgram, check
from repro.dsl.parser import parse

#: Completion events a library posts in response to each command.
_COMPLETIONS = {
    ("uart", "read"): ("newdata",),
    ("uart", "write"): ("writeDone",),
    ("adc", "read"): ("data",),
    ("i2c", "read"): ("newdata", "readDone"),
    ("i2c", "write1"): ("writeDone",),
    ("i2c", "write2"): ("writeDone",),
    ("spi", "transfer"): ("data",),
}


@dataclass(frozen=True)
class LintWarning:
    """One advisory finding."""

    rule: str
    message: str
    line: int = 0

    def __str__(self) -> str:
        where = f" (line {self.line})" if self.line else ""
        return f"[{self.rule}] {self.message}{where}"


def lint_source(source: str) -> List[LintWarning]:
    """Parse + check + lint *source*; checker errors propagate.

    Memoized: the registry lints every upload, and fleet shards upload
    the same catalog sources over and over.  Warnings are immutable, so
    the cached tuple is shared and a fresh list returned per call.
    """
    return list(_lint_source_cached(source))


@lru_cache(maxsize=256)
def _lint_source_cached(source: str) -> Tuple[LintWarning, ...]:
    return tuple(lint(check(parse(source))))


def lint(checked: CheckedProgram) -> List[LintWarning]:
    """Run all rules over a checked program."""
    warnings: List[LintWarning] = []
    warnings.extend(_missing_completion_handlers(checked))
    warnings.extend(_unhandled_errors(checked))
    warnings.extend(_unused_variables(checked))
    warnings.extend(_read_never_returns(checked))
    warnings.extend(_missing_busy_guard(checked))
    return warnings


# ----------------------------------------------------------------- traversal
def _walk_statements(statements) -> List[object]:
    out: List[object] = []
    for statement in statements:
        out.append(statement)
        if isinstance(statement, ast.If):
            out.extend(_walk_statements(statement.then_body))
            out.extend(_walk_statements(statement.else_body))
        elif isinstance(statement, ast.While):
            out.extend(_walk_statements(statement.body))
    return out


def _all_statements(checked: CheckedProgram) -> List[object]:
    out: List[object] = []
    for handler in checked.handlers:
        out.extend(_walk_statements(handler.node.body))
    return out


def _signals(checked: CheckedProgram) -> List[ast.Signal]:
    return [s for s in _all_statements(checked) if isinstance(s, ast.Signal)]


def _event_handler_names(checked: CheckedProgram) -> Set[str]:
    return {h.node.name for h in checked.handlers
            if h.kind == HANDLER_KIND_EVENT}


# --------------------------------------------------------------------- rules
def _missing_completion_handlers(checked: CheckedProgram) -> List[LintWarning]:
    handlers = _event_handler_names(checked)
    warnings = []
    seen: Set[tuple] = set()
    for signal in _signals(checked):
        key = (signal.target, signal.event)
        if key in seen or key not in _COMPLETIONS:
            continue
        seen.add(key)
        for completion in _COMPLETIONS[key]:
            if completion not in handlers:
                warnings.append(LintWarning(
                    "missing-completion-handler",
                    f"signal {signal.target}.{signal.event}() has no "
                    f"'{completion}' handler: the operation never completes",
                    signal.line,
                ))
    return warnings


def _unhandled_errors(checked: CheckedProgram) -> List[LintWarning]:
    handled = {h.node.name for h in checked.handlers
               if h.kind == HANDLER_KIND_ERROR}
    warnings = []
    for lib in checked.imports:
        for error in lib.errors:
            if error not in handled:
                warnings.append(LintWarning(
                    "unhandled-error",
                    f"library '{lib.name}' can raise '{error}' but the "
                    f"driver has no handler; state may wedge",
                ))
    return warnings


def _unused_variables(checked: CheckedProgram) -> List[LintWarning]:
    read_names: Set[str] = set()

    def visit(expr) -> None:
        if isinstance(expr, ast.NameRef):
            read_names.add(expr.name)
        elif isinstance(expr, ast.IndexRef):
            read_names.add(expr.name)
            visit(expr.index)
        elif isinstance(expr, ast.UnaryOp):
            visit(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.PostfixOp):
            visit(expr.target)

    for statement in _all_statements(checked):
        if isinstance(statement, ast.Assign):
            visit(statement.value)
            if isinstance(statement.target, ast.IndexRef):
                visit(statement.target.index)
            if statement.op != "=":  # augmented assignment also reads
                read_names.add(statement.target.name)
        elif isinstance(statement, ast.Signal):
            for arg in statement.args:
                visit(arg)
        elif isinstance(statement, ast.Return):
            if statement.array_name is not None:
                read_names.add(statement.array_name)
            elif statement.value is not None:
                visit(statement.value)
        elif isinstance(statement, ast.ExprStatement):
            visit(statement.expr)
        elif isinstance(statement, (ast.If, ast.While)):
            visit(statement.condition)
    return [
        LintWarning("unused-variable",
                    f"global '{name}' is written but never read")
        for name in sorted(checked.globals)
        if name not in read_names
    ]


def _read_never_returns(checked: CheckedProgram) -> List[LintWarning]:
    if "read" not in _event_handler_names(checked):
        return []
    for statement in _all_statements(checked):
        if isinstance(statement, ast.Return) and (
            statement.value is not None or statement.array_name is not None
        ):
            return []
    return [LintWarning(
        "read-never-returns",
        "the driver exposes 'read' but never executes 'return <value>': "
        "remote reads cannot complete",
    )]


def _missing_busy_guard(checked: CheckedProgram) -> List[LintWarning]:
    read = checked.handler_for(HANDLER_KIND_EVENT, "read")
    if read is None:
        return []
    statements = _walk_statements(read.node.body)
    issues_io = any(
        isinstance(s, ast.Signal) and (s.target, s.event) in _COMPLETIONS
        for s in statements
    )
    if not issues_io:
        return []
    guarded = any(isinstance(s, ast.If) for s in read.node.body)
    if guarded:
        return []
    return [LintWarning(
        "missing-busy-guard",
        "'read' starts split-phase I/O without a state guard: concurrent "
        "requests will interleave bus operations",
        read.node.line,
    )]


__all__ = ["LintWarning", "lint", "lint_source"]
