"""The µPnP bytecode instruction set and driver-image format (§4.1).

Design goals from the paper: every instruction is an 8-bit opcode
followed by zero or more operands; the machine is a single-operand-stack
design "inspired by the Java Virtual Machine, however less extensive and
more tailored towards the domain of IoT driver development"; images must
be compact enough for over-the-air distribution (Table 3 measures tens
to a couple of hundred bytes per driver).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dsl.errors import CompileError
from repro.dsl.types import BY_CODE, ValueType

IMAGE_MAGIC = b"\xb5\x50"  # 'µP'
IMAGE_VERSION = 1

HANDLER_KIND_EVENT = 0
HANDLER_KIND_ERROR = 1


class Op(enum.IntEnum):
    """VM opcodes.  Gaps leave room for ISA growth without renumbering."""

    # Stack / constants
    NOP = 0x00
    PUSH0 = 0x01
    PUSH1 = 0x02
    PUSH8 = 0x03    # i8  (sign-extended)
    PUSH16 = 0x04   # i16 (sign-extended)
    PUSH32 = 0x05   # i32
    DUP = 0x06
    DROP = 0x07
    # Variables
    LDG = 0x10      # u8 slot         : push global scalar
    STG = 0x11      # u8 slot         : pop -> global scalar (truncating)
    LDE = 0x12      # u8 slot         : pop index, push array element
    STE = 0x13      # u8 slot         : pop value, pop index, store element
    LDP = 0x14      # u8 param        : push handler parameter
    INCG = 0x15     # u8 slot         : push old value; global += 1
    DECG = 0x16     # u8 slot         : push old value; global -= 1
    LDEI = 0x17     # u8 slot, u8 idx : push array element at constant index
    # Single-byte register forms for the eight hottest global slots; the
    # compiler allocates slots by access frequency to exploit them.
    LDG0 = 0x18
    LDG1 = 0x19
    LDG2 = 0x1A
    LDG3 = 0x1B
    LDG4 = 0x60
    LDG5 = 0x61
    LDG6 = 0x62
    LDG7 = 0x63
    STG0 = 0x1C
    STG1 = 0x1D
    STG2 = 0x1E
    STG3 = 0x1F
    STG4 = 0x64
    STG5 = 0x65
    STG6 = 0x66
    STG7 = 0x67
    # Arithmetic (32-bit signed, C semantics)
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIV = 0x23
    MOD = 0x24
    NEG = 0x25
    BAND = 0x26
    BOR = 0x27
    BXOR = 0x28
    BINV = 0x29
    SHL = 0x2A
    SHR = 0x2B
    # Comparison / logic (produce 0 or 1)
    EQ = 0x30
    NE = 0x31
    LT = 0x32
    LE = 0x33
    GT = 0x34
    GE = 0x35
    LNOT = 0x36
    # Control flow (relative to the byte after the operand)
    JMP = 0x40      # i16
    JZ = 0x41      # i16 : pop, jump when zero
    JNZ = 0x42      # i16 : pop, jump when non-zero
    JMPS = 0x43     # i8  : short form
    JZS = 0x44      # i8
    JNZS = 0x45     # i8
    # Events
    SIG = 0x50      # u8 target (0 = this, else lib id), u8 name id, u8 argc
    # Completion
    RETV = 0x58     #     : pop value, complete the pending request
    RETA = 0x59     # u8 slot : complete pending request with whole array
    RET = 0x5A      #     : end of handler


#: Operand layout per opcode: struct codes ('b' i8, 'B' u8, 'h' i16, 'i' i32).
OPERANDS: Dict[Op, str] = {
    Op.PUSH8: "b",
    Op.PUSH16: "h",
    Op.PUSH32: "i",
    Op.LDG: "B",
    Op.STG: "B",
    Op.LDE: "B",
    Op.STE: "B",
    Op.LDP: "B",
    Op.INCG: "B",
    Op.DECG: "B",
    Op.JMP: "h",
    Op.JZ: "h",
    Op.JNZ: "h",
    Op.JMPS: "b",
    Op.JZS: "b",
    Op.JNZS: "b",
    Op.SIG: "BBB",
    Op.RETA: "B",
    Op.LDEI: "BB",
}

_STRUCT_SIZES = {"b": 1, "B": 1, "h": 2, "i": 4}


def operand_size(op: Op) -> int:
    """Total operand bytes following *op*."""
    return sum(_STRUCT_SIZES[c] for c in OPERANDS.get(op, ""))


def instruction_size(op: Op) -> int:
    return 1 + operand_size(op)


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction (offset is its position within the code)."""

    offset: int
    op: Op
    args: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        return instruction_size(self.op)

    def encode(self) -> bytes:
        layout = OPERANDS.get(self.op, "")
        if len(layout) != len(self.args):
            raise CompileError(
                f"{self.op.name} expects {len(layout)} operands, got {len(self.args)}"
            )
        return bytes([self.op.value]) + struct.pack("<" + layout, *self.args)


def decode(code: bytes) -> Iterator[Instruction]:
    """Decode a code blob into instructions; raises on malformed code."""
    pos = 0
    while pos < len(code):
        try:
            op = Op(code[pos])
        except ValueError:
            raise CompileError(f"invalid opcode {code[pos]:#04x} at {pos}") from None
        layout = OPERANDS.get(op, "")
        size = operand_size(op)
        if pos + 1 + size > len(code):
            raise CompileError(f"truncated operands for {op.name} at {pos}")
        args = struct.unpack_from("<" + layout, code, pos + 1) if layout else ()
        yield Instruction(pos, op, tuple(args))
        pos += 1 + size


@dataclass(frozen=True)
class SlotDef:
    """One global variable slot: scalar or fixed-length array."""

    type: ValueType
    length: Optional[int] = None  # None => scalar

    @property
    def is_array(self) -> bool:
        return self.length is not None

    @property
    def ram_bytes(self) -> int:
        """RAM the slot occupies on the target (element width × count)."""
        width = max(1, self.type.bits // 8)
        return width * (self.length or 1)


@dataclass(frozen=True)
class HandlerDef:
    """Dispatch-table entry: where a handler's code starts."""

    kind: int        # HANDLER_KIND_EVENT | HANDLER_KIND_ERROR
    name_id: int     # well-known (0..127) or driver-local (128..255)
    offset: int      # into the code blob
    n_params: int


@dataclass(frozen=True)
class DriverImage:
    """A compiled, installable µPnP driver."""

    device_id: int
    slots: Tuple[SlotDef, ...]
    imports: Tuple[int, ...]          # native lib ids
    handlers: Tuple[HandlerDef, ...]
    code: bytes
    #: Driver-local custom event names, for diagnostics/disassembly only
    #: (not part of the wire image — the mote never needs the strings).
    local_names: Tuple[str, ...] = ()

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        if not 0 <= self.device_id <= 0xFFFFFFFF:
            raise CompileError("device id out of range")
        if len(self.slots) > 255 or len(self.imports) > 255 or len(self.handlers) > 255:
            raise CompileError("driver exceeds table limits")
        if len(self.code) > 0xFFFF:
            raise CompileError("driver code exceeds 64 KiB")

    # -------------------------------------------------------------- metrics
    @property
    def code_size(self) -> int:
        return len(self.code)

    @property
    def image_size(self) -> int:
        """Total over-the-air size in bytes (the Table 3 'Bytes' metric)."""
        return len(self.pack())

    @property
    def ram_bytes(self) -> int:
        """Static RAM the installed driver needs for its globals."""
        return sum(slot.ram_bytes for slot in self.slots)

    def find_handler(self, kind: int, name_id: int) -> Optional[HandlerDef]:
        for handler in self.handlers:
            if handler.kind == kind and handler.name_id == name_id:
                return handler
        return None

    def instructions(self) -> List[Instruction]:
        return list(decode(self.code))

    # ---------------------------------------------------------------- wire
    def pack(self) -> bytes:
        """Serialise to the over-the-air image format."""
        out = bytearray()
        out += IMAGE_MAGIC
        out.append(IMAGE_VERSION)
        out += struct.pack(">I", self.device_id)
        out.append(len(self.slots))
        for slot in self.slots:
            desc = slot.type.code & 0x0F
            if slot.is_array:
                desc |= 0x80
            out.append(desc)
            if slot.is_array:
                if not 1 <= slot.length <= 255:
                    raise CompileError("array length must fit one byte")
                out.append(slot.length)
        out.append(len(self.imports))
        out += bytes(self.imports)
        out.append(len(self.handlers))
        for handler in self.handlers:
            out.append(handler.kind)
            out.append(handler.name_id)
            out += struct.pack("<H", handler.offset)
            out.append(handler.n_params)
        out += struct.pack("<H", len(self.code))
        out += self.code
        return bytes(out)

    @classmethod
    def unpack(cls, blob: bytes) -> "DriverImage":
        """Parse an over-the-air image; raises CompileError when malformed.

        Memoized on the blob bytes: driver installs and hot-updates
        re-ship identical images across a fleet, the parse + full
        instruction-stream validation is pure, and the image is frozen —
        so every node sharing one blob shares one image object (which
        also lets the VM fastpath share one translation per image).
        Malformed blobs are not cached; they re-raise on every call.
        """
        return _unpack_cached(bytes(blob))

    @classmethod
    def _unpack(cls, blob: bytes) -> "DriverImage":
        if len(blob) < 10 or blob[:2] != IMAGE_MAGIC:
            raise CompileError("not a µPnP driver image")
        if blob[2] != IMAGE_VERSION:
            raise CompileError(f"unsupported image version {blob[2]}")
        pos = 3
        (device_id,) = struct.unpack_from(">I", blob, pos)
        pos += 4
        n_slots = blob[pos]
        pos += 1
        slots: List[SlotDef] = []
        for _ in range(n_slots):
            desc = blob[pos]
            pos += 1
            vtype = BY_CODE.get(desc & 0x0F)
            if vtype is None:
                raise CompileError(f"bad slot type code {desc & 0x0F}")
            length = None
            if desc & 0x80:
                length = blob[pos]
                pos += 1
            slots.append(SlotDef(vtype, length))
        n_imports = blob[pos]
        pos += 1
        imports = tuple(blob[pos : pos + n_imports])
        pos += n_imports
        n_handlers = blob[pos]
        pos += 1
        handlers: List[HandlerDef] = []
        for _ in range(n_handlers):
            kind = blob[pos]
            name_id = blob[pos + 1]
            (offset,) = struct.unpack_from("<H", blob, pos + 2)
            n_params = blob[pos + 4]
            handlers.append(HandlerDef(kind, name_id, offset, n_params))
            pos += 5
        (code_len,) = struct.unpack_from("<H", blob, pos)
        pos += 2
        code = blob[pos : pos + code_len]
        if len(code) != code_len:
            raise CompileError("truncated code section")
        pos += code_len
        if pos != len(blob):
            raise CompileError("trailing bytes after driver image")
        image = cls(device_id, tuple(slots), imports, tuple(handlers), code)
        list(decode(code))  # validate instruction stream
        return image


@lru_cache(maxsize=512)
def _unpack_cached(blob: bytes) -> "DriverImage":
    return DriverImage._unpack(blob)


__all__ = [
    "Op",
    "OPERANDS",
    "Instruction",
    "decode",
    "operand_size",
    "instruction_size",
    "SlotDef",
    "HandlerDef",
    "DriverImage",
    "IMAGE_MAGIC",
    "IMAGE_VERSION",
    "HANDLER_KIND_EVENT",
    "HANDLER_KIND_ERROR",
]
