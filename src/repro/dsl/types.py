"""The DSL's value types and their C-like storage semantics.

The VM computes in 32-bit signed arithmetic (like promoted C int on the
compiler's 32-bit virtual machine); declared variable types only matter
when a value is *stored*, at which point it is truncated/wrapped to the
declared width and signedness — matching C assignment semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1
UINT32_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class ValueType:
    """A scalar DSL type."""

    name: str
    bits: int
    signed: bool
    code: int  # 4-bit encoding used in driver images

    def truncate(self, value: int) -> int:
        """C-style store: wrap *value* into this type's representable range."""
        mask = (1 << self.bits) - 1
        wrapped = value & mask
        if self.signed and wrapped >= (1 << (self.bits - 1)):
            wrapped -= 1 << self.bits
        return wrapped

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1


UINT8 = ValueType("uint8_t", 8, False, 0)
INT8 = ValueType("int8_t", 8, True, 1)
UINT16 = ValueType("uint16_t", 16, False, 2)
INT16 = ValueType("int16_t", 16, True, 3)
UINT32 = ValueType("uint32_t", 32, False, 4)
INT32 = ValueType("int32_t", 32, True, 5)
BOOL = ValueType("bool", 8, False, 6)
CHAR = ValueType("char", 8, False, 7)

BY_NAME = {
    t.name: t for t in (UINT8, INT8, UINT16, INT16, UINT32, INT32, BOOL, CHAR)
}
BY_CODE = {t.code: t for t in BY_NAME.values()}


def type_named(name: str) -> ValueType:
    try:
        return BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown DSL type: {name!r}") from None


def wrap32(value: int) -> int:
    """Wrap an arbitrary int into the VM's 32-bit signed compute domain."""
    value &= UINT32_MASK
    if value > INT32_MAX:
        value -= 1 << 32
    return value


__all__ = [
    "ValueType",
    "UINT8",
    "INT8",
    "UINT16",
    "INT16",
    "UINT32",
    "INT32",
    "BOOL",
    "CHAR",
    "BY_NAME",
    "BY_CODE",
    "type_named",
    "wrap32",
    "INT32_MIN",
    "INT32_MAX",
]
