"""Recursive-descent parser for the µPnP driver DSL.

Grammar (reconstructed from Listing 1; see DESIGN.md §4.3):

    program    := (import | global_decl | handler)*
    import     := "import" NAME ";" NEWLINE
    global_decl:= TYPE declarator ("," declarator)* ";" NEWLINE
    declarator := NAME ("[" INT "]")? ("=" expr)?
    handler    := ("event"|"error") NAME "(" params? ")" ":" block
    params     := TYPE NAME ("," TYPE NAME)*
    block      := NEWLINE INDENT stmt+ DEDENT
    stmt       := simple ";" NEWLINE | if | while
    simple     := signal | return | assign | expr | break | continue

Operator precedence follows C, with Python's ``and``/``or``/``not``
accepted as synonyms for the logical operators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dsl import ast_nodes as ast
from repro.dsl.errors import ParseError
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import AUG_ASSIGN_BASE, Token, TokenType
from repro.dsl.types import type_named

_COMPARISONS = {
    TokenType.EQ: "==",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}

_BINARY_LEVELS: Sequence[Sequence[tuple[TokenType, str]]] = (
    ((TokenType.KW_OR, "or"),),
    ((TokenType.KW_AND, "and"),),
    (tuple(_COMPARISONS.items())),
    ((TokenType.PIPE, "|"),),
    ((TokenType.CARET, "^"),),
    ((TokenType.AMP, "&"),),
    ((TokenType.LSHIFT, "<<"), (TokenType.RSHIFT, ">>")),
    ((TokenType.PLUS, "+"), (TokenType.MINUS, "-")),
    ((TokenType.STAR, "*"), (TokenType.SLASH, "/"), (TokenType.PERCENT, "%")),
)


def parse(source: str) -> ast.Program:
    """Parse DSL *source* text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- plumbing
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, token_type: TokenType) -> Optional[Token]:
        if self._check(token_type):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str = "") -> Token:
        token = self._peek()
        if token.type is not token_type:
            expected = what or token_type.value
            raise ParseError(
                f"expected {expected}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # ------------------------------------------------------------ top level
    def parse_program(self) -> ast.Program:
        imports: List[ast.Import] = []
        global_decls: List[ast.VarDecl] = []
        handlers: List[ast.Handler] = []
        first = self._peek()
        while not self._check(TokenType.EOF):
            token = self._peek()
            if token.type is TokenType.KW_IMPORT:
                imports.append(self._parse_import())
            elif token.type is TokenType.TYPE:
                global_decls.extend(self._parse_global_decl())
            elif token.type in (TokenType.KW_EVENT, TokenType.KW_ERROR):
                handlers.append(self._parse_handler())
            else:
                raise ParseError(
                    f"expected import, declaration or handler, found {token.value!r}",
                    token.line,
                    token.column,
                )
        return ast.Program(first.line, first.column, imports, global_decls, handlers)

    def _parse_import(self) -> ast.Import:
        keyword = self._expect(TokenType.KW_IMPORT)
        name = self._expect(TokenType.NAME, "library name")
        self._expect(TokenType.SEMICOLON)
        self._expect(TokenType.NEWLINE)
        return ast.Import(keyword.line, keyword.column, name.value)

    def _parse_global_decl(self) -> List[ast.VarDecl]:
        type_token = self._expect(TokenType.TYPE)
        var_type = type_named(type_token.value)
        decls: List[ast.VarDecl] = []
        while True:
            name = self._expect(TokenType.NAME, "variable name")
            array_length: Optional[int] = None
            initializer: Optional[object] = None
            if self._match(TokenType.LBRACKET):
                size = self._expect(TokenType.INT, "array length")
                array_length = _int_value(size)
                if array_length < 1:
                    raise ParseError("array length must be >= 1", size.line, size.column)
                self._expect(TokenType.RBRACKET)
            elif self._match(TokenType.ASSIGN):
                initializer = self._parse_expr()
            decls.append(
                ast.VarDecl(
                    name.line, name.column, var_type, name.value,
                    array_length, initializer,
                )
            )
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.SEMICOLON)
        self._expect(TokenType.NEWLINE)
        return decls

    def _parse_handler(self) -> ast.Handler:
        keyword = self._advance()  # event | error
        kind = "event" if keyword.type is TokenType.KW_EVENT else "error"
        name = self._expect(TokenType.NAME, "handler name")
        self._expect(TokenType.LPAREN)
        params: List[ast.Param] = []
        if not self._check(TokenType.RPAREN):
            while True:
                ptype = self._expect(TokenType.TYPE, "parameter type")
                pname = self._expect(TokenType.NAME, "parameter name")
                params.append(
                    ast.Param(pname.line, pname.column, type_named(ptype.value), pname.value)
                )
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        self._expect(TokenType.COLON)
        body = self._parse_block()
        return ast.Handler(keyword.line, keyword.column, kind, name.value, params, body)

    # ------------------------------------------------------------ statements
    def _parse_block(self) -> List[object]:
        self._expect(TokenType.NEWLINE)
        self._expect(TokenType.INDENT, "an indented block")
        statements: List[object] = []
        while not self._check(TokenType.DEDENT):
            statements.append(self._parse_statement())
        self._expect(TokenType.DEDENT)
        return statements

    def _parse_statement(self) -> object:
        token = self._peek()
        if token.type is TokenType.KW_IF:
            return self._parse_if()
        if token.type is TokenType.KW_WHILE:
            return self._parse_while()
        statement = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON)
        self._expect(TokenType.NEWLINE)
        return statement

    def _parse_if(self) -> ast.If:
        keyword = self._expect(TokenType.KW_IF)
        condition = self._parse_expr()
        self._expect(TokenType.COLON)
        then_body = self._parse_block()
        else_body: List[object] = []
        if self._check(TokenType.KW_ELIF):
            # Desugar: elif chain becomes a nested If in the else branch.
            else_body = [self._parse_elif()]
        elif self._match(TokenType.KW_ELSE):
            self._expect(TokenType.COLON)
            else_body = self._parse_block()
        return ast.If(keyword.line, keyword.column, condition, then_body, else_body)

    def _parse_elif(self) -> ast.If:
        keyword = self._expect(TokenType.KW_ELIF)
        condition = self._parse_expr()
        self._expect(TokenType.COLON)
        then_body = self._parse_block()
        else_body: List[object] = []
        if self._check(TokenType.KW_ELIF):
            else_body = [self._parse_elif()]
        elif self._match(TokenType.KW_ELSE):
            self._expect(TokenType.COLON)
            else_body = self._parse_block()
        return ast.If(keyword.line, keyword.column, condition, then_body, else_body)

    def _parse_while(self) -> ast.While:
        keyword = self._expect(TokenType.KW_WHILE)
        condition = self._parse_expr()
        self._expect(TokenType.COLON)
        body = self._parse_block()
        return ast.While(keyword.line, keyword.column, condition, body)

    def _parse_simple_statement(self) -> object:
        token = self._peek()
        if token.type is TokenType.KW_SIGNAL:
            return self._parse_signal()
        if token.type is TokenType.KW_RETURN:
            return self._parse_return()
        if token.type is TokenType.KW_BREAK:
            self._advance()
            return ast.Break(token.line, token.column)
        if token.type is TokenType.KW_CONTINUE:
            self._advance()
            return ast.Continue(token.line, token.column)
        return self._parse_assign_or_expr()

    def _parse_signal(self) -> ast.Signal:
        keyword = self._expect(TokenType.KW_SIGNAL)
        if self._check(TokenType.KW_THIS):
            target = self._advance().value
        else:
            target = self._expect(TokenType.NAME, "signal target").value
        self._expect(TokenType.DOT)
        event = self._expect(TokenType.NAME, "event name").value
        self._expect(TokenType.LPAREN)
        args: List[object] = []
        if not self._check(TokenType.RPAREN):
            while True:
                args.append(self._parse_expr())
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        return ast.Signal(keyword.line, keyword.column, target, event, args)

    def _parse_return(self) -> ast.Return:
        keyword = self._expect(TokenType.KW_RETURN)
        if self._check(TokenType.SEMICOLON):
            return ast.Return(keyword.line, keyword.column, None)
        value = self._parse_expr()
        return ast.Return(keyword.line, keyword.column, value)

    def _parse_assign_or_expr(self) -> object:
        start = self._pos
        expr = self._parse_expr()
        token = self._peek()
        if token.type is TokenType.ASSIGN or token.type in AUG_ASSIGN_BASE:
            if not isinstance(expr, ast.LValue):
                raise ParseError("cannot assign to this expression", token.line, token.column)
            self._advance()
            value = self._parse_expr()
            op = "=" if token.type is TokenType.ASSIGN else token.value
            return ast.Assign(expr.line, expr.column, expr, op, value)
        del start
        return ast.ExprStatement(expr.line, expr.column, expr)

    # ----------------------------------------------------------- expressions
    def _parse_expr(self, level: int = 0) -> object:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_expr(level + 1)
        ops = dict(_BINARY_LEVELS[level])
        while self._peek().type in ops:
            token = self._advance()
            right = self._parse_expr(level + 1)
            left = ast.BinaryOp(token.line, token.column, ops[token.type], left, right)
        return left

    def _parse_unary(self) -> object:
        token = self._peek()
        if token.type in (TokenType.MINUS, TokenType.TILDE, TokenType.BANG,
                          TokenType.KW_NOT):
            self._advance()
            operand = self._parse_unary()
            op = {"-": "-", "~": "~", "!": "!", "not": "!"}[token.value]
            return ast.UnaryOp(token.line, token.column, op, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> object:
        expr = self._parse_primary()
        token = self._peek()
        if token.type in (TokenType.PLUSPLUS, TokenType.MINUSMINUS):
            if not isinstance(expr, ast.LValue):
                raise ParseError(
                    f"{token.value} needs a variable or array element",
                    token.line, token.column,
                )
            self._advance()
            return ast.PostfixOp(token.line, token.column, token.value, expr)
        return expr

    def _parse_primary(self) -> object:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return ast.IntLiteral(token.line, token.column, _int_value(token))
        if token.type is TokenType.KW_TRUE:
            self._advance()
            return ast.BoolLiteral(token.line, token.column, True)
        if token.type is TokenType.KW_FALSE:
            self._advance()
            return ast.BoolLiteral(token.line, token.column, False)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.NAME:
            self._advance()
            if self._match(TokenType.LBRACKET):
                index = self._parse_expr()
                self._expect(TokenType.RBRACKET)
                return ast.IndexRef(token.line, token.column, token.value, index)
            return ast.NameRef(token.line, token.column, token.value)
        raise ParseError(f"unexpected token {token.value!r}", token.line, token.column)


def _int_value(token: Token) -> int:
    return int(token.value, 0)


__all__ = ["parse"]
