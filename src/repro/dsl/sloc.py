"""Source-lines-of-code counting, as used for Table 3.

SLoC = lines that contain something other than whitespace and comments.
The same rule is applied to µPnP DSL sources and to the native C
baselines so the comparison is fair.
"""

from __future__ import annotations


def count_sloc(source: str, *, comment_prefixes: tuple[str, ...] = ("#",)) -> int:
    """Count non-blank, non-comment-only lines of *source*."""
    count = 0
    in_block_comment = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if not line:
            continue
        if any(line.startswith(prefix) for prefix in comment_prefixes):
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
                continue
            remainder = line.split("*/", 1)[1].strip()
            if not remainder:
                continue
        if line.startswith("//"):
            continue
        count += 1
    return count


def count_c_sloc(source: str) -> int:
    """SLoC for C sources: //, /* */ and blank lines are not counted."""
    return count_sloc(source, comment_prefixes=("//",))


__all__ = ["count_sloc", "count_c_sloc"]
