"""Native interconnect library interfaces and the event-name registry.

The µPnP runtime exposes each hardware interconnect to drivers as a
*native library* (§4.2) with three faces:

* **commands** — handlers a driver may invoke via ``signal lib.cmd(...)``;
* **emits** — events the library posts back to the driver (split-phase
  completions such as ``newdata``);
* **errors** — prioritized error events (§4.1) the library can raise.

The same specifications drive both the DSL checker (signature and
constant resolution at compile time) and the VM's native bindings at
run time, so they cannot drift apart.

Event *names* are compiled to one-byte identifiers.  Identifiers
0..127 are the platform-wide well-known vocabulary below; 128..255 are
driver-local names allocated by the compiler for custom events (e.g.
``readDone`` handlers a driver signals on itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.dsl.types import (
    CHAR,
    UINT8,
    UINT16,
    UINT32,
    ValueType,
)


@dataclass(frozen=True)
class EventSig:
    """Signature of an event handler: ordered parameter types."""

    name: str
    params: Tuple[ValueType, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True)
class NativeLibSpec:
    """Compile-time interface of one native interconnect library."""

    name: str
    lib_id: int
    commands: Mapping[str, EventSig]
    emits: Mapping[str, EventSig]
    errors: Tuple[str, ...]
    constants: Mapping[str, int]


def _sigs(*sigs: EventSig) -> Dict[str, EventSig]:
    return {s.name: s for s in sigs}


UART_LIB = NativeLibSpec(
    name="uart",
    lib_id=1,
    commands=_sigs(
        EventSig("init", (UINT32, UINT8, UINT8, UINT8)),
        EventSig("reset"),
        EventSig("read"),
        EventSig("stop"),
        EventSig("write", (UINT8,)),
    ),
    emits=_sigs(EventSig("newdata", (CHAR,)), EventSig("writeDone")),
    errors=("invalidConfiguration", "uartInUse", "timeOut"),
    constants={
        "USART_PARITY_NONE": 0,
        "USART_PARITY_EVEN": 1,
        "USART_PARITY_ODD": 2,
        "USART_STOP_BITS_1": 1,
        "USART_STOP_BITS_2": 2,
        "USART_DATA_BITS_7": 7,
        "USART_DATA_BITS_8": 8,
    },
)

ADC_LIB = NativeLibSpec(
    name="adc",
    lib_id=2,
    commands=_sigs(
        EventSig("init", (UINT8, UINT16)),
        EventSig("reset"),
        EventSig("read"),
    ),
    emits=_sigs(EventSig("data", (UINT16,))),
    errors=("invalidConfiguration", "busInUse", "timeOut"),
    constants={
        "ADC_RES_8BIT": 8,
        "ADC_RES_10BIT": 10,
        "ADC_REF_VDD": 3300,
        "ADC_REF_2V56": 2560,
        "ADC_REF_1V1": 1100,
    },
)

I2C_LIB = NativeLibSpec(
    name="i2c",
    lib_id=3,
    commands=_sigs(
        EventSig("init", (UINT32,)),
        EventSig("reset"),
        EventSig("write1", (UINT8, UINT8)),
        EventSig("write2", (UINT8, UINT8, UINT8)),
        EventSig("read", (UINT8, UINT8)),
    ),
    emits=_sigs(
        EventSig("newdata", (CHAR,)),
        EventSig("readDone"),
        EventSig("writeDone"),
    ),
    errors=("invalidConfiguration", "busInUse", "timeOut", "nack"),
    constants={
        "I2C_STANDARD": 100_000,
        "I2C_FAST": 400_000,
    },
)

SPI_LIB = NativeLibSpec(
    name="spi",
    lib_id=4,
    commands=_sigs(
        EventSig("init", (UINT32, UINT8)),
        EventSig("reset"),
        EventSig("transfer", (UINT8,)),
    ),
    emits=_sigs(EventSig("data", (UINT8,))),
    errors=("invalidConfiguration", "busInUse"),
    constants={
        "SPI_MODE0": 0,
        "SPI_MODE1": 1,
        "SPI_MODE2": 2,
        "SPI_MODE3": 3,
    },
)

#: All native libraries, by import name.
NATIVE_LIBS: Mapping[str, NativeLibSpec] = {
    lib.name: lib for lib in (UART_LIB, ADC_LIB, I2C_LIB, SPI_LIB)
}

#: Native libraries by wire identifier (used in driver images).
NATIVE_LIBS_BY_ID: Mapping[int, NativeLibSpec] = {
    lib.lib_id: lib for lib in NATIVE_LIBS.values()
}

#: Events the µPnP runtime itself delivers to every driver (§4.1, §5.3.1).
RUNTIME_EVENTS = _sigs(
    EventSig("init"),
    EventSig("destroy"),
    EventSig("read"),
    EventSig("write", (UINT32,)),  # value type follows the VM compute width
    EventSig("stream"),
)

#: Stable platform-wide event-name vocabulary (ids 0..127).
WELL_KNOWN_NAMES: Tuple[str, ...] = (
    "init",          # 0
    "destroy",       # 1
    "read",          # 2
    "write",         # 3
    "stream",        # 4
    "newdata",       # 5
    "data",          # 6
    "readDone",      # 7
    "writeDone",     # 8
    "transferDone",  # 9
    "invalidConfiguration",  # 10
    "uartInUse",     # 11
    "busInUse",      # 12
    "timeOut",       # 13
    "nack",          # 14
)

_WELL_KNOWN_IDS: Dict[str, int] = {n: i for i, n in enumerate(WELL_KNOWN_NAMES)}

#: First identifier available for driver-local custom event names.
LOCAL_NAME_BASE = 128


def well_known_id(name: str) -> Optional[int]:
    """Platform-wide id for *name*, or None if it is driver-local."""
    return _WELL_KNOWN_IDS.get(name)


def name_for_id(name_id: int, local_names: Sequence[str] = ()) -> str:
    """Human-readable name for a compiled name id (for disassembly)."""
    if 0 <= name_id < len(WELL_KNOWN_NAMES):
        return WELL_KNOWN_NAMES[name_id]
    local_index = name_id - LOCAL_NAME_BASE
    if 0 <= local_index < len(local_names):
        return local_names[local_index]
    return f"name_{name_id}"


__all__ = [
    "EventSig",
    "NativeLibSpec",
    "NATIVE_LIBS",
    "NATIVE_LIBS_BY_ID",
    "UART_LIB",
    "ADC_LIB",
    "I2C_LIB",
    "SPI_LIB",
    "RUNTIME_EVENTS",
    "WELL_KNOWN_NAMES",
    "LOCAL_NAME_BASE",
    "well_known_id",
    "name_for_id",
]
