"""repro.obs — cross-layer causal tracing for the µPnP reproduction.

A :class:`~repro.obs.tracer.Tracer` attaches to a
:class:`~repro.sim.kernel.Simulator` and records structured *spans*
(begin/end and fixed-duration slices), instant events and async
request-level spans from every layer of the stack: kernel event
dispatch, per-hop network transmission, VM handler execution,
interconnect transactions and the client/Thing/manager protocol
endpoints.  A *trace id* allocated at the root of a causal chain (one
client read, one driver install) rides the simulator's scheduled
events and the protocol sequence numbers, so everything downstream of
the root lands in the same trace tree — across nodes, radio hops and
driver code.

Tracing is off by default: every instrumentation point is guarded by a
``sim.tracer is None`` check, so the disabled-mode cost is one
attribute load per hook (benchmarked by ``benchmarks/bench_obs.py``).
Recorded events live in a bounded ring buffer and export to Chrome
trace-event JSON (loadable in Perfetto / chrome://tracing) via
:mod:`repro.obs.export`, or to a plain-text critical-path summary via
``python -m repro.obs report``.
"""

from repro.obs.tracer import (
    DEFAULT_CATEGORIES,
    Span,
    TraceEvent,
    Tracer,
    install_tracer,
)

__all__ = [
    "DEFAULT_CATEGORIES",
    "Span",
    "TraceEvent",
    "Tracer",
    "install_tracer",
]
