"""The tracing core: spans, instants, trace-id propagation, ring buffer.

One :class:`Tracer` serves one :class:`~repro.sim.kernel.Simulator`
(hence one fleet shard).  Instrumentation points throughout the stack
fetch it as ``sim.tracer`` and guard every record with
:meth:`Tracer.enabled_for`, so a ``None`` tracer (the default) costs a
single attribute check and an enabled tracer only records the
categories it was asked for.

Causality is tracked with integer *trace ids*:

* a root operation (client read, driver install) allocates one with
  :meth:`new_trace` and makes it :attr:`current`;
* :meth:`Simulator.schedule` captures :attr:`current` into the
  scheduled event and the kernel restores it while the event's
  callback runs, so the id follows every split-phase hop — stack CPU
  delays, radio frames, router dispatches, bus completions;
* protocol endpoints additionally pin ids to message sequence numbers
  (:meth:`bind_seq` / :meth:`trace_for_seq`), the same seq field the
  µPnP wire protocol uses to associate requests with replies, so a
  trace can be re-adopted from the wire even where no scheduler
  context survives (and across multicast fan-out, where one send
  context reaches every group member).

Events are recorded into a bounded ring (oldest evicted first) and are
pickle-safe via :meth:`snapshot`, which is how per-shard traces travel
back from fleet worker processes for the deterministic shard-order
merge.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

#: Categories recorded by default (fleet ``--trace`` runs).  The
#: ``kernel`` firehose (one instant per simulator event) is opt-in.
#: ``gateway`` carries the request-scoped spans the service bridge
#: records around bridged ops (see ``repro.gateway.bridge``).
DEFAULT_CATEGORIES = ("core", "net", "proto", "vm", "interconnect", "chaos",
                      "gateway")

#: Ring-buffer bound used when callers do not choose one.
DEFAULT_LIMIT = 200_000

#: Bound on live seq -> trace-id bindings (seq numbers are 16-bit and
#: wrap; stale bindings are evicted FIFO).
_SEQ_BINDING_LIMIT = 4096


class TraceEvent:
    """One recorded event, in Chrome trace-event terms.

    ``phase`` is the Chrome phase letter: ``X`` complete slice (known
    duration), ``I`` instant, ``B``/``E`` nested begin/end, ``b``/``e``
    async (request-level) span keyed by trace id.  Times are integer
    simulation nanoseconds.
    """

    __slots__ = ("phase", "name", "cat", "track", "time_ns", "dur_ns",
                 "trace_id", "args")

    def __init__(self, phase: str, name: str, cat: str, track: int,
                 time_ns: int, dur_ns: int = 0,
                 trace_id: Optional[int] = None,
                 args: Optional[dict] = None) -> None:
        self.phase = phase
        self.name = name
        self.cat = cat
        self.track = track
        self.time_ns = time_ns
        self.dur_ns = dur_ns
        self.trace_id = trace_id
        self.args = args

    def to_dict(self) -> dict:
        """Pickle/JSON-safe form used by snapshots and the exporter."""
        out = {"ph": self.phase, "name": self.name, "cat": self.cat,
               "tid": self.track, "ts": self.time_ns}
        if self.phase == "X":
            out["dur"] = self.dur_ns
        if self.trace_id is not None:
            out["id"] = self.trace_id
        if self.args:
            out["args"] = dict(self.args)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.phase!r}, {self.name!r}, cat={self.cat!r}, "
                f"t={self.time_ns}, trace={self.trace_id})")


class Span:
    """Handle for an open ``B`` span; :meth:`end` is idempotent.

    Ending a span twice, or after the tracer was disabled, is safe: the
    first end wins and later ends are ignored (unbalanced-end safety).
    """

    __slots__ = ("_tracer", "name", "cat", "track", "trace_id", "_open")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: int,
                 trace_id: Optional[int]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.trace_id = trace_id
        self._open = True

    @property
    def open(self) -> bool:
        return self._open

    def end(self, args: Optional[dict] = None) -> None:
        if not self._open:
            return
        self._open = False
        self._tracer._record(TraceEvent(
            "E", self.name, self.cat, self.track,
            self._tracer.now_ns, trace_id=self.trace_id, args=args,
        ))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class Tracer:
    """Bounded structured-event recorder for one simulator."""

    def __init__(
        self,
        sim,
        *,
        limit: int = DEFAULT_LIMIT,
        categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES,
        trace_id_base: int = 0,
        label: str = "",
    ) -> None:
        self._sim = sim
        self.enabled = True
        #: None means "record every category".
        self._categories: Optional[set] = (
            None if categories is None else set(categories)
        )
        self._limit = max(1, int(limit))
        self._events: Deque[TraceEvent] = deque(maxlen=self._limit)
        self.dropped = 0
        self.label = label
        #: Trace id of the causal chain currently executing (the kernel
        #: sets/clears this around each event callback).
        self.current: Optional[int] = None
        self._next_trace = 0
        self._trace_id_base = int(trace_id_base)
        self._tracks: Dict[str, int] = {}
        self._seq_bindings: Dict[int, int] = {}
        self._listeners: List[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------ gates
    def enabled_for(self, cat: str) -> bool:
        """Should events of *cat* be recorded right now?"""
        if not self.enabled:
            return False
        return self._categories is None or cat in self._categories

    def enable_category(self, cat: str) -> bool:
        """Start recording *cat*; returns True if this was a change."""
        if self._categories is None or cat in self._categories:
            return False
        self._categories.add(cat)
        return True

    def disable_category(self, cat: str) -> None:
        if self._categories is not None:
            self._categories.discard(cat)

    # ------------------------------------------------------------------ clock
    @property
    def now_ns(self) -> int:
        return self._sim.now_ns

    # -------------------------------------------------------------- trace ids
    def new_trace(self) -> int:
        """Allocate a fresh trace id (shard-unique via the id base)."""
        self._next_trace += 1
        return self._trace_id_base + self._next_trace

    def bind_seq(self, seq: int, trace_id: int) -> None:
        """Pin *trace_id* to a protocol sequence number (§5's request/
        reply association), so receivers can re-adopt the trace."""
        bindings = self._seq_bindings
        if len(bindings) >= _SEQ_BINDING_LIMIT and seq not in bindings:
            bindings.pop(next(iter(bindings)))
        bindings[seq] = trace_id

    def trace_for_seq(self, seq: int) -> Optional[int]:
        return self._seq_bindings.get(seq)

    # ----------------------------------------------------------------- tracks
    def track(self, name: str) -> int:
        """Stable per-tracer track (Perfetto thread) id for *name*."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = self._tracks[name] = len(self._tracks) + 1
        return tid

    # -------------------------------------------------------------- recording
    def _record(self, event: TraceEvent) -> None:
        events = self._events
        if len(events) == self._limit:
            self.dropped += 1
        events.append(event)
        for listener in self._listeners:
            listener(event)

    def complete(self, name: str, cat: str, track: int, dur_ns: int, *,
                 ts_ns: Optional[int] = None,
                 trace_id: Optional[int] = None,
                 args: Optional[dict] = None) -> None:
        """Record a fixed-duration slice (Chrome ``X`` event)."""
        self._record(TraceEvent(
            "X", name, cat, track,
            self.now_ns if ts_ns is None else int(ts_ns), int(dur_ns),
            trace_id=self.current if trace_id is None else trace_id,
            args=args,
        ))

    def instant(self, name: str, cat: str, track: int = 0, *,
                trace_id: Optional[int] = None,
                args: Optional[dict] = None) -> None:
        self._record(TraceEvent(
            "I", name, cat, track, self.now_ns,
            trace_id=self.current if trace_id is None else trace_id,
            args=args,
        ))

    def begin(self, name: str, cat: str, track: int = 0, *,
              trace_id: Optional[int] = None,
              args: Optional[dict] = None) -> Span:
        """Open a nested span on *track*; close via ``.end()`` / ``with``."""
        resolved = self.current if trace_id is None else trace_id
        self._record(TraceEvent(
            "B", name, cat, track, self.now_ns, trace_id=resolved, args=args,
        ))
        return Span(self, name, cat, track, resolved)

    def async_begin(self, name: str, cat: str, trace_id: int, *,
                    track: int = 0, args: Optional[dict] = None) -> None:
        """Open a request-level span keyed by *trace_id* (Chrome ``b``)."""
        self._record(TraceEvent(
            "b", name, cat, track, self.now_ns, trace_id=trace_id, args=args,
        ))

    def async_end(self, name: str, cat: str, trace_id: int, *,
                  track: int = 0, args: Optional[dict] = None) -> None:
        self._record(TraceEvent(
            "e", name, cat, track, self.now_ns, trace_id=trace_id, args=args,
        ))

    # -------------------------------------------------------------- listeners
    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Observe every recorded event live (ProtocolTracer hook)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ---------------------------------------------------------------- exports
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def snapshot(self) -> dict:
        """Pickle/JSON-safe view: events + track names + drop count."""
        return {
            "label": self.label,
            "events": [event.to_dict() for event in self._events],
            "tracks": dict(self._tracks),
            "dropped": self.dropped,
        }


def install_tracer(
    sim,
    *,
    limit: int = DEFAULT_LIMIT,
    categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES,
    trace_id_base: int = 0,
    label: str = "",
) -> Tracer:
    """Create a tracer and attach it (swaps in the traced kernel paths)."""
    tracer = Tracer(sim, limit=limit, categories=categories,
                    trace_id_base=trace_id_base, label=label)
    sim.attach_tracer(tracer)
    return tracer


__all__ = ["TraceEvent", "Span", "Tracer", "install_tracer",
           "DEFAULT_CATEGORIES", "DEFAULT_LIMIT"]
