"""Command-line entry: ``python -m repro.obs <command>``.

``report``
    Summarise an exported Chrome trace JSON file: slowest traces and
    the critical path of the slowest (or of ``--trace-id``).

``smoke``
    Run the built-in traced scenario (one client read across a line
    topology), write the Perfetto-loadable JSON and verify the read's
    trace crosses the expected layers.  Exits nonzero if it does not —
    this is the CI tracing smoke.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import load_trace, write_trace
from repro.obs.report import collect_traces, render_summary, render_trace
from repro.obs.smoke import traced_read
from repro.obs.tracer import DEFAULT_LIMIT


def _cmd_report(args: argparse.Namespace) -> int:
    document = load_trace(args.path)
    if args.trace_id is not None:
        summary = collect_traces(document).get(args.trace_id)
        if summary is None:
            print(f"no trace {args.trace_id} in {args.path}", file=sys.stderr)
            return 1
        print(render_trace(summary))
        return 0
    print(render_summary(document, top=args.top))
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    document, info = traced_read(hops=args.hops, limit=args.limit)
    if args.out:
        write_trace(args.out, document)
        print(f"wrote {len(document['traceEvents'])} events to {args.out}")
    layers = info["layers"]
    print(f"client.read trace {info['read_trace_id']} crossed layers: "
          f"{', '.join(sorted(layers)) or '(none)'}")
    if info["result"] is None or not getattr(info["result"], "ok", False):
        print("smoke FAILED: the traced read returned no data", file=sys.stderr)
        return 1
    required = {"net", "vm", "interconnect"}
    if not required <= layers:
        print(f"smoke FAILED: trace missing layers {sorted(required - layers)}",
              file=sys.stderr)
        return 1
    summary = collect_traces(document).get(info["read_trace_id"])
    if summary is not None:
        print()
        print(render_trace(summary))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and exercise the cross-layer tracing subsystem.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="summarise an exported trace")
    report.add_argument("path", help="Chrome trace JSON file")
    report.add_argument("--top", type=int, default=10,
                        help="rows in the slowest-traces table")
    report.add_argument("--trace-id", type=int, default=None,
                        help="render one trace's critical path")
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser("smoke", help="run the built-in traced scenario")
    smoke.add_argument("--out", default="",
                       help="write the Perfetto JSON here")
    smoke.add_argument("--hops", type=int, default=2,
                       help="relay hops between client and Thing")
    smoke.add_argument("--limit", type=int, default=DEFAULT_LIMIT,
                       help="tracer ring-buffer bound")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
