"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Converts tracer snapshots into the Trace Event Format's JSON object
form: ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  Each fleet
shard becomes one Perfetto *process* (pid = shard index) and each
tracer track one *thread*, named via ``M`` metadata events.  Slices of
one causal trace are stitched together with flow events (``s``/``t``
arrows) keyed by the trace id, so a client read renders as a connected
tree: client span -> net hops -> VM dispatches -> bus transactions.

Timestamps convert from integer simulation nanoseconds to the format's
microseconds; the conversion (division by 1000) is exact for the
integer-ns kernel clock, so exports are byte-deterministic.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

#: Category given to the derived flow (arrow) events.
FLOW_CAT = "trace"


def _sanitize(value):
    """Make an args value JSON-safe (payload bytes become hex)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def _ts_us(time_ns: int) -> float:
    return time_ns / 1000.0


def chrome_events(snapshot: dict, *, pid: int = 0) -> List[dict]:
    """One tracer snapshot -> a list of Chrome trace-event dicts.

    Emits process/thread naming metadata, the recorded events, and
    derived flow events connecting every ``X`` slice of a trace in
    timestamp order (``s`` at the first slice, ``t`` steps after).
    """
    out: List[dict] = []
    label = snapshot.get("label") or f"shard-{pid}"
    out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": label}})
    tracks: Dict[str, int] = snapshot.get("tracks", {})
    for name, tid in sorted(tracks.items(), key=lambda item: item[1]):
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": name}})
    flows_started: set = set()
    for record in snapshot.get("events", ()):
        phase = record["ph"]
        event = {
            "ph": phase,
            "name": record["name"],
            "cat": record["cat"],
            "pid": pid,
            "tid": record["tid"],
            "ts": _ts_us(record["ts"]),
        }
        trace_id = record.get("id")
        args = _sanitize(record.get("args") or {})
        if trace_id is not None:
            args.setdefault("trace_id", trace_id)
        if phase == "X":
            event["dur"] = _ts_us(record.get("dur", 0))
        if phase in ("b", "e"):
            # Async (request-level) spans are keyed by the trace id.
            event["id"] = f"{trace_id:#x}" if trace_id is not None else "0x0"
        if phase == "I":
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        out.append(event)
        if phase == "X" and trace_id is not None:
            # Flow arrows stitch the trace across tracks/processes.
            flow_phase = "t" if trace_id in flows_started else "s"
            flows_started.add(trace_id)
            out.append({
                "ph": flow_phase, "name": FLOW_CAT, "cat": FLOW_CAT,
                "pid": pid, "tid": record["tid"], "ts": event["ts"],
                "id": f"{trace_id:#x}",
            })
    return out


def counter_events(snapshot: dict, *, pid: int = 0) -> List[dict]:
    """One telemetry snapshot -> Chrome counter ("C") events.

    Each :class:`~repro.telemetry.series.SeriesBank` series becomes a
    Perfetto counter track on the shard's process: one ``C`` event per
    sample, carrying the value under the series' short name.  Label
    sets distinguish tracks (``name{key=value}``), matching the
    OpenMetrics exposition names.
    """
    out: List[dict] = []
    for series in snapshot.get("series", ()):
        labels = series.get("labels") or {}
        name = series["name"]
        if labels:
            decorated = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{name}{{{decorated}}}"
        short = series["name"].rsplit(".", 1)[-1]
        for time_ns, value in series.get("samples", ()):
            out.append({
                "ph": "C", "name": name, "cat": "telemetry",
                "pid": pid, "tid": 0, "ts": _ts_us(time_ns),
                "args": {short: value},
            })
    return out


def merge_traces(snapshots: Iterable[Optional[dict]],
                 telemetry: Optional[Iterable[Optional[dict]]] = None) -> dict:
    """Merge per-shard snapshots into one Chrome trace JSON document.

    Shards are merged in iteration (= shard-index) order and pids are
    assigned from that order, so the merged document is a deterministic
    function of the scenario — identical for any worker count.  ``None``
    entries (shards that did not trace) keep their pid reserved.

    *telemetry* optionally supplies per-shard
    :class:`~repro.telemetry.series.SeriesBank` snapshots (same order);
    their series ride along as counter tracks on the same pids.
    """
    events: List[dict] = []
    for pid, snapshot in enumerate(snapshots):
        if snapshot is None:
            continue
        events.extend(chrome_events(snapshot, pid=pid))
    if telemetry is not None:
        for pid, snapshot in enumerate(telemetry):
            if snapshot is None:
                continue
            events.extend(counter_events(snapshot, pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def filter_events(document: dict, *, cat: Optional[str] = None,
                  trace_id: Optional[int] = None) -> List[dict]:
    """Events of a merged trace document matching *cat* / *trace_id*.

    Metadata (``M``) and derived flow events are excluded; the result
    is the recorded-slice view tests and the flight recorder want.
    """
    out: List[dict] = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") == "M" or event.get("cat") == FLOW_CAT:
            continue
        if cat is not None and event.get("cat") != cat:
            continue
        if trace_id is not None:
            args = event.get("args") or {}
            if args.get("trace_id") != trace_id:
                continue
        out.append(event)
    return out


def write_trace(path: str, document: dict) -> None:
    """Write a trace document produced by :func:`merge_traces`."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_trace(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["chrome_events", "counter_events", "filter_events",
           "merge_traces", "write_trace", "load_trace", "FLOW_CAT"]
