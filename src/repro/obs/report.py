"""Plain-text critical-path summaries of exported traces.

Works on the Chrome trace JSON written by :mod:`repro.obs.export`
(it round-trips our own ``trace_id`` annotations).  The *critical path*
of a trace is the timestamp-ordered chain of slices that advances the
trace's completion frontier; gaps between chain slices are reported as
waits (queueing, radio propagation, timers) — the answer to "why was
this read's p99 40 ms?" without opening Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TraceSummary:
    """Everything the report needs about one causal trace."""

    trace_id: int
    label: str = ""
    #: Gateway request correlation id, when a ``gateway.*`` span named
    #: one (``X-Request-Id`` threading; see repro.gateway.bridge).
    request_id: str = ""
    start_us: float = 0.0
    end_us: float = 0.0
    #: X slices: (ts_us, dur_us, name, cat, pid, tid).
    slices: List[Tuple[float, float, str, str, int, int]] = field(
        default_factory=list)
    instants: int = 0
    by_cat_us: Dict[str, float] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


def _trace_id_of(event: dict) -> Optional[int]:
    args = event.get("args") or {}
    trace_id = args.get("trace_id")
    if trace_id is not None:
        return int(trace_id)
    raw = event.get("id")
    if raw is None or event.get("cat") == "trace":
        return None
    return int(raw, 16) if isinstance(raw, str) else int(raw)


def collect_traces(document: dict) -> Dict[int, TraceSummary]:
    """Group a trace document's events into per-trace summaries."""
    traces: Dict[int, TraceSummary] = {}
    for event in document.get("traceEvents", ()):
        phase = event.get("ph")
        if phase not in ("X", "I", "b", "e"):
            continue
        trace_id = _trace_id_of(event)
        if trace_id is None:
            continue
        summary = traces.get(trace_id)
        if summary is None:
            summary = traces[trace_id] = TraceSummary(trace_id)
        ts = float(event.get("ts", 0.0))
        end = ts
        if phase == "b" and not summary.label:
            summary.label = event.get("name", "")
        if not summary.request_id:
            summary.request_id = str(
                (event.get("args") or {}).get("request_id") or "")
        if phase == "X":
            dur = float(event.get("dur", 0.0))
            end = ts + dur
            cat = event.get("cat", "")
            summary.slices.append(
                (ts, dur, event.get("name", ""), cat,
                 event.get("pid", 0), event.get("tid", 0)))
            summary.by_cat_us[cat] = summary.by_cat_us.get(cat, 0.0) + dur
        elif phase == "I":
            summary.instants += 1
        if not summary.slices and summary.instants == 0 and phase == "b":
            summary.start_us = ts
        if summary.start_us == 0.0 and summary.end_us == 0.0:
            summary.start_us = ts
            summary.end_us = end
        else:
            summary.start_us = min(summary.start_us, ts)
            summary.end_us = max(summary.end_us, end)
    for summary in traces.values():
        summary.slices.sort()
        if not summary.label and summary.slices:
            summary.label = summary.slices[0][2]
    return traces


def request_index(document: dict) -> Dict[str, List[int]]:
    """Map gateway request ids to the trace ids that served them.

    The inverse lookup an operator starts from: an ``X-Request-Id``
    out of an access log or a 504 body, into the obs traces to render
    with :func:`render_trace`.
    """
    index: Dict[str, List[int]] = {}
    for summary in collect_traces(document).values():
        if summary.request_id:
            index.setdefault(summary.request_id,
                             []).append(summary.trace_id)
    for ids in index.values():
        ids.sort()
    return index


def critical_path(
    summary: TraceSummary,
) -> List[Tuple[float, float, str, str]]:
    """The frontier-advancing chain of slices: (ts, dur, name, cat).

    Walk slices in start order; a slice joins the path iff it pushes
    the completion frontier forward.  Time not covered by any chain
    slice is wait time (queueing / propagation / timers).
    """
    path: List[Tuple[float, float, str, str]] = []
    frontier = summary.start_us
    for ts, dur, name, cat, _pid, _tid in summary.slices:
        if ts + dur > frontier:
            path.append((ts, dur, name, cat))
            frontier = ts + dur
    return path


def render_trace(summary: TraceSummary) -> str:
    """Detailed critical-path rendering of one trace."""
    tag = f"  request {summary.request_id}" if summary.request_id else ""
    lines = [
        f"trace {summary.trace_id}  {summary.label or '(unlabelled)'}"
        f"{tag}  "
        f"start {summary.start_us / 1e3:.3f} ms  "
        f"span {summary.duration_us / 1e3:.3f} ms  "
        f"({len(summary.slices)} slices, {summary.instants} instants)"
    ]
    if summary.by_cat_us:
        parts = [f"{cat} {us / 1e3:.3f} ms"
                 for cat, us in sorted(summary.by_cat_us.items(),
                                       key=lambda item: -item[1])]
        lines.append("  busy by layer: " + ", ".join(parts))
    lines.append("  critical path:")
    cursor = summary.start_us
    for ts, dur, name, cat in critical_path(summary):
        if ts > cursor + 1e-9:
            lines.append(
                f"    [{cursor - summary.start_us:9.1f} us] "
                f"(wait {ts - cursor:9.1f} us)")
        lines.append(
            f"    [{ts - summary.start_us:9.1f} us] {name:<32} "
            f"{cat:<12} {dur:9.1f} us")
        cursor = max(cursor, ts + dur)
    if summary.end_us > cursor + 1e-9:
        lines.append(
            f"    [{cursor - summary.start_us:9.1f} us] "
            f"(wait {summary.end_us - cursor:9.1f} us)")
    return "\n".join(lines)


def render_summary(document: dict, *, top: int = 10) -> str:
    """Slowest-traces table plus the critical path of the slowest."""
    traces = collect_traces(document)
    if not traces:
        return "(no traced operations in this document)"
    ranked = sorted(traces.values(),
                    key=lambda s: (-s.duration_us, s.trace_id))
    lines = [f"{len(traces)} traces; slowest {min(top, len(ranked))}:"]
    lines.append(f"  {'trace':>12} {'operation':<28} {'span(ms)':>10} "
                 f"{'slices':>7}")
    for summary in ranked[:top]:
        lines.append(
            f"  {summary.trace_id:>12} {summary.label[:28]:<28} "
            f"{summary.duration_us / 1e3:>10.3f} {len(summary.slices):>7}")
    lines.append("")
    lines.append(render_trace(ranked[0]))
    return "\n".join(lines)


__all__ = ["TraceSummary", "collect_traces", "critical_path",
           "render_trace", "render_summary", "request_index"]
