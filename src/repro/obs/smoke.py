"""A self-contained traced scenario: one client read over a line topology.

Used by ``python -m repro.obs smoke``, the CI tracing smoke and the
walkthrough in EXPERIMENTS.md.  It builds manager—client—things in a
line, installs the TMP36 driver over the air, issues exactly one
networked read and returns the exported Chrome trace document — the
smallest world in which a single trace crosses the client, network,
VM and interconnect layers.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.obs.export import merge_traces
from repro.obs.report import collect_traces
from repro.obs.tracer import DEFAULT_LIMIT, install_tracer
from repro.sim.kernel import ns_from_s


def traced_read(
    hops: int = 2,
    seed: int = 7,
    *,
    limit: int = DEFAULT_LIMIT,
) -> Tuple[dict, dict]:
    """Run the scenario; returns ``(trace_document, info)``.

    ``info`` carries the read result, the trace id of the client read
    and the set of categories its slices crossed.
    """
    from repro.core.client import Client
    from repro.core.manager import Manager
    from repro.core.registry import Registry
    from repro.core.thing import Thing
    from repro.drivers.catalog import (
        TMP36_ID,
        make_peripheral_board,
        populate_registry,
    )
    from repro.net.network import Network
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    tracer = install_tracer(sim, limit=limit, label="smoke")
    network = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    Manager(sim, network, 0, registry)
    client = Client(sim, network, 1)
    network.connect(0, 1)
    things = []
    previous = 0
    for index in range(hops):
        node_id = 2 + index
        things.append(Thing(sim, network, node_id, rng=rng.fork(f"t{node_id}")))
        network.connect(previous, node_id)
        previous = node_id
    network.build_dodag(0)

    thing = things[-1]
    thing.plug(make_peripheral_board("tmp36", rng=rng.stream("periph")))
    sim.run_for(ns_from_s(8.0))
    # Keep the read's trace tree free of plug-in pipeline noise.
    tracer.clear()

    results: list = []
    client.read(thing.address, TMP36_ID, results.append)
    sim.run_for(ns_from_s(4.0))

    document = merge_traces([tracer.snapshot()])
    trace_id, layers = read_trace_layers(document)
    info = {
        "result": results[0] if results else None,
        "read_trace_id": trace_id,
        "layers": layers,
        "hops": hops,
    }
    return document, info


def read_trace_layers(document: dict) -> Tuple[Optional[int], Set[str]]:
    """Find the ``client.read`` trace; return (trace_id, slice categories)."""
    for summary in collect_traces(document).values():
        if summary.label == "client.read":
            return summary.trace_id, set(summary.by_cat_us)
    return None, set()


__all__ = ["traced_read", "read_trace_layers"]
