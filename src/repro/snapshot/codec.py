"""The checkpoint object-graph codec: pickle, extended to closures.

The kernel's event heap holds arbitrary Python callbacks — bound
methods, module functions, and (pervasively) *closures*: churn ticks
capture their Thing and RNG streams, protocol timers capture pending
request state, stream expiries capture their handles.  Stdlib pickle
refuses closures, lambdas and local functions, so a checkpoint codec
must carry them itself.

:class:`SnapshotPickler` extends :class:`pickle.Pickler` (protocol 5)
with reducers for exactly the object kinds a shard graph contains that
pickle cannot serialize by reference:

* **functions that are not importable by qualified name** (closures,
  lambdas, local defs) — serialized by value: the code object via
  :mod:`marshal`, the defaults/kwdefaults/function dict by pickling,
  and the closure cells *via the two-phase skeleton trick*: an empty
  function shell is built first (so self-referential closures and
  cycles through cells memoize correctly), then the cells are filled
  from the pickled state;
* **cells** encountered outside a function (rare, but legal);
* **modules** captured in cells — reduced to an import by name.

Function ``__globals__`` are never serialized by value: a function is
re-bound to its defining module's live namespace on load, so the code
a checkpoint resumes against is the code of the checked-out tree —
which is what makes schema migrations meaningful (state is versioned;
behaviour is not frozen into the checkpoint).

Because :mod:`marshal`'s bytecode format is interpreter-specific,
checkpoints record the Python version and refuse to load under a
different ``major.minor`` (see :mod:`repro.snapshot.checkpoint`).

Shared-object identity is preserved by pickle's memo: two references
to the same RNG stream, Thing or metrics object come back as two
references to the same restored object — without this, a restored
shard's closures would draw from different streams than its registry
and the run would silently diverge.

Like pickle, ``loads_state`` executes constructors referenced by the
stream: only load checkpoints you (or your CI) wrote.
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import sys
import types
import zlib
from typing import Any

#: Bump when the *codec envelope* changes incompatibly (the layer
#: schemas carried inside are versioned separately).
CODEC_VERSION = 1

#: Envelope magic: identifies a repro snapshot payload and its codec
#: major version before any unpickling happens.
_MAGIC = b"RSNAP\x01"


class _EmptyCell:
    """Sentinel (pickled by class reference) for an unset closure cell."""


def _module_globals(name: str) -> dict:
    return importlib.import_module(name).__dict__


def _make_skeleton(code_bytes: bytes, module: str) -> types.FunctionType:
    """Phase one of function-by-value: an empty shell, memo-safe.

    The shell carries the real code object and fresh empty cells, so a
    cycle through ``__closure__`` (e.g. a periodic tick that reschedules
    itself) resolves against the memoized shell while the cell contents
    are still being unpickled.
    """
    code = marshal.loads(code_bytes)
    closure = (tuple(types.CellType() for _ in code.co_freevars)
               or None)
    try:
        globs = _module_globals(module)
    except ImportError:
        # A checkpoint from a tree where the defining module has since
        # vanished: the function keeps working as long as it only uses
        # builtins; anything else raises NameError at call time, which
        # is the honest failure mode.
        globs = {"__builtins__": __builtins__}
    return types.FunctionType(code, globs, code.co_name, None, closure)


def _fill_function(fn: types.FunctionType, state: dict) -> types.FunctionType:
    """Phase two: populate the shell with defaults, cells and dict."""
    fn.__qualname__ = state["qualname"]
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    for cell, value in zip(fn.__closure__ or (), state["cells"]):
        if value is not _EmptyCell:
            cell.cell_contents = value
    if state["dict"]:
        fn.__dict__.update(state["dict"])
    return fn


def _make_cell(value: Any) -> types.CellType:
    return types.CellType(value)


def _make_empty_cell() -> types.CellType:
    return types.CellType()


def _importable(obj: Any) -> bool:
    """True when stdlib pickle's save-by-reference would round-trip."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if module is None or qualname is None:
        return False
    mod = sys.modules.get(module)
    if mod is None:
        return False
    target: Any = mod
    for part in qualname.split("."):
        if part == "<locals>":
            return False
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is obj


class SnapshotPickler(pickle.Pickler):
    """Pickler that additionally serializes closures, cells, modules."""

    def reducer_override(self, obj):  # noqa: C901 - a dispatch table
        if isinstance(obj, types.FunctionType):
            if _importable(obj):
                return NotImplemented  # by reference, as stdlib would
            cells = []
            for cell in obj.__closure__ or ():
                try:
                    cells.append(cell.cell_contents)
                except ValueError:  # not yet populated
                    cells.append(_EmptyCell)
            state = {
                "qualname": obj.__qualname__,
                "defaults": obj.__defaults__,
                "kwdefaults": obj.__kwdefaults__,
                "cells": cells,
                "dict": obj.__dict__ or None,
            }
            return (
                _make_skeleton,
                (marshal.dumps(obj.__code__), obj.__module__),
                state,
                None,
                None,
                _fill_function,
            )
        if isinstance(obj, types.CellType):
            try:
                return (_make_cell, (obj.cell_contents,))
            except ValueError:
                return (_make_empty_cell, ())
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        return NotImplemented


def dumps_state(obj: Any) -> bytes:
    """Serialize *obj* (a full shard graph or any sub-graph) to bytes.

    The payload is zlib-compressed behind a magic/version envelope;
    checkpoints of idle duty-cycled fleets are dominated by repetitive
    structure and compress several-fold.
    """
    buffer = io.BytesIO()
    SnapshotPickler(buffer, protocol=5).dump(obj)
    return _MAGIC + zlib.compress(buffer.getvalue(), 6)


def loads_state(blob: bytes) -> Any:
    """Inverse of :func:`dumps_state`."""
    if not blob.startswith(_MAGIC[:-1]):
        raise ValueError("not a repro snapshot payload (bad magic)")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise ValueError(
            f"snapshot codec version {blob[len(_MAGIC) - 1]} not supported "
            f"(this tree speaks {CODEC_VERSION})"
        )
    return pickle.loads(zlib.decompress(blob[len(_MAGIC):]))


__all__ = [
    "CODEC_VERSION",
    "SnapshotPickler",
    "dumps_state",
    "loads_state",
]
