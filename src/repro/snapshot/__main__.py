"""CLI for checkpoints: ``python -m repro.snapshot``.

Examples::

    python -m repro.snapshot save --scenario smoke --at 5 --dir ckpt
    python -m repro.snapshot restore ckpt --json resumed.json
    python -m repro.snapshot diff ckpt-a ckpt-b
    python -m repro.snapshot fork ckpt --variants 3 --out sweeps
    python -m repro.snapshot --smoke     # the CI gate

``save`` runs a scenario and checkpoints every shard at the chosen
instant; ``restore`` resumes a fleet checkpoint to its horizon and
prints the merged metrics digest; ``diff`` structurally compares two
checkpoints (fleet or single-shard) for bisection; ``fork`` spawns N
warm-start variants with derived seeds (every RNG stream perturbed in
place, all non-random state shared).

The smoke gate is the digest-parity check from ISSUE 6: checkpoint at
T, restore, run to T+Δ, and require merged metrics and telemetry to be
byte-identical to an uninterrupted run — at worker counts 1 and 2 —
plus migration acceptance (v1 manifest) and rejection (future format).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _scenario_from_args(args):
    from repro.fleet.scenario import SCENARIOS

    if args.scenario not in SCENARIOS:
        raise SystemExit(f"unknown scenario '{args.scenario}'")
    scenario = SCENARIOS[args.scenario]
    overrides = {}
    if args.nodes is not None:
        overrides["things"] = args.nodes
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "telemetry", False):
        from repro.telemetry.config import TelemetryConfig

        overrides["telemetry"] = TelemetryConfig(cadence_s=1.0)
    return scenario.scaled(**overrides) if overrides else scenario


def _cmd_save(args) -> int:
    from repro.fleet.runner import CheckpointPlan, run_scenario
    from repro.snapshot.checkpoint import digest_document

    scenario = _scenario_from_args(args)
    plan = CheckpointPlan(directory=args.dir, at_s=args.at,
                          every_s=args.every, label=args.label)
    result = run_scenario(scenario, workers=args.workers, checkpoint=plan)
    instants = plan.instants_s(scenario.duration_s)
    print(f"checkpointed {scenario.name} ({scenario.shard_count} shards) "
          f"at t={instants[-1]:g}s into {args.dir}/")
    print(f"run-to-completion metrics digest: "
          f"{digest_document(result.merged)[:16]}")
    return 0


def _cmd_restore(args) -> int:
    from repro.fleet.runner import resume_scenario
    from repro.snapshot.checkpoint import CheckpointError, digest_document

    try:
        result = resume_scenario(args.dir, workers=args.workers,
                                 run_to_s=args.run_to)
    except CheckpointError as exc:
        print(f"restore failed: {exc}", file=sys.stderr)
        return 1
    print(f"resumed {result.scenario.name} "
          f"({len(result.shard_snapshots)} shards)")
    print(f"merged metrics digest: {digest_document(result.merged)[:16]}")
    if args.json:
        document = {"merged": result.merged,
                    "digest": digest_document(result.merged)}
        if result.scenario.telemetry is not None:
            document["telemetry"] = result.telemetry_document()
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


def _summaries_of(path: Path):
    """(name, summary) pairs for a fleet or single-shard checkpoint."""
    from repro.snapshot.checkpoint import fleet_checkpoint_dirs, read_summary

    if (path / "summary.json").is_file():
        return [(path.name, read_summary(path))]
    return [(shard.name, read_summary(shard))
            for shard in fleet_checkpoint_dirs(path)]


def _cmd_diff(args) -> int:
    from repro.snapshot.checkpoint import CheckpointError
    from repro.snapshot.diff import diff_lines

    try:
        left = dict(_summaries_of(Path(args.a)))
        right = dict(_summaries_of(Path(args.b)))
    except CheckpointError as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    divergent = 0
    for name in sorted(set(left) | set(right)):
        if name not in left or name not in right:
            print(f"== {name}: only in "
                  f"{args.a if name in left else args.b}")
            divergent += 1
            continue
        lines = diff_lines(left[name], right[name], limit=args.limit)
        if lines == ["checkpoints are structurally identical"]:
            continue
        divergent += 1
        print(f"== {name}")
        for line in lines:
            print(f"  {line}")
    if not divergent:
        print("checkpoints are structurally identical")
    return 1 if divergent else 0


def _cmd_fork(args) -> int:
    """Spawn N warm-start variants of a checkpoint with derived seeds."""
    from repro.snapshot.checkpoint import (
        CheckpointError,
        fleet_checkpoint_dirs,
        load_fleet_meta,
        load_shard,
        save_fleet_meta,
        save_shard,
        scenario_from_dict,
    )

    try:
        meta = load_fleet_meta(args.dir)
        shard_dirs = fleet_checkpoint_dirs(args.dir)
    except CheckpointError as exc:
        print(f"fork failed: {exc}", file=sys.stderr)
        return 1
    scenario = scenario_from_dict(meta["scenario"])
    out_root = Path(args.out)
    for variant in range(args.variants):
        salt = f"{args.salt}-{variant}" if args.salt else f"variant-{variant}"
        variant_dir = out_root / f"fork-{variant:02d}"
        for shard_dir in shard_dirs:
            restored = load_shard(shard_dir)
            deployment = restored.deployment
            # Perturb reseeds every stream in place — including streams
            # already captured inside scheduled closures — so the
            # variant diverges stochastically from warm shared state.
            deployment.rng.perturb(salt)
            save_shard(deployment, variant_dir / shard_dir.name, label=salt)
        save_fleet_meta(variant_dir, scenario,
                        sim_time_ns=int(meta["sim_time_ns"]),
                        shards=int(meta["shards"]), label=salt)
        print(f"fork {variant}: {variant_dir}/ (salt '{salt}')")
    print(f"\nresume any variant: python -m repro.fleet --resume "
          f"{out_root}/fork-00")
    return 0


def _cmd_smoke(args) -> int:
    import shutil
    import tempfile

    from repro.fleet.runner import (
        CheckpointPlan,
        resume_scenario,
        run_scenario,
    )
    from repro.fleet.scenario import SCENARIOS
    from repro.snapshot.checkpoint import (
        CheckpointError,
        digest_document,
        fleet_checkpoint_dirs,
        read_manifest,
    )
    from repro.telemetry.config import TelemetryConfig

    failures = []
    scenario = SCENARIOS["smoke"].scaled(
        things=6, shard_size=3, duration_s=6.0,
        telemetry=TelemetryConfig(cadence_s=1.0),
    )
    root = Path(tempfile.mkdtemp(prefix="repro-snapshot-smoke-"))
    try:
        for workers in (1, 2):
            ckpt = root / f"ckpt-w{workers}"
            baseline = run_scenario(scenario, workers=workers)
            checkpointed = run_scenario(
                scenario, workers=workers,
                checkpoint=CheckpointPlan(directory=str(ckpt), at_s=3.0),
            )
            resumed = resume_scenario(ckpt, workers=workers)
            digests = {
                "uninterrupted": digest_document(baseline.merged),
                "checkpointing": digest_document(checkpointed.merged),
                "resumed": digest_document(resumed.merged),
            }
            telemetry = {
                "uninterrupted": digest_document(
                    baseline.telemetry_document()),
                "resumed": digest_document(resumed.telemetry_document()),
            }
            if len(set(digests.values())) == 1:
                print(f"workers={workers}: metrics parity ok "
                      f"({digests['resumed'][:16]})")
            else:
                failures.append(
                    f"workers={workers}: metrics diverge: {digests}")
            if telemetry["uninterrupted"] == telemetry["resumed"]:
                print(f"workers={workers}: telemetry parity ok")
            else:
                failures.append(
                    f"workers={workers}: telemetry diverges: {telemetry}")

        # Migration acceptance: a v1 manifest must load via the hook.
        ckpt = root / "ckpt-w1"
        shard0 = fleet_checkpoint_dirs(ckpt)[0]
        manifest_path = shard0 / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        downgraded = dict(manifest)
        downgraded["format_version"] = 1
        downgraded["time_ns"] = downgraded.pop("sim_time_ns")
        downgraded.pop("label", None)
        manifest_path.write_text(json.dumps(downgraded, indent=2))
        migrated = read_manifest(shard0)
        if migrated["format_version"] == manifest["format_version"] \
                and migrated["sim_time_ns"] == manifest["sim_time_ns"]:
            print("v1 manifest migration: ok")
        else:
            failures.append("v1 manifest did not migrate cleanly")

        # Rejection: a future format version must refuse to load.
        bumped = dict(manifest)
        bumped["format_version"] = 99
        manifest_path.write_text(json.dumps(bumped, indent=2))
        try:
            read_manifest(shard0)
            failures.append("future format version was not rejected")
        except CheckpointError:
            print("future format rejection: ok")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    if failures:
        print("\nsnapshot smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nsnapshot smoke passed")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = ["smoke" if arg == "--smoke" else arg for arg in argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro.snapshot",
        description="checkpoint, restore, diff and fork fleet shards",
    )
    sub = parser.add_subparsers(dest="command")

    save_p = sub.add_parser("save", help="run a scenario and checkpoint it")
    save_p.add_argument("--scenario", default="smoke")
    save_p.add_argument("--nodes", type=int, default=None)
    save_p.add_argument("--duration", type=float, default=None)
    save_p.add_argument("--seed", type=int, default=None)
    save_p.add_argument("--telemetry", action="store_true")
    save_p.add_argument("--workers", type=int, default=1)
    save_p.add_argument("--at", type=float, default=None,
                        help="checkpoint instant in simulated seconds "
                             "(default: midpoint)")
    save_p.add_argument("--every", type=float, default=None,
                        help="rolling checkpoint cadence (last wins)")
    save_p.add_argument("--dir", required=True,
                        help="checkpoint directory to write")
    save_p.add_argument("--label", default="")

    restore_p = sub.add_parser("restore",
                               help="resume a fleet checkpoint")
    restore_p.add_argument("dir")
    restore_p.add_argument("--workers", type=int, default=1)
    restore_p.add_argument("--run-to", type=float, default=None,
                           help="horizon override in simulated seconds")
    restore_p.add_argument("--json", default=None,
                           help="write merged metrics (and telemetry) here")

    diff_p = sub.add_parser("diff", help="structurally compare checkpoints")
    diff_p.add_argument("a")
    diff_p.add_argument("b")
    diff_p.add_argument("--limit", type=int, default=200,
                        help="max divergent paths to print per shard")

    fork_p = sub.add_parser("fork",
                            help="spawn warm-start variants with "
                                 "derived seeds")
    fork_p.add_argument("dir")
    fork_p.add_argument("--variants", type=int, default=2)
    fork_p.add_argument("--out", required=True,
                        help="directory receiving fork-NN/ variants")
    fork_p.add_argument("--salt", default="",
                        help="base salt for the derived seeds")

    sub.add_parser("smoke", help="CI gate: checkpoint/restore parity")

    args = parser.parse_args(argv)
    if args.command == "save":
        return _cmd_save(args)
    if args.command == "restore":
        return _cmd_restore(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "fork":
        return _cmd_fork(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
