"""Schema-migration hooks for old checkpoints.

Two migration planes, mirroring Simics' checkpoint machinery:

* **Manifest (format) migrations** upgrade a whole checkpoint's
  ``manifest.json`` from one on-disk format version to the next.
  Registered as ``register_manifest_migration(from_version, fn)``;
  :func:`upgrade_manifest` chains them until the manifest reaches
  :data:`repro.snapshot.checkpoint.FORMAT_VERSION`, and raises
  :class:`~repro.snapshot.checkpoint.CheckpointError` when a step is
  missing or the checkpoint is *newer* than this tree.

* **Layer (state) migrations** upgrade one Checkpointable class's state
  dict from an old ``_schema`` version.  Every ``restore_state``
  implementation routes its incoming state through
  :func:`upgrade_state`, so an old checkpoint whose ``sim`` layer was
  written at schema v1 can still restore into a tree whose Simulator
  is at v3 — provided the 1→2 and 2→3 hooks exist.

The built-in v1→v2 manifest migration documents the pattern: format v1
manifests spelled the checkpoint instant ``time_ns``; v2 renamed it to
``sim_time_ns`` and added the ``label`` field.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

ManifestMigration = Callable[[dict], dict]
StateMigration = Callable[[dict], dict]

#: from_version -> hook returning the manifest at from_version + 1.
_MANIFEST_MIGRATIONS: Dict[int, ManifestMigration] = {}

#: (class qualname, from_version) -> hook returning state at +1.
_STATE_MIGRATIONS: Dict[Tuple[str, int], StateMigration] = {}


def register_manifest_migration(
    from_version: int, fn: Optional[ManifestMigration] = None
):
    """Register (or replace) the manifest hook for *from_version*.

    Usable directly or as ``@register_manifest_migration(1)``.
    """
    if fn is None:
        def decorator(hook: ManifestMigration) -> ManifestMigration:
            _MANIFEST_MIGRATIONS[int(from_version)] = hook
            return hook
        return decorator
    _MANIFEST_MIGRATIONS[int(from_version)] = fn
    return fn


def register_state_migration(
    cls, from_version: int, fn: Optional[StateMigration] = None
):
    """Register the layer-state hook for (*cls*, *from_version*).

    *cls* may be the class itself or its qualified name, so migrations
    for classes that no longer exist can still be registered.  Usable
    directly or as ``@register_state_migration(Simulator, 1)``.
    """
    name = cls if isinstance(cls, str) else _class_key(cls)
    if fn is None:
        def decorator(hook: StateMigration) -> StateMigration:
            _STATE_MIGRATIONS[(name, int(from_version))] = hook
            return hook
        return decorator
    _STATE_MIGRATIONS[(name, int(from_version))] = fn
    return fn


def _class_key(cls) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def upgrade_manifest(manifest: dict, target_version: int) -> dict:
    """Chain manifest migrations until *target_version*; raise if stuck."""
    from repro.snapshot.checkpoint import CheckpointError

    version = int(manifest.get("format_version", 0))
    if version > target_version:
        raise CheckpointError(
            f"checkpoint format v{version} is newer than this tree "
            f"(v{target_version}); refusing to guess"
        )
    while version < target_version:
        hook = _MANIFEST_MIGRATIONS.get(version)
        if hook is None:
            raise CheckpointError(
                f"no migration from checkpoint format v{version} "
                f"(this tree reads v{target_version}; known hooks: "
                f"{sorted(_MANIFEST_MIGRATIONS) or 'none'})"
            )
        manifest = hook(dict(manifest))
        new_version = int(manifest.get("format_version", version))
        if new_version <= version:  # defensive: hooks must make progress
            raise CheckpointError(
                f"migration hook for v{version} did not advance the "
                f"format_version")
        version = new_version
    return manifest


def upgrade_state(cls, state: dict) -> dict:
    """Chain layer-state migrations up to *cls*'s current schema.

    Called by every ``restore_state``; a state already at the current
    version passes through untouched (the overwhelmingly common case).
    """
    current = int(cls.SNAPSHOT_SCHEMA["version"])
    version = int(state.get("_schema", 1))
    if version == current:
        return state
    from repro.snapshot.checkpoint import CheckpointError

    if version > current:
        raise CheckpointError(
            f"{_class_key(cls)} state schema v{version} is newer than "
            f"this tree (v{current})"
        )
    key = _class_key(cls)
    while version < current:
        hook = _STATE_MIGRATIONS.get((key, version))
        if hook is None:
            raise CheckpointError(
                f"no state migration for {key} v{version} -> v{version + 1}"
            )
        state = dict(hook(dict(state)))
        state["_schema"] = version + 1
        version += 1
    return state


@register_manifest_migration(1)
def _manifest_v1_to_v2(manifest: dict) -> dict:
    """Format v1 spelled the instant ``time_ns``; v2 uses ``sim_time_ns``
    and carries an explicit (possibly empty) ``label``."""
    if "time_ns" in manifest:
        manifest["sim_time_ns"] = manifest.pop("time_ns")
    manifest.setdefault("label", "")
    manifest["format_version"] = 2
    return manifest


# Layer migrations register by qualified name (no imports needed, and
# they keep working even if a class moves or is retired later).

@register_state_migration("repro.sim.kernel.Simulator", 1)
def _simulator_v1_to_v2(state: dict) -> dict:
    """Sim schema v2 added the attach-time ``profiler`` slot."""
    state.setdefault("profiler", None)
    return state


@register_state_migration("repro.sim.kernel.Simulator", 2)
def _simulator_v2_to_v3(state: dict) -> dict:
    """Sim schema v3 added the fast-forward tier: bulk hook slots,
    the enable flag + suppression marker, skip statistics, and the
    batch-drain name registry."""
    state.setdefault("_bulk_hooks",
                     [None] * len(state.get("_trace_hooks", ())))
    state.setdefault("_ff_enabled", False)
    state.setdefault("_ff_skip_until", 0)
    state.setdefault("ff_windows", 0)
    state.setdefault("ff_events", 0)
    state.setdefault("_batch_names", {})
    return state


@register_state_migration("repro.vm.machine.VirtualMachine", 1)
def _vm_v1_to_v2(state: dict) -> dict:
    """VM schema v2 added the optional ``_hit_recorder``."""
    state.setdefault("_hit_recorder", None)
    return state


@register_state_migration("repro.vm.machine.VirtualMachine", 2)
def _vm_v2_to_v3(state: dict) -> dict:
    """VM schema v3 allows mode == "trace" (superinstruction
    compilation); old states carry "fast"/"reference" and need no
    value changes."""
    return state


@register_state_migration("repro.profile.collector.ShardProfiler", 1)
def _profiler_v1_to_v2(state: dict) -> dict:
    """Profiler schema v2 added fast-forward window attribution."""
    state.setdefault("_ff", {})
    return state


__all__ = [
    "register_manifest_migration",
    "register_state_migration",
    "upgrade_manifest",
    "upgrade_state",
]
