"""repro.snapshot — checkpoint, restore and time-travel for fleet shards.

Serializes the *complete* simulation state of a gateway shard — kernel
event heap (with ``(time_ns, seq, event)`` ordering, tombstones and
pending callbacks), RNG streams, VM state for both engines, network
stacks, protocol reliability caches, energy meters and telemetry series
banks — into versioned on-disk checkpoints, and restores them
byte-identically: ``restore(checkpoint)`` followed by running to
``T + delta`` produces the same digests, telemetry series and chaos
verdicts as an uninterrupted run.

The subsystem has four parts:

* :mod:`repro.snapshot.codec` — a deterministic object-graph serializer
  (stdlib pickle extended with closure/cell/code reducers) that can
  carry the kernel's scheduled callbacks across a process or machine
  boundary while preserving shared-object identity;
* :mod:`repro.snapshot.state` — the :class:`Checkpointable` protocol
  (``snapshot_state()`` / ``restore_state()``), the per-layer schema
  registry behind the manifest's schema hashes, and plain-data
  structural summaries used for diffing and post-restore audits;
* :mod:`repro.snapshot.checkpoint` — the on-disk format: one directory
  per checkpoint holding ``manifest.json`` (format version, per-layer
  schema hashes, seed, sim time, shard id, payload digest),
  ``state.bin`` and ``summary.json``;
* :mod:`repro.snapshot.migrate` — schema-migration hooks that upgrade
  old checkpoints (manifest-level format migrations and per-layer state
  migrations), in the style of Simics' ``update_checkpoint`` machinery.

CLI: ``python -m repro.snapshot save|restore|diff|fork`` and the CI
gate ``python -m repro.snapshot --smoke``.
"""

from repro.snapshot.checkpoint import (
    CheckpointError,
    FORMAT_VERSION,
    RestoredShard,
    digest_document,
    fleet_checkpoint_dirs,
    load_fleet_meta,
    load_shard,
    save_fleet_meta,
    save_shard,
    scenario_from_dict,
    scenario_to_dict,
    shard_dir_name,
)
from repro.snapshot.codec import dumps_state, loads_state
from repro.snapshot.diff import diff_documents, diff_lines
from repro.snapshot.migrate import (
    register_manifest_migration,
    register_state_migration,
    upgrade_manifest,
    upgrade_state,
)
from repro.snapshot.state import (
    Checkpointable,
    layer_schemas,
    schema_hash,
    shard_summary,
)

__all__ = [
    "CheckpointError",
    "Checkpointable",
    "FORMAT_VERSION",
    "RestoredShard",
    "digest_document",
    "diff_documents",
    "diff_lines",
    "dumps_state",
    "fleet_checkpoint_dirs",
    "layer_schemas",
    "load_fleet_meta",
    "load_shard",
    "loads_state",
    "register_manifest_migration",
    "register_state_migration",
    "save_fleet_meta",
    "save_shard",
    "scenario_from_dict",
    "scenario_to_dict",
    "schema_hash",
    "shard_dir_name",
    "shard_summary",
    "upgrade_manifest",
    "upgrade_state",
]
