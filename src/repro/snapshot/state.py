"""The Checkpointable protocol, layer schema registry and summaries.

**Protocol.**  A class participates in checkpoints by implementing

* ``snapshot_state() -> dict`` — its complete restorable state, stamped
  with a ``"_schema"`` version int.  The dict may reference live
  objects (callbacks, other layers); the snapshot codec serializes the
  whole graph with shared identity intact.  Anything derivable is
  *excluded* and rebuilt on restore — e.g. the fastpath VM's
  translation tables.
* ``restore_state(state) -> None`` — applies a state dict, first
  routing it through :func:`repro.snapshot.migrate.upgrade_state` so
  old-schema states are upgraded (or cleanly rejected).

Classes alias ``__getstate__``/``__setstate__`` to these methods, so
the codec picks them up with no registry indirection, and standalone
layer round-trips (``cls.__new__(cls).restore_state(s)``) work in
tests.  Each class declares a ``SNAPSHOT_SCHEMA`` dict
(``layer``/``version``/``fields``) whose hash lands in every
checkpoint manifest — a checkpoint written before a layer's state
shape changed is detectable *before* unpickling.

**Summaries.**  :func:`shard_summary` renders a live shard deployment
into a plain-data tree (JSON-safe, deterministic): kernel heap
metadata, RNG stream digests, per-layer counters and cache shapes.
Summaries power ``python -m repro.snapshot diff`` (structural diff of
two checkpoints, for chaos bisection), the post-restore audit (a
restored shard must summarize byte-identically to the shard that was
saved), and the chaos checkpoint-roundtrip invariant.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Protocol, runtime_checkable


@runtime_checkable
class Checkpointable(Protocol):
    """Anything that can hand over and re-adopt its complete state."""

    SNAPSHOT_SCHEMA: dict

    def snapshot_state(self) -> dict:  # pragma: no cover - protocol
        ...

    def restore_state(self, state: dict) -> None:  # pragma: no cover
        ...


def schema_hash(cls) -> str:
    """Stable 16-hex digest of a Checkpointable class's declared schema."""
    schema = cls.SNAPSHOT_SCHEMA
    blob = json.dumps(
        {"layer": schema["layer"], "version": schema["version"],
         "fields": list(schema["fields"])},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _checkpointable_classes() -> List[type]:
    """Every layer class participating in checkpoints.

    Imported lazily: the layers must not depend on this module at
    import time, and this module must not drag every layer in just to
    define the protocol.
    """
    from repro.core.client import Client
    from repro.core.manager import Manager
    from repro.core.thing import Thing
    from repro.hw.power import EnergyMeter
    from repro.net.network import Network
    from repro.net.stack import NetworkStack
    from repro.profile.collector import ShardProfiler
    from repro.protocol.reliability import DuplicateCache, ReplyCache
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry
    from repro.telemetry.series import SeriesBank
    from repro.vm.machine import VirtualMachine

    return [
        Simulator, RngRegistry,                 # sim
        VirtualMachine,                         # vm
        Network, NetworkStack,                  # net
        DuplicateCache, ReplyCache,             # protocol
        EnergyMeter,                            # hw
        Client, Manager, Thing,                 # core
        SeriesBank,                             # telemetry
        ShardProfiler,                          # profile
    ]


def layer_schemas() -> Dict[str, Dict[str, dict]]:
    """Manifest view: layer -> class -> {version, schema hash}."""
    out: Dict[str, Dict[str, dict]] = {}
    for cls in _checkpointable_classes():
        schema = cls.SNAPSHOT_SCHEMA
        out.setdefault(schema["layer"], {})[cls.__name__] = {
            "version": schema["version"],
            "hash": schema_hash(cls),
        }
    return out


# --------------------------------------------------------------- summaries
def _digest(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: Heap events listed verbatim in a summary before truncating to a
#: digest-only tail (diffs stay readable; summaries stay bounded).
_EVENT_DETAIL_LIMIT = 4096


def _sim_summary(sim) -> dict:
    events = [
        [time_ns, seq, event.name, bool(event.cancelled)]
        for time_ns, seq, event in sim._queue
    ]
    by_name: Dict[str, int] = {}
    for _, _, name, cancelled in events:
        if not cancelled:
            by_name[name or "<unnamed>"] = by_name.get(name or "<unnamed>", 0) + 1
    out = {
        "now_ns": sim.now_ns,
        "seq": sim._seq,
        "tombstones": sim._tombstones,
        "pending": sim.pending_count(),
        "events_digest": _digest(events),
        "events_by_name": dict(sorted(by_name.items())),
        "events": events[:_EVENT_DETAIL_LIMIT],
    }
    if len(events) > _EVENT_DETAIL_LIMIT:
        out["events_truncated"] = len(events) - _EVENT_DETAIL_LIMIT
    return out


def _rng_summary(registry, prefix: str = "") -> Dict[str, str]:
    """Flat ``path -> state digest`` map over a registry tree."""
    out: Dict[str, str] = {}
    for name, stream in sorted(registry.streams().items()):
        out[f"{prefix}{name}"] = _digest(repr(stream.getstate()))
    for name, child in sorted(registry.children().items()):
        out.update(_rng_summary(child, prefix=f"{prefix}{name}/"))
    return out


def _endpoint_summary(endpoint) -> dict:
    """Shared shape for client/manager protocol endpoints."""
    pending = getattr(endpoint, "_pending", {})
    out = {
        "pending": sorted(repr(key) for key in pending),
        "stack": dict(vars(endpoint.stack.stats)),
        "timer_scale": getattr(endpoint, "timer_scale", 1.0),
    }
    dups = getattr(endpoint, "_dups", None)
    if dups is not None:
        out["dup_cache"] = {"len": len(dups), "digest": _digest(dups.snapshot_state())}
    return out


def _thing_summary(thing) -> dict:
    return {
        "label": thing.label,
        "pending_installs": thing.pending_installs(),
        "reply_cache_hits": thing.reply_cache_hits,
        "stack": dict(vars(thing.stack.stats)),
        "router": {
            "queue_depth": thing.router.queue_depth,
            "stats": dict(vars(thing.router.stats)),
        },
        "energy": thing.meter.snapshot(),
        "channels": {
            str(channel): f"{device_id.value:08x}"
            for channel, device_id in sorted(thing.connected_peripherals().items())
        },
    }


def shard_summary(deployment) -> dict:
    """Deterministic plain-data summary of one live shard deployment.

    A pure function of simulation state: saving it, restoring the
    checkpoint and summarizing again must produce byte-identical JSON —
    that equality is the post-restore audit, and its violation is what
    ``diff`` renders for bisection.
    """
    summary = {
        "shard": deployment.spec.index,
        "scenario": deployment.scenario.name,
        "seed": deployment.scenario.seed,
        "sim": _sim_summary(deployment.sim),
        "rng": _rng_summary(deployment.rng),
        "metrics": deployment.metrics.snapshot(),
        "net": dict(vars(deployment.network.stats)),
        "client": _endpoint_summary(deployment.client),
        "manager": _endpoint_summary(deployment.manager),
        "things": [_thing_summary(thing) for thing in deployment.things],
    }
    if deployment.telemetry is not None:
        bank = deployment.telemetry.bank
        summary["telemetry"] = {
            "series": len(bank.snapshot().get("series", [])),
            "digest": _digest(bank.snapshot()),
        }
    tracer = deployment.sim.tracer
    if tracer is not None:
        events = [event.to_dict() for event in tracer.events]
        summary["trace"] = {"events": len(events), "digest": _digest(events)}
    profiler = getattr(deployment, "profiler", None)
    if profiler is not None:
        from repro.profile.collector import deterministic_view

        # Wall-clock numbers differ between the saving and the restored
        # process, so the audit digests the deterministic plane only.
        snapshot = deterministic_view(profiler.snapshot())
        summary["profile"] = {
            "events": len(snapshot.get("events", {})),
            "digest": _digest(snapshot),
        }
    return summary


__all__ = [
    "Checkpointable",
    "layer_schemas",
    "schema_hash",
    "shard_summary",
]
