"""The on-disk checkpoint format.

One checkpoint is one directory::

    <dir>/
      manifest.json   format version, python tag, per-layer schema
                      hashes, seed, sim time, shard id, payload digest
      state.bin       the full shard graph (codec envelope, compressed)
      summary.json    plain-data structural summary (diff / audit)

A fleet checkpoint is a directory of shard checkpoints plus a
``fleet.json`` recording the scenario and the checkpoint instant, so
``python -m repro.fleet --resume`` can rebuild every shard and continue
to the original horizon (or a later one).

Loading is defensive in this order: manifest migrated to the current
:data:`FORMAT_VERSION` (or rejected as newer), python ``major.minor``
checked (:mod:`marshal` bytecode in ``state.bin`` is
interpreter-specific), payload digest verified, graph unpickled, and
finally the restored shard is re-summarized and audited against
``summary.json`` — a checkpoint that restores into a *different* state
than was saved fails loudly, not 10k simulated seconds later.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.snapshot.codec import dumps_state, loads_state
from repro.snapshot.migrate import upgrade_manifest
from repro.snapshot.state import layer_schemas, shard_summary

#: On-disk checkpoint format version.  v1 spelled the checkpoint
#: instant ``time_ns``; v2 renamed it ``sim_time_ns`` and added
#: ``label`` (a built-in migration upgrades v1 manifests).
FORMAT_VERSION = 2

_MANIFEST = "manifest.json"
_STATE = "state.bin"
_SUMMARY = "summary.json"
_FLEET_META = "fleet.json"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, validated or restored."""


def _python_tag() -> str:
    return f"{sys.version_info.major}.{sys.version_info.minor}"


def _dump_json(path: Path, document: dict) -> None:
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, default=repr) + "\n"
    )


def digest_document(document: dict) -> str:
    """Canonical digest of any JSON-able document (summaries, metrics)."""
    blob = json.dumps(document, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------- scenario codec
def scenario_to_dict(scenario) -> dict:
    """A FleetScenario as plain JSON data (inverse: scenario_from_dict)."""
    return asdict(scenario)


def scenario_from_dict(data: dict):
    """Rebuild a FleetScenario from :func:`scenario_to_dict` output."""
    from repro.fleet.scenario import ChurnProfile, FleetScenario
    from repro.protocol.reliability import RetryPolicy
    from repro.telemetry.config import TelemetryConfig

    data = dict(data)
    data["peripheral_mix"] = tuple(
        (str(name), float(weight)) for name, weight in data["peripheral_mix"]
    )
    data["churn"] = ChurnProfile(**data["churn"])
    for key in ("retry", "install_retry"):
        if data.get(key) is not None:
            data[key] = RetryPolicy(**data[key])
    if data.get("telemetry") is not None:
        data["telemetry"] = TelemetryConfig(**data["telemetry"])
    if data.get("profile") is not None:
        from repro.profile.config import ProfileConfig

        data["profile"] = ProfileConfig(**data["profile"])
    return FleetScenario(**data)


# ------------------------------------------------------------- shard save
def save_shard(
    deployment, directory, *, label: str = ""
) -> Path:
    """Checkpoint one live shard deployment into *directory*.

    Safe at any instant: mid-run, mid-campaign, or after finalize.
    The deployment keeps running unaffected — saving only reads state.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    summary = shard_summary(deployment)
    payload = dumps_state(deployment)
    manifest = {
        "format_version": FORMAT_VERSION,
        "codec_python": _python_tag(),
        "label": label,
        "scenario": scenario_to_dict(deployment.scenario),
        "seed": deployment.scenario.seed,
        "shard": deployment.spec.index,
        "sim_time_ns": deployment.sim.now_ns,
        "seq": deployment.sim._seq,
        "layer_schemas": layer_schemas(),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "summary_sha256": digest_document(summary),
    }
    (directory / _STATE).write_bytes(payload)
    _dump_json(directory / _SUMMARY, summary)
    _dump_json(directory / _MANIFEST, manifest)
    return directory


@dataclass
class RestoredShard:
    """A shard deployment brought back to life from a checkpoint."""

    deployment: object
    manifest: dict
    summary: dict

    @property
    def sim_time_ns(self) -> int:
        return int(self.manifest["sim_time_ns"])

    @property
    def shard(self) -> int:
        return int(self.manifest["shard"])


def read_manifest(directory) -> dict:
    """Load and migrate a checkpoint's manifest (no state touched)."""
    directory = Path(directory)
    path = directory / _MANIFEST
    if not path.is_file():
        raise CheckpointError(f"not a checkpoint: {directory} has no {_MANIFEST}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt manifest in {directory}: {exc}") from exc
    return upgrade_manifest(manifest, FORMAT_VERSION)


def read_summary(directory) -> dict:
    path = Path(directory) / _SUMMARY
    if not path.is_file():
        raise CheckpointError(f"checkpoint {directory} has no {_SUMMARY}")
    return json.loads(path.read_text())


def load_shard(directory, *, audit: bool = True) -> RestoredShard:
    """Restore one shard checkpoint into a live deployment.

    With ``audit`` (the default) the restored shard is re-summarized
    and compared digest-for-digest against the summary written at save
    time; a mismatch means the restore is *not* the saved state and
    raises :class:`CheckpointError` immediately.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)

    tag = manifest.get("codec_python")
    if tag != _python_tag():
        raise CheckpointError(
            f"checkpoint {directory} was written by python {tag}; this is "
            f"python {_python_tag()} and the bytecode payload is not portable"
        )

    payload = (directory / _STATE).read_bytes()
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("payload_sha256"):
        raise CheckpointError(
            f"checkpoint {directory} payload digest mismatch "
            f"(file corrupt or tampered)"
        )

    deployment = loads_state(payload)
    summary = read_summary(directory)
    if audit:
        restored = shard_summary(deployment)
        if digest_document(restored) != digest_document(summary):
            raise CheckpointError(
                f"checkpoint {directory} restored into a different state "
                f"than was saved (summary digest mismatch); run "
                f"'python -m repro.snapshot diff' against a fresh save "
                f"to localize the divergence"
            )
    return RestoredShard(deployment=deployment, manifest=manifest,
                         summary=summary)


# ------------------------------------------------------------ fleet layout
def shard_dir_name(index: int) -> str:
    return f"shard-{index:04d}"


def instant_dir_name(sim_time_ns: int) -> str:
    """Directory name for one retained checkpoint instant.

    Zero-padded so lexicographic order is chronological order — the
    rolling-retention GC and :func:`resolve_fleet_dir` both rely on a
    plain sorted listing.
    """
    return f"at-{int(sim_time_ns):015d}"


def resolve_fleet_dir(directory) -> Path:
    """The directory actually holding ``fleet.json``.

    A plain fleet checkpoint resolves to itself.  A rolling-retention
    run (``--checkpoint-keep``) nests one fleet checkpoint per retained
    instant in ``at-<ns>`` subdirectories; resolving picks the latest,
    so ``--resume`` keeps working on either layout unchanged.
    """
    directory = Path(directory)
    if (directory / _FLEET_META).is_file():
        return directory
    instants = sorted(
        child for child in directory.iterdir()
        if child.is_dir() and child.name.startswith("at-")
        and (child / _FLEET_META).is_file()
    ) if directory.is_dir() else []
    if not instants:
        raise CheckpointError(
            f"not a fleet checkpoint: {directory} has no {_FLEET_META} "
            f"and no retained at-* instants"
        )
    return instants[-1]


def save_fleet_meta(
    directory, scenario, *, sim_time_ns: int, shards: int, label: str = ""
) -> Path:
    """Write the fleet-level metadata next to the shard checkpoints."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _dump_json(directory / _FLEET_META, {
        "format_version": FORMAT_VERSION,
        "label": label,
        "scenario": scenario_to_dict(scenario),
        "sim_time_ns": int(sim_time_ns),
        "shards": int(shards),
    })
    return directory


def load_fleet_meta(directory) -> dict:
    directory = Path(directory)
    path = directory / _FLEET_META
    if not path.is_file():
        raise CheckpointError(
            f"not a fleet checkpoint: {directory} has no {_FLEET_META}"
        )
    meta = json.loads(path.read_text())
    meta = upgrade_manifest(meta, FORMAT_VERSION)
    return meta


def fleet_checkpoint_dirs(directory) -> List[Path]:
    """Shard checkpoint directories of a fleet checkpoint, index order."""
    directory = Path(directory)
    out = sorted(
        child for child in directory.iterdir()
        if child.is_dir() and child.name.startswith("shard-")
    )
    if not out:
        raise CheckpointError(f"fleet checkpoint {directory} has no shards")
    return out


__all__ = [
    "CheckpointError",
    "FORMAT_VERSION",
    "RestoredShard",
    "digest_document",
    "fleet_checkpoint_dirs",
    "instant_dir_name",
    "load_fleet_meta",
    "load_shard",
    "read_manifest",
    "read_summary",
    "resolve_fleet_dir",
    "save_fleet_meta",
    "save_shard",
    "scenario_from_dict",
    "scenario_to_dict",
    "shard_dir_name",
]
