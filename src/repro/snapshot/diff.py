"""Structural diff of two checkpoints — the bisection tool.

Works on the plain-data ``summary.json`` documents (never unpickles
state), so it can compare checkpoints across python versions and even
checkpoints whose layer schemas no longer load.  Documents are
flattened to dotted paths with the same walker the regression sentinel
uses, then compared key-by-key into ``added`` / ``removed`` /
``changed`` buckets.

The intended workflow (see EXPERIMENTS.md) is chaos bisection: run a
failing campaign with periodic checkpoints, then diff the checkpoint
just before the fault window against the same instant of a clean run —
the changed paths name the layer where the divergence started.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.telemetry.sentinel import flatten


def diff_documents(old: dict, new: dict) -> Dict[str, Dict[str, Any]]:
    """Compare two summary documents; ``{}`` when identical."""
    flat_old = flatten(old)
    flat_new = flatten(new)
    out: Dict[str, Dict[str, Any]] = {"added": {}, "removed": {}, "changed": {}}
    for key in sorted(set(flat_old) | set(flat_new)):
        if key not in flat_old:
            out["added"][key] = flat_new[key]
        elif key not in flat_new:
            out["removed"][key] = flat_old[key]
        elif flat_old[key] != flat_new[key]:
            out["changed"][key] = {"old": flat_old[key], "new": flat_new[key]}
    return out if any(out.values()) else {}


def diff_lines(old: dict, new: dict, *, limit: int = 200) -> List[str]:
    """Human-readable diff report, one line per divergent path."""
    delta = diff_documents(old, new)
    if not delta:
        return ["checkpoints are structurally identical"]
    lines: List[str] = []
    for key, value in delta["removed"].items():
        lines.append(f"- {key} = {value!r}")
    for key, value in delta["added"].items():
        lines.append(f"+ {key} = {value!r}")
    for key, change in delta["changed"].items():
        lines.append(f"~ {key}: {change['old']!r} -> {change['new']!r}")
    total = len(lines)
    if total > limit:
        lines = lines[:limit]
        lines.append(f"... {total - limit} more divergent paths")
    return lines


__all__ = ["diff_documents", "diff_lines"]
