"""Profile exports: collapsed stacks and speedscope JSON.

Collapsed-stack output is the ``frame;frame;frame weight`` line format
``flamegraph.pl`` (and most flame-graph tooling) consumes; speedscope
output is the https://speedscope.app sampled-profile schema.  Both are
built from per-shard profile snapshots so stacks keep their shard
frame: ``shard-3;workload;fleet-read 128431``.

Three weight planes are exportable:

* ``wall`` (default) — host nanoseconds per event kind: the real
  "where does the simulator spend its time" flame graph;
* ``count`` — events executed: deterministic, diffable across runs;
* ``sim`` — simulated nanoseconds attributed to the event kind that
  ended each inter-event gap: the fast-forward opportunity view.

The deterministic planes produce byte-identical exports for any worker
count (snapshots are consumed in shard-index order).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.profile.collector import layer_for

_WEIGHT_FIELDS = {"wall": "wall_ns", "count": "count", "sim": "sim_gap_ns"}
_WEIGHT_UNITS = {"wall": "nanoseconds", "count": "none",
                 "sim": "nanoseconds"}


def _stacks(snapshots: Iterable[Optional[dict]],
            weight: str) -> List[Tuple[Tuple[str, ...], int]]:
    """(frame tuple, weight) pairs in deterministic order."""
    try:
        field = _WEIGHT_FIELDS[weight]
    except KeyError:
        raise ValueError(f"unknown weight plane: {weight!r}") from None
    out: List[Tuple[Tuple[str, ...], int]] = []
    for snapshot in snapshots:
        if snapshot is None:
            continue
        shard = f"shard-{snapshot['shard']}"
        for name, record in sorted(snapshot["events"].items()):
            value = record[field]
            if value:
                out.append(((shard, layer_for(name), name), value))
        for node, record in sorted(snapshot["vm"]["nodes"].items()):
            if record["steps"] and weight == "count":
                out.append(((shard, "vm", node, "steps"), record["steps"]))
        # Fast-forwarded windows never dispatch events, so they carry no
        # wall time — expose them on the deterministic planes (count =
        # occurrences applied analytically, sim = skipped sim span) so a
        # flame graph shows what the kernel *didn't* have to step.
        for name, record in sorted(snapshot.get("fastforward", {}).items()):
            if weight == "count" and record["events"]:
                out.append(((shard, "fastforward", name), record["events"]))
            elif weight == "sim" and record["sim_span_ns"]:
                out.append(((shard, "fastforward", name),
                            record["sim_span_ns"]))
    return out


def collapsed_stacks(snapshots: Iterable[Optional[dict]],
                     *, weight: str = "wall") -> str:
    """The flamegraph.pl collapsed format: one ``a;b;c N`` line each."""
    lines = [f"{';'.join(frames)} {value}"
             for frames, value in _stacks(snapshots, weight)]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(snapshots: Iterable[Optional[dict]], *,
                        weight: str = "wall",
                        name: str = "repro.profile") -> dict:
    """A speedscope "sampled" profile over the chosen weight plane."""
    stacks = _stacks(list(snapshots), weight)
    frames: List[dict] = []
    frame_index: Dict[str, int] = {}
    samples: List[List[int]] = []
    weights: List[int] = []
    for frame_names, value in stacks:
        sample = []
        for frame in frame_names:
            index = frame_index.get(frame)
            if index is None:
                index = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            sample.append(index)
        samples.append(sample)
        weights.append(value)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": f"{name} ({weight})",
            "unit": _WEIGHT_UNITS[weight],
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.profile",
    }


def write_collapsed(path: str, snapshots: Iterable[Optional[dict]], *,
                    weight: str = "wall") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(collapsed_stacks(snapshots, weight=weight))


def write_speedscope(path: str, snapshots: Iterable[Optional[dict]], *,
                     weight: str = "wall") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(speedscope_document(snapshots, weight=weight), handle,
                  indent=1, sort_keys=True)
        handle.write("\n")


__all__ = [
    "collapsed_stacks",
    "speedscope_document",
    "write_collapsed",
    "write_speedscope",
]
