"""Command-line entry point for the cross-layer profiler.

    python -m repro.profile run --scenario default --seed 1 --out prof/
    python -m repro.profile report prof/profile.json
    python -m repro.profile diff a/profile.json b/profile.json
    python -m repro.profile smoke

``run`` profiles a fleet scenario and writes the profile document plus
flame-graph exports; ``report`` re-renders a saved document; ``diff``
compares two; ``smoke`` is the CI determinism gate (merged profile
digests must be byte-identical across worker counts, for several
seeds).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _build_document(result, scenario) -> dict:
    from repro.profile.collector import merge_profiles, profile_digest

    merged = merge_profiles(result.profile_snapshots)
    return {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "workers": result.workers,
        "merged": merged,
        "digest": profile_digest(merged),
        "shards": result.profile_snapshots,
    }


def _write_outputs(document: dict, out_dir: Path, weight: str) -> None:
    from repro.profile.export import write_collapsed, write_speedscope

    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "profile.json").write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n")
    write_collapsed(str(out_dir / "profile.collapsed"),
                    document["shards"], weight=weight)
    write_speedscope(str(out_dir / "profile.speedscope.json"),
                     document["shards"], weight=weight)


def _profiled_scenario(args):
    from repro.fleet.scenario import SCENARIOS
    from repro.profile.config import DEFAULT_PROFILE

    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"unknown scenario '{args.scenario}' "
            f"(known: {', '.join(sorted(SCENARIOS))})")
    scenario = SCENARIOS[args.scenario]
    overrides = {"profile": DEFAULT_PROFILE}
    if args.nodes is not None:
        overrides["things"] = args.nodes
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    return scenario.scaled(**overrides)


def _cmd_run(args) -> int:
    from repro.fleet.runner import run_scenario
    from repro.profile.report import render_report

    scenario = _profiled_scenario(args)
    result = run_scenario(scenario, workers=args.workers)
    document = _build_document(result, scenario)
    print(render_report(document, top=args.top))
    if args.out:
        try:
            _write_outputs(document, Path(args.out), args.weight)
        except OSError as exc:
            print(f"cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {args.out}/profile.json, profile.collapsed, "
              f"profile.speedscope.json")
    return 0


def _load_document(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read profile {path}: {exc}")


def _cmd_report(args) -> int:
    from repro.profile.report import render_report

    print(render_report(_load_document(args.path), top=args.top))
    return 0


def _cmd_diff(args) -> int:
    from repro.profile.diff import diff_profiles
    from repro.profile.report import render_diff

    diff = diff_profiles(_load_document(args.path_a),
                         _load_document(args.path_b))
    print(render_diff(diff, top=args.top))
    return 0


def _cmd_smoke(args) -> int:
    """The CI gate: worker-count determinism plus export sanity."""
    from repro.fleet.runner import run_scenario
    from repro.fleet.scenario import SCENARIOS
    from repro.profile.config import DEFAULT_PROFILE
    from repro.profile.collector import merge_profiles, profile_digest
    from repro.profile.export import collapsed_stacks, speedscope_document
    from repro.profile.report import idle_report

    base = SCENARIOS["smoke"].scaled(
        things=4, shard_size=2, duration_s=float(args.duration or 5.0),
        profile=DEFAULT_PROFILE,
    )
    seeds = [1, 2, 3][: args.seeds]
    failures = []
    for seed in seeds:
        scenario = base.scaled(seed=seed)
        digests = {}
        snapshots_by_workers = {}
        for workers in (1, 2):
            result = run_scenario(scenario, workers=workers)
            merged = merge_profiles(result.profile_snapshots)
            digests[workers] = profile_digest(merged)
            snapshots_by_workers[workers] = result.profile_snapshots
        ok = digests[1] == digests[2]
        if not ok:
            failures.append(f"seed {seed}: digest mismatch across workers "
                            f"({digests[1]} != {digests[2]})")
        # Export sanity: deterministic-plane exports must also agree.
        collapsed = {
            w: collapsed_stacks(snaps, weight="count")
            for w, snaps in snapshots_by_workers.items()
        }
        if collapsed[1] != collapsed[2]:
            failures.append(f"seed {seed}: collapsed-stack (count) exports "
                            f"differ across workers")
        doc = speedscope_document(snapshots_by_workers[1], weight="count")
        if not doc["profiles"][0]["samples"]:
            failures.append(f"seed {seed}: speedscope export has no samples")
        merged = merge_profiles(snapshots_by_workers[1])
        idle = idle_report(merged)
        print(f"seed {seed}: digest {digests[1][:16]} "
              f"{'==' if ok else '!='} {digests[2][:16]}  "
              f"idle {idle['idle_fraction']:.1%}  "
              f"skippable {idle['skippable_fraction']:.1%}")
        if args.out:
            out_dir = Path(args.out) / f"seed-{seed}"
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / "profile.json").write_text(json.dumps(
                {"scenario": scenario.name, "seed": seed,
                 "merged": merged, "digest": digests[1],
                 "shards": snapshots_by_workers[1]},
                indent=1, sort_keys=True) + "\n")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"profile smoke passed: {len(seeds)} seed(s), workers 1 == 2")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Profile fleet runs: flame graphs, opcode heat, "
                    "idle-gap analysis.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="profile one fleet scenario")
    run_p.add_argument("--scenario", default="default")
    run_p.add_argument("--nodes", type=int, default=None)
    run_p.add_argument("--shard-size", type=int, default=None)
    run_p.add_argument("--duration", type=float, default=None)
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument("--top", type=int, default=10)
    run_p.add_argument("--weight", choices=("wall", "count", "sim"),
                       default="wall",
                       help="weight plane for the flame-graph exports")
    run_p.add_argument("--out", metavar="DIR", default=None,
                       help="write profile.json + exports into DIR")
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser("report", help="render a saved profile")
    report_p.add_argument("path")
    report_p.add_argument("--top", type=int, default=10)
    report_p.set_defaults(func=_cmd_report)

    diff_p = sub.add_parser("diff", help="compare two saved profiles")
    diff_p.add_argument("path_a")
    diff_p.add_argument("path_b")
    diff_p.add_argument("--top", type=int, default=10)
    diff_p.set_defaults(func=_cmd_diff)

    smoke_p = sub.add_parser(
        "smoke", help="CI determinism gate (digests across worker counts)")
    smoke_p.add_argument("--seeds", type=int, default=3,
                         help="how many seeds to check (max 3)")
    smoke_p.add_argument("--duration", type=float, default=None)
    smoke_p.add_argument("--out", metavar="DIR", default=None,
                         help="write per-seed profile artifacts into DIR")
    smoke_p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
