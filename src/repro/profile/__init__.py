"""Deterministic cross-layer profiler for fleet runs.

Attributes host wall-clock and simulated-time cost across the layers of
a µPnP fleet simulation — kernel events, VM opcodes, protocol timers —
with the same zero-cost-when-disabled discipline as :mod:`repro.obs`
and :mod:`repro.telemetry`: a scenario without a
:class:`~repro.profile.config.ProfileConfig` leaves every hot path
untouched.

Three collectors (see :class:`~repro.profile.collector.ShardProfiler`):

* **events** — per-event-kind wall-ns / sim-ns with mergeable
  histograms, hooked into the kernel's attach-time shadow path;
* **vm** — opcode and basic-block heat over every Thing's VM, layered
  on the fastpath translation cache;
* **idle** — inter-event gap histograms plus a periodicity classifier
  that quantifies analytically skippable ("fast-forwardable") windows.

Exports: collapsed stacks (``flamegraph.pl``), speedscope JSON,
terminal reports, and profile diffs.  The deterministic plane of a
merged profile is a pure function of ``(scenario, seed)`` — byte
identical for any worker count — and survives checkpoint/restore.
"""

from repro.profile.collector import (
    ShardProfiler,
    deterministic_view,
    layer_for,
    merge_profiles,
    merged_periodic_names,
    profile_digest,
)
from repro.profile.config import DEFAULT_PROFILE, ProfileConfig
from repro.profile.diff import diff_profiles
from repro.profile.export import (
    collapsed_stacks,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.profile.report import (
    idle_report,
    render_diff,
    render_report,
)
from repro.profile.vmheat import (
    OpcodeHeatRecorder,
    basic_blocks,
    hot_blocks,
    merge_heat,
    opcode_totals,
)

__all__ = [
    "DEFAULT_PROFILE",
    "OpcodeHeatRecorder",
    "ProfileConfig",
    "ShardProfiler",
    "basic_blocks",
    "collapsed_stacks",
    "deterministic_view",
    "diff_profiles",
    "hot_blocks",
    "idle_report",
    "layer_for",
    "merge_heat",
    "merge_profiles",
    "merged_periodic_names",
    "opcode_totals",
    "profile_digest",
    "render_diff",
    "render_report",
    "speedscope_document",
    "write_collapsed",
    "write_speedscope",
]
