"""Terminal rendering of profile documents: top-N, idle, heat, diff."""

from __future__ import annotations

from typing import List, Optional

from repro.profile.collector import layer_for, merged_periodic_names
from repro.profile.vmheat import hot_blocks, opcode_totals


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def idle_report(merged: dict) -> dict:
    """The fast-forward opportunity numbers, as plain data.

    ``idle_fraction`` is the share of simulated time inside gaps at or
    above the threshold; ``skippable_fraction`` restricts that to gaps
    ended by a periodic / known-cost event — windows a fast-forward
    engine could close analytically.  ``projected_speedup`` assumes
    skippable windows cost zero host time.
    """
    idle = merged["idle"]
    sim_now = idle.get("sim_time_total_ns") or idle["sim_now_ns"]
    periodic = merged_periodic_names(merged)
    idle_ns = sum(record["idle_ns"] for record in idle["by_name"].values())
    skippable_ns = sum(
        record["idle_ns"] for name, record in idle["by_name"].items()
        if name in periodic
    )
    idle_fraction = idle_ns / sim_now if sim_now else 0.0
    skippable_fraction = skippable_ns / sim_now if sim_now else 0.0
    projected = (1.0 / (1.0 - skippable_fraction)
                 if skippable_fraction < 1.0 else float("inf"))
    return {
        "threshold_ns": idle["threshold_ns"],
        "sim_total_ns": sim_now,
        "idle_ns": idle_ns,
        "idle_fraction": idle_fraction,
        "skippable_ns": skippable_ns,
        "skippable_fraction": skippable_fraction,
        "projected_speedup": projected,
        "periodic_names": periodic,
        "windows": idle["gap_count"],
    }


def render_idle(merged: dict) -> str:
    report = idle_report(merged)
    idle = merged["idle"]
    lines = [
        "idle-gap analysis (fast-forward opportunity)",
        f"  simulated time        {_fmt_ns(report['sim_total_ns'])} "
        f"across {len(merged.get('shards') or [])} shard(s)",
        f"  idle threshold        {_fmt_ns(report['threshold_ns'])}",
        f"  idle time             {_fmt_ns(report['idle_ns'])} "
        f"({report['idle_fraction']:.1%} of sim time)",
        f"  skippable (periodic)  {_fmt_ns(report['skippable_ns'])} "
        f"({report['skippable_fraction']:.1%} of sim time)",
        f"  projected speedup     {report['projected_speedup']:.2f}x "
        f"(analytic fast-forward of skippable windows)",
        f"  periodic names        "
        f"{', '.join(report['periodic_names']) or '(none)'}",
    ]
    ranked = sorted(idle["by_name"].items(),
                    key=lambda kv: (-kv[1]["idle_ns"], kv[0]))[:8]
    if ranked:
        lines.append("  idle windows by terminating event:")
        for name, record in ranked:
            lines.append(
                f"    {name:<24} {record['windows']:>8} windows  "
                f"{_fmt_ns(record['idle_ns'])}")
    return "\n".join(lines)


def render_events(merged: dict, *, top: int = 10) -> str:
    """Top-N event kinds by host wall time."""
    rows = sorted(merged["events"].items(),
                  key=lambda kv: (-kv[1]["wall_ns"], kv[0]))[:top]
    total_wall = sum(r["wall_ns"] for r in merged["events"].values()) or 1
    lines = [
        "hottest event kinds (host wall clock)",
        f"  {'event':<24} {'layer':<9} {'count':>9} {'wall':>9} "
        f"{'mean':>9} {'share':>6}",
    ]
    for name, record in rows:
        mean = record["wall_ns"] / record["count"] if record["count"] else 0
        lines.append(
            f"  {name:<24} {layer_for(name):<9} {record['count']:>9} "
            f"{_fmt_ns(record['wall_ns']):>9} {_fmt_ns(mean):>9} "
            f"{record['wall_ns'] / total_wall:>6.1%}")
    return "\n".join(lines)


def render_vm(merged: dict, *, top: int = 8) -> str:
    """Opcode totals and hot basic blocks."""
    heat = merged["vm"]
    totals = opcode_totals(heat)
    total_steps = sum(totals.values())
    lines = [
        f"vm heat: {heat['executions']} handler executions, "
        f"{total_steps} steps retired",
    ]
    if totals:
        lines.append(f"  {'opcode':<10} {'steps':>10} {'share':>6}")
        for name, count in list(totals.items())[:top]:
            lines.append(f"  {name:<10} {count:>10} "
                         f"{count / total_steps:>6.1%}")
    blocks = hot_blocks(heat, top=5)
    if blocks:
        lines.append("  hot blocks (superinstruction candidates):")
        for block in blocks:
            ops = " ".join(block["ops"][:6])
            if len(block["ops"]) > 6:
                ops += " ..."
            lines.append(
                f"    {block['image']}+{block['offset']:<4} "
                f"x{block['count']:<8} {ops}")
    return "\n".join(lines)


def render_report(document: dict, *, top: int = 10) -> str:
    """Full terminal report for a profile document (CLI ``report``)."""
    merged = document.get("merged", document)
    sections: List[str] = []
    header = []
    if document.get("scenario"):
        header.append(f"profile: scenario={document['scenario']} "
                      f"seed={document.get('seed')}")
    if document.get("digest"):
        header.append(f"digest:  {document['digest']}")
    if header:
        sections.append("\n".join(header))
    if merged.get("events"):
        sections.append(render_events(merged, top=top))
    if merged.get("vm", {}).get("images"):
        sections.append(render_vm(merged))
    if merged.get("idle"):
        sections.append(render_idle(merged))
    return "\n\n".join(sections)


def render_diff(diff: dict, *, top: int = 10) -> str:
    """Human-readable profile diff (see :mod:`repro.profile.diff`)."""
    lines = [f"profile diff: {diff['label_a']} -> {diff['label_b']}"]
    movers = diff["events"][:top]
    if movers:
        lines.append(f"  {'event':<24} {'count':>14} {'wall':>16}")
        for row in movers:
            lines.append(
                f"  {row['name']:<24} "
                f"{row['count_a']:>6} -> {row['count_b']:<6} "
                f"{_fmt_ns(row['wall_ns_a']):>7} -> "
                f"{_fmt_ns(row['wall_ns_b']):<8}")
    ops = diff["opcodes"][:top]
    if ops:
        lines.append(f"  {'opcode':<10} {'steps':>18}")
        for row in ops:
            lines.append(f"  {row['name']:<10} "
                         f"{row['steps_a']:>8} -> {row['steps_b']:<8}")
    idle = diff.get("idle")
    if idle:
        lines.append(
            f"  idle fraction      {idle['idle_fraction_a']:.1%} -> "
            f"{idle['idle_fraction_b']:.1%}")
        lines.append(
            f"  skippable fraction {idle['skippable_fraction_a']:.1%} -> "
            f"{idle['skippable_fraction_b']:.1%}")
    if not (movers or ops):
        lines.append("  (no differences on the compared planes)")
    return "\n".join(lines)


__all__ = ["idle_report", "render_diff", "render_events", "render_idle",
           "render_report", "render_vm"]
