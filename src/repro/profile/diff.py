"""Profile diffing: what moved between two runs.

Diffs compare the deterministic plane (event counts, opcode steps,
idle fractions) plus wall time — wall numbers are shown but never
decide ordering alone, so a diff between two runs of the same
(scenario, seed) on the deterministic planes is empty regardless of
host noise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.profile.report import idle_report
from repro.profile.vmheat import opcode_totals


def _merged(document: dict) -> dict:
    """Accept either a full profile document or a bare merged doc."""
    return document.get("merged", document)


def _label(document: dict, fallback: str) -> str:
    scenario = document.get("scenario")
    if scenario:
        seed = document.get("seed")
        return f"{scenario}/seed={seed}" if seed is not None else scenario
    return fallback


def diff_profiles(document_a: dict, document_b: dict, *,
                  label_a: str = "a", label_b: str = "b") -> dict:
    """Structured diff consumed by :func:`repro.profile.report.render_diff`.

    Event rows are ranked by absolute count movement (then wall
    movement, then name); rows identical on both planes are dropped.
    """
    merged_a, merged_b = _merged(document_a), _merged(document_b)
    events_a: Dict[str, dict] = merged_a.get("events", {})
    events_b: Dict[str, dict] = merged_b.get("events", {})
    rows: List[dict] = []
    for name in sorted(set(events_a) | set(events_b)):
        rec_a = events_a.get(name, {"count": 0, "wall_ns": 0})
        rec_b = events_b.get(name, {"count": 0, "wall_ns": 0})
        if rec_a["count"] == rec_b["count"] and \
                rec_a["wall_ns"] == rec_b["wall_ns"]:
            continue
        rows.append({
            "name": name,
            "count_a": rec_a["count"], "count_b": rec_b["count"],
            "wall_ns_a": rec_a["wall_ns"], "wall_ns_b": rec_b["wall_ns"],
        })
    rows.sort(key=lambda r: (-abs(r["count_b"] - r["count_a"]),
                             -abs(r["wall_ns_b"] - r["wall_ns_a"]),
                             r["name"]))

    ops_a = opcode_totals(merged_a.get("vm", {"images": {}}))
    ops_b = opcode_totals(merged_b.get("vm", {"images": {}}))
    op_rows: List[dict] = []
    for name in sorted(set(ops_a) | set(ops_b)):
        steps_a, steps_b = ops_a.get(name, 0), ops_b.get(name, 0)
        if steps_a == steps_b:
            continue
        op_rows.append({"name": name, "steps_a": steps_a,
                        "steps_b": steps_b})
    op_rows.sort(key=lambda r: (-abs(r["steps_b"] - r["steps_a"]),
                                r["name"]))

    idle = None
    if merged_a.get("idle") and merged_b.get("idle"):
        report_a, report_b = idle_report(merged_a), idle_report(merged_b)
        idle = {
            "idle_fraction_a": report_a["idle_fraction"],
            "idle_fraction_b": report_b["idle_fraction"],
            "skippable_fraction_a": report_a["skippable_fraction"],
            "skippable_fraction_b": report_b["skippable_fraction"],
        }

    return {
        "label_a": _label(document_a, label_a),
        "label_b": _label(document_b, label_b),
        "events": rows,
        "opcodes": op_rows,
        "idle": idle,
    }


__all__ = ["diff_profiles"]
