"""The shard profiler: cross-layer cost attribution for one shard.

One :class:`ShardProfiler` serves one
:class:`~repro.fleet.deployment.ShardDeployment`.  It attaches to the
kernel through :meth:`Simulator.attach_profiler` — the same
attach-time method-shadowing scheme as ``attach_tracer``, so a
simulator without a profiler keeps running the branch-free original
``step``/``schedule_at`` and disabled-mode overhead is exactly zero —
and to every Thing's VM through an
:class:`~repro.profile.vmheat.OpcodeHeatRecorder`.

Collected data lives on two planes:

* the **deterministic plane** — event counts, simulated-time gaps,
  schedule-delay signatures, opcode hit arrays, idle-gap histograms —
  is a pure function of ``(scenario, seed)``; merged documents are
  byte-identical across worker counts and the profile digest is
  computed over this plane only;
* the **wall plane** — per-event-kind host nanoseconds and their
  histograms — describes *this* execution and is excluded from the
  digest (two perfectly deterministic runs never share wall clocks).

Profilers are Checkpointable: state survives checkpoint/restore, so a
resumed run's deterministic plane is byte-identical to the
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.profile.config import ProfileConfig
from repro.profile.vmheat import OpcodeHeatRecorder, merge_heat
from repro.sim.stats import Histogram

#: Wall-cost histogram bounds: 100 ns .. 1 s, 8 buckets per decade.
WALL_HIST_ARGS = (100.0, 1e9, 8)
#: Inter-event gap histogram bounds: 1 µs .. 100 s, 4 buckets per decade.
GAP_HIST_ARGS = (1e3, 1e11, 4)
#: Distinct schedule delays kept per name before declaring it aperiodic.
_MAX_DELAYS = 9

#: Event-name prefix -> layer, for flame-graph grouping.  Checked in
#: order; the first match wins, default ``kernel``.
_LAYER_PREFIXES = (
    ("fleet-", "workload"),
    ("chaos-", "workload"),
    ("telemetry-", "telemetry"),
    ("router-", "vm"),
    ("driver-", "vm"),
    ("stack-", "net"),
    ("net-", "net"),
    ("group-", "net"),
    ("uart", "hw"),
    ("i2c", "hw"),
    ("spi", "hw"),
    ("flash-", "hw"),
    ("identification", "hw"),
)
_PROTOCOL_MARKERS = ("retransmit", "timeout", "retry", "expire", "lookup",
                     "discover", "stream", "request")


def layer_for(name: str) -> str:
    """Map an event name onto its owning layer (for stack grouping)."""
    for prefix, layer in _LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    for marker in _PROTOCOL_MARKERS:
        if marker in name:
            return "protocol"
    return "kernel"


class ShardProfiler:
    """Attach event/VM/idle collectors to one shard deployment."""

    #: Checkpoint contract (see :mod:`repro.snapshot.state`).
    SNAPSHOT_SCHEMA = {
        "layer": "profile",
        "version": 2,
        "fields": ("deployment", "config", "shard", "_events", "_delays",
                   "_idle_by_name", "_gap_hist", "_gap_count",
                   "_gap_total_ns", "_last_event_ns", "_recorders", "_ff"),
    }

    def __init__(self, deployment, config: ProfileConfig) -> None:
        self.deployment = deployment
        self.config = config
        self.shard = deployment.spec.index
        #: name -> [count, sim_gap_ns, wall_ns, wall Histogram].
        self._events: Dict[str, list] = {}
        #: name -> distinct schedule delays (ns), capped at _MAX_DELAYS.
        self._delays: Dict[str, List[int]] = {}
        #: name -> [idle windows ended, idle ns ended] (gap >= threshold).
        self._idle_by_name: Dict[str, list] = {}
        self._gap_hist = Histogram(*GAP_HIST_ARGS)
        self._gap_count = 0
        self._gap_total_ns = 0
        #: Sim time of the last executed event.  Gaps are measured from
        #: here rather than from the kernel clock: ``run_until`` clamps
        #: the clock at checkpoint instants, and measuring from the
        #: clock would split the spanning gap in two — breaking the
        #: "idle report identical across checkpoint/restore" contract.
        self._last_event_ns = 0
        #: name -> [windows, events, sim span ns] applied analytically
        #: by the kernel's fast-forward tier (deterministic plane).
        self._ff: Dict[str, list] = {}
        #: (node label, OpcodeHeatRecorder) per Thing, attach order.
        self._recorders: List[tuple] = []
        deployment.sim.attach_profiler(self)
        if config.vm:
            for thing in deployment.things:
                recorder = OpcodeHeatRecorder()
                thing.drivers.vm.attach_hit_recorder(recorder)
                self._recorders.append((thing.label, recorder))

    # ------------------------------------------------------------ kernel hook
    def on_event(self, name: str, prev_ns: int, time_ns: int,
                 wall_ns: int) -> None:
        """One kernel event just ran (called from the profiled step).

        *prev_ns* (the kernel clock before the event) is ignored for
        gap purposes — see ``_last_event_ns``.
        """
        key = name or "<unnamed>"
        gap = time_ns - self._last_event_ns
        self._last_event_ns = time_ns
        if self.config.events:
            record = self._events.get(key)
            if record is None:
                record = self._events[key] = [
                    0, 0, 0, Histogram(*WALL_HIST_ARGS)]
            record[0] += 1
            record[1] += gap
            record[2] += wall_ns
            record[3].observe(wall_ns)
        if self.config.idle and gap > 0:
            self._gap_hist.observe(gap)
            self._gap_count += 1
            self._gap_total_ns += gap
            if gap >= self.config.idle_threshold_ns:
                idle = self._idle_by_name.get(key)
                if idle is None:
                    idle = self._idle_by_name[key] = [0, 0]
                idle[0] += 1
                idle[1] += gap

    def on_fast_forward(self, name: str, count: int, first_ns: int,
                        last_ns: int) -> None:
        """A fast-forward window applied *count* occurrences of *name*
        analytically (never individually dispatched).

        The skipped span advances ``_last_event_ns`` so the next
        stepped event is charged only the genuine gap after the window
        — the sampler-to-sampler micro-gaps that stepping would have
        recorded are accounted here instead, under their own layer.
        """
        key = name or "<unnamed>"
        record = self._ff.get(key)
        if record is None:
            record = self._ff[key] = [0, 0, 0]
        record[0] += 1
        record[1] += count
        record[2] += last_ns - first_ns
        if last_ns > self._last_event_ns:
            self._last_event_ns = last_ns

    def on_schedule(self, name: str, delay_ns: int) -> None:
        """An event was scheduled *delay_ns* into the future."""
        delays = self._delays.get(name)
        if delays is None:
            self._delays[name] = [delay_ns]
        elif delay_ns not in delays and len(delays) < _MAX_DELAYS:
            delays.append(delay_ns)

    # --------------------------------------------------------------- control
    def detach(self) -> None:
        """Detach every collector (the profile data stays readable)."""
        self.deployment.sim.detach_profiler()
        if self.config.vm:
            for thing in self.deployment.things:
                thing.drivers.vm.detach_hit_recorder()

    # --------------------------------------------------------------- exports
    def periodic_names(self) -> List[str]:
        """Names classified as periodic / known-cost (deterministic)."""
        return _classify_periodic(
            {name: record[0] for name, record in self._events.items()},
            self._delays, self.config,
        )

    def snapshot(self) -> dict:
        """Pickle/JSON-safe view; rides the metrics snapshot across the
        process boundary from fleet workers."""
        events = {
            name: {
                "count": record[0],
                "sim_gap_ns": record[1],
                "wall_ns": record[2],
                "wall_hist": record[3].to_json(),
            }
            for name, record in sorted(self._events.items())
        }
        delays = {
            name: {"delays": sorted(values),
                   "overflow": len(values) >= _MAX_DELAYS}
            for name, values in sorted(self._delays.items())
        }
        idle = {
            "threshold_ns": self.config.idle_threshold_ns,
            "gap_count": self._gap_count,
            "gap_total_ns": self._gap_total_ns,
            "sim_now_ns": self.deployment.sim.now_ns,
            "gap_hist": self._gap_hist.to_json(),
            "by_name": {
                name: {"windows": record[0], "idle_ns": record[1]}
                for name, record in sorted(self._idle_by_name.items())
            },
        }
        vm = {
            "executions": sum(r.executions for _, r in self._recorders),
            "images": merge_heat(r.snapshot() for _, r in self._recorders)
            ["images"],
            "nodes": {
                label: {"executions": recorder.executions,
                        "steps": recorder.total_steps}
                for label, recorder in self._recorders
            },
        }
        fastforward = {
            name: {"windows": record[0], "events": record[1],
                   "sim_span_ns": record[2]}
            for name, record in sorted(self._ff.items())
        }
        return {
            "shard": self.shard,
            "config": _config_dict(self.config),
            "events": events,
            "schedule_delays": delays,
            "idle": idle,
            "vm": vm,
            "fastforward": fastforward,
        }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state


def _config_dict(config: ProfileConfig) -> dict:
    from dataclasses import asdict

    return asdict(config)


def _classify_periodic(counts: Dict[str, int], delays: Dict[str, dict],
                       config: ProfileConfig) -> List[str]:
    """Names whose firings and delay signatures look periodic."""
    out = []
    for name, count in counts.items():
        if count < config.periodic_min_count:
            continue
        signature = delays.get(name)
        if signature is None:
            continue
        values = signature["delays"] if isinstance(signature, dict) \
            else signature
        overflow = signature.get("overflow", False) \
            if isinstance(signature, dict) else len(values) >= _MAX_DELAYS
        if overflow or len(values) > config.periodic_max_delays:
            continue
        out.append(name)
    return sorted(out)


# ----------------------------------------------------------------- merging
def merge_profiles(snapshots) -> dict:
    """Fold per-shard profile snapshots into one fleet document.

    Snapshots are folded in iteration (= shard-index) order; every
    aggregate is associative-commutative (sums, histogram adds, sorted
    unions), so the merged document is a pure function of
    ``(scenario, seed)`` — identical for any worker count.  ``None``
    entries (shards that did not profile) are skipped.
    """
    shards: List[int] = []
    config: Optional[dict] = None
    events: Dict[str, dict] = {}
    delays: Dict[str, dict] = {}
    idle_by_name: Dict[str, dict] = {}
    gap_hist: Optional[Histogram] = None
    idle = {"threshold_ns": 0, "gap_count": 0, "gap_total_ns": 0,
            "sim_now_ns": 0, "sim_time_total_ns": 0}
    heat_parts: List[dict] = []
    nodes: Dict[str, dict] = {}
    executions = 0
    fastforward: Dict[str, dict] = {}
    for snap in snapshots:
        if snap is None:
            continue
        shards.append(snap["shard"])
        if config is None:
            config = snap.get("config")
        for name, record in snap["events"].items():
            merged = events.get(name)
            if merged is None:
                events[name] = {
                    "count": record["count"],
                    "sim_gap_ns": record["sim_gap_ns"],
                    "wall_ns": record["wall_ns"],
                    "wall_hist": Histogram.from_json(record["wall_hist"]),
                }
            else:
                merged["count"] += record["count"]
                merged["sim_gap_ns"] += record["sim_gap_ns"]
                merged["wall_ns"] += record["wall_ns"]
                merged["wall_hist"] = merged["wall_hist"].merge(
                    Histogram.from_json(record["wall_hist"]))
        for name, signature in snap["schedule_delays"].items():
            merged = delays.get(name)
            if merged is None:
                delays[name] = {"delays": list(signature["delays"]),
                                "overflow": signature["overflow"]}
            else:
                union = sorted(set(merged["delays"])
                               | set(signature["delays"]))
                merged["overflow"] = (merged["overflow"]
                                      or signature["overflow"]
                                      or len(union) >= _MAX_DELAYS)
                merged["delays"] = union[:_MAX_DELAYS]
        snap_idle = snap["idle"]
        idle["threshold_ns"] = snap_idle["threshold_ns"]
        idle["gap_count"] += snap_idle["gap_count"]
        idle["gap_total_ns"] += snap_idle["gap_total_ns"]
        idle["sim_now_ns"] = max(idle["sim_now_ns"],
                                 snap_idle["sim_now_ns"])
        idle["sim_time_total_ns"] += snap_idle["sim_now_ns"]
        shard_hist = Histogram.from_json(snap_idle["gap_hist"])
        gap_hist = shard_hist if gap_hist is None \
            else gap_hist.merge(shard_hist)
        for name, record in snap_idle["by_name"].items():
            merged = idle_by_name.get(name)
            if merged is None:
                idle_by_name[name] = dict(record)
            else:
                merged["windows"] += record["windows"]
                merged["idle_ns"] += record["idle_ns"]
        for name, record in snap.get("fastforward", {}).items():
            merged = fastforward.get(name)
            if merged is None:
                fastforward[name] = dict(record)
            else:
                merged["windows"] += record["windows"]
                merged["events"] += record["events"]
                merged["sim_span_ns"] += record["sim_span_ns"]
        snap_vm = snap["vm"]
        executions += snap_vm["executions"]
        heat_parts.append({"executions": 0, "images": snap_vm["images"]})
        nodes.update(snap_vm["nodes"])
    if gap_hist is None:
        gap_hist = Histogram(*GAP_HIST_ARGS)
    idle["gap_hist"] = gap_hist.to_json()
    idle["by_name"] = {name: idle_by_name[name]
                       for name in sorted(idle_by_name)}
    merged_events = {
        name: {
            "count": record["count"],
            "sim_gap_ns": record["sim_gap_ns"],
            "wall_ns": record["wall_ns"],
            "wall_hist": record["wall_hist"].to_json(),
        }
        for name, record in sorted(events.items())
    }
    return {
        "shards": sorted(shards),
        "config": config,
        "events": merged_events,
        "schedule_delays": {name: delays[name] for name in sorted(delays)},
        "idle": idle,
        "vm": {
            "executions": executions,
            "images": merge_heat(heat_parts)["images"],
            "nodes": {label: nodes[label] for label in sorted(nodes)},
        },
        "fastforward": {name: fastforward[name]
                        for name in sorted(fastforward)},
    }


#: Keys carrying host wall-clock data; stripped from the digest plane.
_WALL_KEYS = ("wall_ns", "wall_hist")


def deterministic_view(document):
    """*document* with every wall-plane leaf removed, recursively."""
    if isinstance(document, dict):
        return {
            key: deterministic_view(value)
            for key, value in document.items() if key not in _WALL_KEYS
        }
    if isinstance(document, list):
        return [deterministic_view(item) for item in document]
    return document


def profile_digest(merged: dict) -> str:
    """Canonical digest of a merged profile's deterministic plane."""
    blob = json.dumps(deterministic_view(merged), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def merged_periodic_names(merged: dict) -> List[str]:
    """Periodic / known-cost classification over a merged document."""
    config = ProfileConfig(**(merged.get("config") or {}))
    counts = {name: record["count"]
              for name, record in merged["events"].items()}
    return _classify_periodic(counts, merged["schedule_delays"], config)


def install_profiler(deployment, config: ProfileConfig) -> ShardProfiler:
    """Create and attach a profiler for *deployment*."""
    return ShardProfiler(deployment, config)


__all__ = [
    "ShardProfiler",
    "deterministic_view",
    "install_profiler",
    "layer_for",
    "merge_profiles",
    "merged_periodic_names",
    "profile_digest",
    "GAP_HIST_ARGS",
    "WALL_HIST_ARGS",
]
