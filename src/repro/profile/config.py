"""Profiler configuration: a frozen dataclass of primitives.

Lives in its own module so :mod:`repro.fleet.scenario` can embed a
config in pickle-safe :class:`FleetScenario` values without importing
the collectors (and their transitive deps) at scenario-build time —
the same arrangement as :mod:`repro.telemetry.config`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProfileConfig:
    """What a fleet run's profiler collects.

    The config is inert data: a scenario carrying one costs nothing
    until a :class:`~repro.fleet.deployment.ShardDeployment` attaches a
    :class:`~repro.profile.collector.ShardProfiler` for it.  A scenario
    without one (the default) leaves the kernel and VM hot paths
    completely untouched — disabled-mode overhead is attach-time zero,
    exactly like :mod:`repro.obs.tracer` and :mod:`repro.telemetry`.
    """

    #: Record per-event-kind wall-clock and simulated-time cost.
    events: bool = True
    #: Record per-opcode execution heat on every Thing's VM.
    vm: bool = True
    #: Histogram inter-event gaps and classify fast-forward windows.
    idle: bool = True
    #: Gaps at or above this are counted as idle windows (default 1 ms
    #: of simulated time — far above back-to-back protocol activity,
    #: far below duty-cycle sleep).
    idle_threshold_ns: int = 1_000_000
    #: A schedule name with at most this many distinct delays (and at
    #: least :attr:`periodic_min_count` firings) classifies as periodic.
    periodic_max_delays: int = 4
    #: Minimum firings before a name can classify as periodic.
    periodic_min_count: int = 4

    def __post_init__(self) -> None:
        if self.idle_threshold_ns <= 0:
            raise ValueError("idle_threshold_ns must be positive")
        if self.periodic_max_delays < 1:
            raise ValueError("periodic_max_delays must be >= 1")
        if self.periodic_min_count < 1:
            raise ValueError("periodic_min_count must be >= 1")
        if not (self.events or self.vm or self.idle):
            raise ValueError("at least one collector must be enabled")


#: Default config used by CLIs when profiling is switched on.
DEFAULT_PROFILE = ProfileConfig()

__all__ = ["ProfileConfig", "DEFAULT_PROFILE"]
