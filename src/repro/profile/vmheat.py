"""VM opcode / basic-block heat: the profiler's third collector.

An :class:`OpcodeHeatRecorder` accumulates a per-byte-offset hit array
for every driver image a VM executes, keyed by ``sha1(code)`` so
reinstalls and hot-updates of the same image share one array.  Hits are
purely a function of the simulated workload — the recorder stores no
wall-clock data — so recorded heat merges deterministically across
shards and worker counts.

Two recording paths share one counting semantics (a hit is charged at
the pc *after* the step-limit check, before dispatch — trap entries
included):

* ``execute_fast_counting`` is a counting copy of
  :func:`repro.vm.fastpath.execute_fast`; attaching a recorder to a
  fast-mode VM swaps it in, so unprofiled VMs keep the branch-free
  original loop.
* the reference interpreter in :mod:`repro.vm.machine` checks for a
  recorder once per ``execute`` and increments per step, which is what
  lets the differential suite assert fastpath hit counts equal
  reference hit counts.

Offline analysis (:func:`opcode_totals`, :func:`basic_blocks`,
:func:`hot_blocks`) decodes the stored code bytes against the hit
arrays to rank hot opcodes and hot straight-line sequences — the direct
input for the superinstruction item on the roadmap.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl.bytecode import Op, operand_size
from repro.dsl.types import wrap32
from repro.vm.machine import ExecutionResult, ReturnValue, VmTrap

_OP_BY_VALUE = dict(Op._value2member_map_)
_OP_SIZE: Dict[int, int] = {op.value: operand_size(op) for op in Op}

#: Opcodes that end a straight-line run of instructions.
_CONTROL_OPS = frozenset((
    Op.JMP, Op.JMPS, Op.JZ, Op.JNZ, Op.JZS, Op.JNZS, Op.RET,
))
_BRANCH_OPS = frozenset((Op.JMP, Op.JMPS, Op.JZ, Op.JNZ, Op.JZS, Op.JNZS))


class OpcodeHeatRecorder:
    """Per-image hit arrays for one VM, mergeable by image digest."""

    def __init__(self) -> None:
        #: sha1(code) hex -> [code bytes, per-offset hit list].
        self.images: Dict[str, list] = {}
        #: Handler invocations recorded (both engines, traps included).
        self.executions = 0
        #: id(image) -> (image, hits); identity-guarded fast map, purely
        #: derived — dropped from pickles and rebuilt lazily.
        self._by_id: Dict[int, tuple] = {}

    def hits_for(self, image) -> List[int]:
        """The hit array for *image*, creating/aliasing by code digest."""
        cached = self._by_id.get(id(image))
        if cached is not None and cached[0] is image:
            return cached[1]
        digest = hashlib.sha1(image.code).hexdigest()
        entry = self.images.get(digest)
        if entry is None:
            entry = self.images[digest] = [bytes(image.code),
                                           [0] * len(image.code)]
        hits = entry[1]
        self._by_id[id(image)] = (image, hits)
        return hits

    @property
    def total_steps(self) -> int:
        return sum(sum(entry[1]) for entry in self.images.values())

    def snapshot(self) -> dict:
        """JSON/pickle-safe view (code as hex, deterministic order)."""
        return {
            "executions": self.executions,
            "images": {
                digest: {"code": entry[0].hex(), "hits": list(entry[1])}
                for digest, entry in sorted(self.images.items())
            },
        }

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_by_id", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._by_id = {}


def merge_heat(snapshots) -> dict:
    """Fold recorder snapshots (shard order) into one heat document."""
    executions = 0
    images: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        executions += snap.get("executions", 0)
        for digest, entry in snap.get("images", {}).items():
            merged = images.get(digest)
            if merged is None:
                images[digest] = {"code": entry["code"],
                                  "hits": list(entry["hits"])}
            else:
                hits = merged["hits"]
                for index, count in enumerate(entry["hits"]):
                    hits[index] += count
    return {"executions": executions,
            "images": {d: images[d] for d in sorted(images)}}


# -------------------------------------------------------------- analysis
def opcode_totals(heat: dict) -> Dict[str, int]:
    """Executed-step counts per opcode name across all images."""
    totals: Dict[str, int] = {}
    for entry in heat.get("images", {}).values():
        code = bytes.fromhex(entry["code"])
        for offset, count in enumerate(entry["hits"]):
            if not count:
                continue
            op = _OP_BY_VALUE.get(code[offset])
            name = op.name if op is not None else f"INVALID_{code[offset]:02x}"
            totals[name] = totals.get(name, 0) + count
    return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))


def basic_blocks(code: bytes, hits: Sequence[int],
                 leaders: Sequence[int] = ()) -> List[dict]:
    """Straight-line blocks of *code*, annotated with execution counts.

    Leaders are branch targets, post-control offsets and any caller-
    supplied entry offsets (handler entry points).  A block's count is
    the minimum hit count over its decoded instructions, which stays
    exact when the block executes as a unit and conservative when a
    jump lands mid-block.
    """
    n = len(code)
    leader_set = {offset for offset in leaders if 0 <= offset < n}
    leader_set.add(0)
    # Linear decode to find control transfers and their targets.
    pos = 0
    while pos < n:
        op = _OP_BY_VALUE.get(code[pos])
        if op is None:
            pos += 1
            continue
        width = _OP_SIZE[op.value]
        nxt = pos + 1 + width
        if nxt > n:
            break
        if op in _BRANCH_OPS:
            operand_width = nxt - pos - 1
            displacement = int.from_bytes(code[pos + 1:nxt], "little",
                                          signed=True)
            target = pos + 1 + operand_width + displacement
            if 0 <= target < n:
                leader_set.add(target)
            if nxt < n:
                leader_set.add(nxt)
        elif op is Op.RET and nxt < n:
            leader_set.add(nxt)
        pos = nxt
    ordered = sorted(leader_set)
    blocks: List[dict] = []
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else n
        ops: List[str] = []
        count: Optional[int] = None
        pos = start
        while pos < end:
            op = _OP_BY_VALUE.get(code[pos])
            if op is None:
                break
            ops.append(op.name)
            hit = hits[pos] if pos < len(hits) else 0
            count = hit if count is None else min(count, hit)
            pos += 1 + _OP_SIZE[op.value]
            if op in _CONTROL_OPS:
                break
        if ops:
            blocks.append({"offset": start, "ops": ops,
                           "count": count or 0})
    return blocks


def hot_blocks(heat: dict, *, top: int = 10) -> List[dict]:
    """The hottest decoded sequences fleet-wide, ranked by steps
    retired (``count * len(ops)``) — superinstruction candidates."""
    ranked: List[dict] = []
    for digest, entry in heat.get("images", {}).items():
        code = bytes.fromhex(entry["code"])
        for block in basic_blocks(code, entry["hits"]):
            if block["count"]:
                block = dict(block, image=digest[:12],
                             steps=block["count"] * len(block["ops"]))
                ranked.append(block)
    ranked.sort(key=lambda b: (-b["steps"], b["image"], b["offset"]))
    return ranked[:top]


# -------------------------------------------------- counting fast engine
def execute_fast_counting(
    vm, instance, handler, args: Sequence[int], signal_sink, return_sink,
) -> ExecutionResult:
    """:func:`repro.vm.fastpath.execute_fast` plus per-pc hit counting.

    A verbatim copy of the threaded-dispatch loop with one extra array
    increment per step; swapped in by
    :meth:`VirtualMachine.attach_hit_recorder` so only profiled VMs pay
    for it.  Counting semantics must match the reference interpreter's
    exactly — the differential suite compares hit arrays across engines.
    """
    from repro.vm.fastpath import shared_translation

    image = instance.image
    cached = vm._translations.get(id(image))
    if cached is not None and cached[0] is image:
        translation = cached[1]
    else:
        translation = shared_translation(image, vm._profile)
        vm._translations[id(image)] = (image, translation)

    recorder = vm._hit_recorder
    recorder.executions += 1
    hits = recorder.hits_for(image)

    table = translation.table
    n = translation.n
    g = instance.globals
    params = [wrap32(int(a)) for a in args]
    nparams = len(params)
    stack: List[int] = []
    stack_limit = vm._stack_limit
    step_limit = vm._step_limit
    pc = handler.offset
    cycles = 0
    steps = 0

    while True:
        if pc < 0 or pc >= n:
            raise VmTrap(f"pc {pc} ran off the end of code")
        steps += 1
        if steps > step_limit:
            raise VmTrap("step limit exceeded (runaway handler)")
        hits[pc] += 1
        e = table[pc]
        k = e[0]
        cycles += e[1]
        if k == 0:  # PUSH const
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(e[2])
            pc = e[3]
        elif k == 1:  # LDG
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]])
            pc = e[3]
        elif k == 2:  # binary arithmetic
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            v = e[2](left, right) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 3:  # comparison
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            stack.append(1 if e[2](left, right) else 0)
            pc = e[3]
        elif k == 4:  # JZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() == 0 else e[3]
        elif k == 5:  # STG
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop() & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[4]
        elif k == 6:  # JMP / NOP
            pc = e[2]
        elif k == 7:  # JNZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() != 0 else e[3]
        elif k == 8:  # LDP
            p = e[2]
            if p >= nparams:
                raise VmTrap(f"parameter {p} out of range")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(params[p])
            pc = e[3]
        elif k == 9:  # unary
            if not stack:
                raise VmTrap("operand stack underflow")
            v = e[2](stack.pop()) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 10:  # INCG / DECG
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(old)
            v = (old + e[4]) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[5]
        elif k == 11:  # LDE
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            stack.append(arr[index])
            pc = e[3]
        elif k == 12:  # STE
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v &= 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            arr[index] = e[3](v)
            pc = e[4]
        elif k == 13:  # LDEI
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]][e[3]])
            pc = e[4]
        elif k == 14:  # DUP
            if not stack:
                raise VmTrap("operand stack underflow")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(stack[-1])
            pc = e[2]
        elif k == 15:  # DROP
            if not stack:
                raise VmTrap("operand stack underflow")
            stack.pop()
            pc = e[2]
        elif k == 16:  # SIG
            argc = e[4]
            if argc > len(stack):
                raise VmTrap("SIG argc exceeds stack depth")
            if argc:
                sig_args = tuple(stack[len(stack) - argc:])
                del stack[len(stack) - argc:]
            else:
                sig_args = ()
            if signal_sink is not None:
                signal_sink(e[2], e[3], sig_args)
            pc = e[5]
        elif k == 17:  # RETV
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            if return_sink is not None:
                return_sink(ReturnValue(scalar=v))
            pc = e[2]
        elif k == 18:  # RETA
            if return_sink is not None:
                return_sink(ReturnValue(array=tuple(g[e[2]])))
            pc = e[3]
        elif k == 19:  # RET
            break
        elif k == 20:  # statically resolved fault at this offset
            if len(stack) < e[3]:
                raise VmTrap("operand stack underflow")
            raise VmTrap(e[2])
        elif k == 21:  # LDG, uint32 slot (wrap into compute domain)
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 22:  # LDE, uint32 slot
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v = arr[index]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 23:  # LDEI, uint32 slot
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]][e[3]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[4]
        elif k == 24:  # INCG/DECG, uint32 slot
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            pushed = old
            if pushed >= 0x80000000:
                pushed -= 0x100000000
            stack.append(pushed)
            v = (old + e[4]) & 0xFFFFFFFF
            g[e[2]] = e[3](v)
            pc = e[5]
        else:  # pragma: no cover - every kind handled above
            raise AssertionError(f"unknown entry kind {k}")

    return ExecutionResult(cycles=cycles, steps=steps)


__all__ = [
    "OpcodeHeatRecorder",
    "basic_blocks",
    "execute_fast_counting",
    "hot_blocks",
    "merge_heat",
    "opcode_totals",
]
