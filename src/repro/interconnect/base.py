"""Common machinery for the simulated hardware interconnects.

Each bus model answers a *transaction* synchronously with the data the
attached peripheral produced plus the electrical duration and energy of
the transaction; the caller (a native interconnect library in the µPnP
runtime) is responsible for scheduling the completion on the simulator,
mirroring the split-phase style of the real drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Optional, TypeVar

from repro.hw.connector import BusKind
from repro.hw.power import EnergyMeter, PowerDraw


class BusError(Exception):
    """Base class for interconnect failures."""


class BusBusyError(BusError):
    """A transaction was attempted while another is in flight."""


class BusTimeoutError(BusError):
    """The addressed device did not answer in time."""


class InvalidConfigurationError(BusError):
    """The requested bus configuration is not supported."""


class NackError(BusError):
    """An I2C-style addressed transfer was not acknowledged."""


T = TypeVar("T")


@dataclass(frozen=True)
class Transaction(Generic[T]):
    """Result of a bus transaction: payload + electrical cost."""

    value: T
    duration_s: float
    energy_j: float


class Interconnect:
    """Base class: owns the energy meter and the attached device slot."""

    kind: BusKind

    def __init__(
        self,
        *,
        active_draw: PowerDraw,
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        self._active_draw = active_draw
        self._meter = meter if meter is not None else EnergyMeter()
        self._device: Any = None

    @property
    def meter(self) -> EnergyMeter:
        return self._meter

    @property
    def device(self) -> Any:
        return self._device

    def attach(self, device: Any) -> None:
        """Connect a peripheral model to this bus (mux switched in)."""
        if self._device is not None:
            raise BusBusyError(f"{self.kind.value} bus already has a device attached")
        self._device = device

    def detach(self) -> Any:
        """Disconnect the peripheral (unplug / mux switched away)."""
        device = self._device
        self._device = None
        return device

    def _account(self, duration_s: float) -> float:
        """Meter the energy of a *duration_s* transaction; return joules."""
        joules = self._active_draw.energy_joules(duration_s)
        self._meter.add(f"bus:{self.kind.value}", joules)
        return joules

    def _require_device(self) -> Any:
        if self._device is None:
            raise BusTimeoutError(f"no device attached to {self.kind.value} bus")
        return self._device


__all__ = [
    "BusError",
    "BusBusyError",
    "BusTimeoutError",
    "InvalidConfigurationError",
    "NackError",
    "Transaction",
    "Interconnect",
]
