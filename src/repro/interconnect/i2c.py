"""I2C (two-wire) bus model.

Timing follows the wire protocol: every byte costs 9 bit-times (8 data
+ ACK), plus a start and stop condition.  Devices are addressed with
7-bit addresses; addressing an absent device raises :class:`NackError`,
which the native library surfaces to drivers as an error event.

Attached devices implement the protocol of
:class:`repro.peripherals.base.I2CDevice`:
``i2c_address``, ``handle_write(data)``, ``handle_read(count)``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.connector import BusKind
from repro.hw.power import EnergyMeter, PowerDraw
from repro.interconnect.base import (
    Interconnect,
    InvalidConfigurationError,
    NackError,
    Transaction,
)

SUPPORTED_FREQUENCIES_HZ = (100_000, 400_000)

_START_BITS = 1.0
_STOP_BITS = 1.0
_ADDRESS_BITS = 9.0  # 7-bit address + R/W + ACK
_BITS_PER_BYTE = 9.0  # 8 data + ACK


class I2cBus(Interconnect):
    """An I2C master with (up to) several attached slave devices.

    Unlike point-to-point buses, I2C daisy-chains; the µPnP connector
    exposes a single peripheral per channel, but the model supports
    multiple slaves so bus-conflict tests can exercise NACK behaviour.
    """

    kind = BusKind.I2C

    def __init__(
        self,
        *,
        frequency_hz: int = 100_000,
        active_draw: PowerDraw = PowerDraw(current_a=0.5e-3, voltage_v=3.3),
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        super().__init__(active_draw=active_draw, meter=meter)
        self._slaves: Dict[int, object] = {}
        self._frequency_hz = 0
        self.configure(frequency_hz)

    # ---------------------------------------------------------------- config
    def configure(self, frequency_hz: int) -> None:
        if frequency_hz not in SUPPORTED_FREQUENCIES_HZ:
            raise InvalidConfigurationError(
                f"unsupported I2C frequency: {frequency_hz}"
            )
        self._frequency_hz = frequency_hz

    @property
    def frequency_hz(self) -> int:
        return self._frequency_hz

    # ---------------------------------------------------------------- wiring
    def attach(self, device: object) -> None:
        """Attach a slave; the device must expose ``i2c_address``."""
        address = getattr(device, "i2c_address", None)
        if address is None:
            raise InvalidConfigurationError("device has no i2c_address")
        if address in self._slaves:
            raise InvalidConfigurationError(
                f"address {address:#04x} already present on the bus"
            )
        self._slaves[address] = device
        self._device = device  # keep Interconnect bookkeeping coherent

    def detach(self, address: Optional[int] = None) -> object:
        if address is None:
            if len(self._slaves) != 1:
                raise InvalidConfigurationError(
                    "ambiguous detach: specify the slave address"
                )
            address = next(iter(self._slaves))
        device = self._slaves.pop(address)
        self._device = next(iter(self._slaves.values()), None)
        return device

    def _slave(self, address: int) -> object:
        if not 0 <= address <= 0x7F:
            raise InvalidConfigurationError(f"invalid 7-bit address: {address:#x}")
        device = self._slaves.get(address)
        if device is None:
            raise NackError(f"no device acknowledged address {address:#04x}")
        return device

    # ------------------------------------------------------------------ time
    def _transfer_seconds(self, payload_bytes: int) -> float:
        bits = _START_BITS + _ADDRESS_BITS + payload_bytes * _BITS_PER_BYTE + _STOP_BITS
        return bits / self._frequency_hz

    # ------------------------------------------------------------------- I/O
    def write(self, address: int, data: bytes) -> Transaction[None]:
        """Master write of *data* to the slave at *address*."""
        device = self._slave(address)
        device.handle_write(bytes(data))
        duration = self._transfer_seconds(len(data))
        return Transaction(None, duration, self._account(duration))

    def read(self, address: int, count: int) -> Transaction[bytes]:
        """Master read of *count* bytes from the slave at *address*."""
        if count < 1:
            raise InvalidConfigurationError("read count must be >= 1")
        device = self._slave(address)
        data = bytes(device.handle_read(count))
        if len(data) != count:
            raise NackError(
                f"slave {address:#04x} returned {len(data)} of {count} bytes"
            )
        duration = self._transfer_seconds(count)
        return Transaction(data, duration, self._account(duration))

    def write_read(
        self, address: int, data: bytes, count: int
    ) -> Transaction[bytes]:
        """Combined write-then-read with a repeated start."""
        wr = self.write(address, data)
        rd = self.read(address, count)
        return Transaction(rd.value, wr.duration_s + rd.duration_s,
                           wr.energy_j + rd.energy_j)


__all__ = ["I2cBus", "SUPPORTED_FREQUENCIES_HZ"]
