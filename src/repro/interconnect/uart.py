"""UART model.

The UART is the one inherently asynchronous interconnect: the peripheral
can start transmitting on its own (e.g. the ID-20LA RFID reader emits a
frame when a card is presented), so this model is wired to the
simulator and delivers bytes one frame-time apart.  Received bytes go
to the registered RX handler (the native UART library) or, when no
reader is armed, into a small hardware-style FIFO that overflows by
dropping — the overflow counter makes driver bugs observable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.hw.connector import BusKind
from repro.hw.power import EnergyMeter, PowerDraw
from repro.interconnect.base import (
    Interconnect,
    InvalidConfigurationError,
    Transaction,
)
from repro.sim.kernel import Simulator, ns_from_s

SUPPORTED_BAUDS = (1200, 2400, 4800, 9600, 19200, 38400, 57600, 115200)
PARITY_NONE = "N"
PARITY_EVEN = "E"
PARITY_ODD = "O"
SUPPORTED_PARITIES = (PARITY_NONE, PARITY_EVEN, PARITY_ODD)


@dataclass(frozen=True)
class UartConfig:
    """Line configuration, as set by ``uart.init`` in driver code."""

    baud: int = 9600
    parity: str = PARITY_NONE
    stop_bits: int = 1
    data_bits: int = 8

    def validate(self) -> None:
        if self.baud not in SUPPORTED_BAUDS:
            raise InvalidConfigurationError(f"unsupported baud rate: {self.baud}")
        if self.parity not in SUPPORTED_PARITIES:
            raise InvalidConfigurationError(f"unsupported parity: {self.parity!r}")
        if self.stop_bits not in (1, 2):
            raise InvalidConfigurationError(f"invalid stop bits: {self.stop_bits}")
        if self.data_bits not in (7, 8):
            raise InvalidConfigurationError(f"invalid data bits: {self.data_bits}")

    @property
    def bits_per_frame(self) -> int:
        """Start bit + data + optional parity + stop bits."""
        return 1 + self.data_bits + (0 if self.parity == PARITY_NONE else 1) + self.stop_bits

    @property
    def byte_seconds(self) -> float:
        return self.bits_per_frame / self.baud


class UartBus(Interconnect):
    """Point-to-point UART between the MCU and one peripheral."""

    kind = BusKind.UART

    def __init__(
        self,
        sim: Simulator,
        *,
        config: UartConfig = UartConfig(),
        rx_fifo_size: int = 16,
        active_draw: PowerDraw = PowerDraw(current_a=0.3e-3, voltage_v=3.3),
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        super().__init__(active_draw=active_draw, meter=meter)
        config.validate()
        self._sim = sim
        self._default_config = config
        self._config = config
        self._rx_fifo: Deque[int] = deque(maxlen=rx_fifo_size)
        self._rx_handler: Optional[Callable[[int], None]] = None
        self._overflow_count = 0

    # ---------------------------------------------------------------- config
    @property
    def config(self) -> UartConfig:
        return self._config

    @property
    def overflow_count(self) -> int:
        return self._overflow_count

    def configure(self, config: UartConfig) -> None:
        config.validate()
        self._config = config

    def reset(self) -> None:
        """Restore platform defaults (``uart.reset`` in driver code)."""
        self._config = self._default_config
        self._rx_fifo.clear()
        self._rx_handler = None

    # ------------------------------------------------------------------- RX
    def set_rx_handler(self, handler: Optional[Callable[[int], None]]) -> None:
        """Arm (or disarm with None) the per-byte receive callback.

        Arming drains any bytes parked in the FIFO, preserving order.
        """
        self._rx_handler = handler
        if handler is not None:
            while self._rx_fifo:
                handler(self._rx_fifo.popleft())

    def device_transmit(self, data: bytes) -> float:
        """Called by the peripheral model to send *data* to the MCU.

        Bytes arrive one frame-time apart on the simulator.  Returns the
        total line time so device models can sequence their output.
        """
        if not data:
            return 0.0
        byte_time = self._config.byte_seconds
        for index, byte in enumerate(bytes(data)):
            self._sim.schedule(
                ns_from_s((index + 1) * byte_time),
                lambda b=byte: self._deliver(b),
                name="uart-rx-byte",
            )
        duration = len(data) * byte_time
        self._account(duration)
        return duration

    def _deliver(self, byte: int) -> None:
        if self._rx_handler is not None:
            self._rx_handler(byte)
        elif self._rx_fifo.maxlen and len(self._rx_fifo) == self._rx_fifo.maxlen:
            self._overflow_count += 1
        else:
            self._rx_fifo.append(byte)

    # ------------------------------------------------------------------- TX
    def host_write(self, data: bytes) -> Transaction[None]:
        """MCU -> peripheral transmission.

        The attached device's ``on_host_write`` is invoked after the full
        line time has elapsed (scheduled on the simulator).
        """
        device = self._require_device()
        duration = len(data) * self._config.byte_seconds
        self._sim.schedule(
            ns_from_s(duration),
            lambda d=bytes(data): device.on_host_write(d),
            name="uart-tx-done",
        )
        return Transaction(None, duration, self._account(duration))


__all__ = [
    "UartBus",
    "UartConfig",
    "SUPPORTED_BAUDS",
    "SUPPORTED_PARITIES",
    "PARITY_NONE",
    "PARITY_EVEN",
    "PARITY_ODD",
]
