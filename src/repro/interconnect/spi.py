"""SPI bus model.

SPI is a full-duplex point-to-point interconnect: every transfer clocks
the same number of bytes in both directions.  Attached devices implement
``spi_transfer(mosi: bytes) -> bytes`` (see
:class:`repro.peripherals.base.SpiDevice`).
"""

from __future__ import annotations

from typing import Optional

from repro.hw.connector import BusKind
from repro.hw.power import EnergyMeter, PowerDraw
from repro.interconnect.base import (
    Interconnect,
    InvalidConfigurationError,
    Transaction,
)

SUPPORTED_MODES = (0, 1, 2, 3)
MAX_CLOCK_HZ = 8_000_000


class SpiBus(Interconnect):
    """An SPI master (MOSI / MISO / SCK on connector pins 10–12)."""

    kind = BusKind.SPI

    def __init__(
        self,
        *,
        clock_hz: int = 1_000_000,
        mode: int = 0,
        active_draw: PowerDraw = PowerDraw(current_a=0.8e-3, voltage_v=3.3),
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        super().__init__(active_draw=active_draw, meter=meter)
        self._clock_hz = 0
        self._mode = 0
        self.configure(clock_hz, mode)

    def configure(self, clock_hz: int, mode: int = 0) -> None:
        if not 0 < clock_hz <= MAX_CLOCK_HZ:
            raise InvalidConfigurationError(f"unsupported SPI clock: {clock_hz}")
        if mode not in SUPPORTED_MODES:
            raise InvalidConfigurationError(f"invalid SPI mode: {mode}")
        self._clock_hz = clock_hz
        self._mode = mode

    @property
    def clock_hz(self) -> int:
        return self._clock_hz

    @property
    def mode(self) -> int:
        return self._mode

    def transfer(self, mosi: bytes) -> Transaction[bytes]:
        """Full-duplex transfer; returns the MISO bytes."""
        device = self._require_device()
        miso = bytes(device.spi_transfer(bytes(mosi)))
        if len(miso) != len(mosi):
            raise InvalidConfigurationError(
                f"SPI slave answered {len(miso)} bytes for {len(mosi)} clocked"
            )
        duration = len(mosi) * 8.0 / self._clock_hz
        return Transaction(miso, duration, self._account(duration))


__all__ = ["SpiBus", "SUPPORTED_MODES", "MAX_CLOCK_HZ"]
