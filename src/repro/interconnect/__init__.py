"""Simulated hardware interconnects: ADC, I2C, SPI and UART buses."""

from repro.interconnect.adc import AdcBus
from repro.interconnect.base import (
    BusBusyError,
    BusError,
    BusTimeoutError,
    Interconnect,
    InvalidConfigurationError,
    NackError,
    Transaction,
)
from repro.interconnect.i2c import I2cBus
from repro.interconnect.spi import SpiBus
from repro.interconnect.uart import (
    PARITY_EVEN,
    PARITY_NONE,
    PARITY_ODD,
    UartBus,
    UartConfig,
)

__all__ = [
    "AdcBus",
    "BusBusyError",
    "BusError",
    "BusTimeoutError",
    "Interconnect",
    "InvalidConfigurationError",
    "NackError",
    "Transaction",
    "I2cBus",
    "SpiBus",
    "PARITY_EVEN",
    "PARITY_NONE",
    "PARITY_ODD",
    "UartBus",
    "UartConfig",
]
