"""Analog-to-digital converter model.

Models a successive-approximation ADC in the style of the AVR's: a
conversion takes 13 ADC-clock cycles, the result is the input voltage
quantised against a reference, and electrical noise contributes up to
±1 LSB.  The attached device must expose ``voltage_v() -> float``
(see :class:`repro.peripherals.base.AnalogDevice`).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.hw.connector import BusKind
from repro.hw.power import EnergyMeter, PowerDraw
from repro.interconnect.base import (
    Interconnect,
    InvalidConfigurationError,
    Transaction,
)

#: Reference-voltage selections supported by the native ADC library.
SUPPORTED_REFERENCES_V = (1.1, 2.56, 3.3)

#: Resolutions the runtime exposes (the AVR muxes down from 10 bits).
SUPPORTED_RESOLUTIONS = (8, 10)


class AdcBus(Interconnect):
    """A single-ended ADC channel behind the µPnP connector."""

    kind = BusKind.ADC

    def __init__(
        self,
        *,
        resolution_bits: int = 10,
        vref_v: float = 3.3,
        adc_clock_hz: float = 125_000.0,
        conversion_cycles: int = 13,
        noise_lsb: float = 1.0,
        active_draw: PowerDraw = PowerDraw(current_a=0.3e-3, voltage_v=3.3),
        meter: Optional[EnergyMeter] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(active_draw=active_draw, meter=meter)
        self._rng = rng or random.Random(0)
        self._adc_clock_hz = adc_clock_hz
        self._conversion_cycles = conversion_cycles
        self._noise_lsb = noise_lsb
        self._resolution_bits = 0
        self._vref_v = 0.0
        self.configure(resolution_bits, vref_v)

    # ---------------------------------------------------------------- config
    def configure(self, resolution_bits: int, vref_v: float) -> None:
        """Select resolution and reference; validates like the native lib."""
        if resolution_bits not in SUPPORTED_RESOLUTIONS:
            raise InvalidConfigurationError(
                f"unsupported ADC resolution: {resolution_bits}"
            )
        if vref_v not in SUPPORTED_REFERENCES_V:
            raise InvalidConfigurationError(f"unsupported ADC reference: {vref_v}")
        self._resolution_bits = resolution_bits
        self._vref_v = vref_v

    @property
    def resolution_bits(self) -> int:
        return self._resolution_bits

    @property
    def vref_v(self) -> float:
        return self._vref_v

    @property
    def max_count(self) -> int:
        return (1 << self._resolution_bits) - 1

    @property
    def conversion_seconds(self) -> float:
        return self._conversion_cycles / self._adc_clock_hz

    # ------------------------------------------------------------------ I/O
    def sample(self) -> Transaction[int]:
        """One conversion of the attached device's output voltage."""
        device = self._require_device()
        voltage = float(device.voltage_v())
        counts = voltage / self._vref_v * self.max_count
        counts += self._rng.uniform(-self._noise_lsb, self._noise_lsb)
        clamped = max(0, min(self.max_count, round(counts)))
        duration = self.conversion_seconds
        return Transaction(clamped, duration, self._account(duration))

    def counts_to_millivolts(self, counts: int) -> int:
        """Integer helper mirroring what drivers do on the MCU."""
        if not 0 <= counts <= self.max_count:
            raise ValueError(f"counts out of range: {counts}")
        return round(counts * self._vref_v * 1000.0 / self.max_count)


__all__ = ["AdcBus", "SUPPORTED_REFERENCES_V", "SUPPORTED_RESOLUTIONS"]
