"""The driver catalogue: the paper's four prototype peripherals + relay.

Ties together, per peripheral type:

* the global-address-space device id (we reuse the example identifiers
  that appear in the paper's figures),
* the hardware interconnect it uses,
* the µPnP DSL driver source shipped in ``drivers/upnp/``,
* the native C baseline in ``drivers/c/`` (Table 3),
* a factory for the behavioural device model.

``populate_registry`` allocates all catalogue addresses in a
:class:`~repro.core.registry.Registry` and uploads their drivers,
making them deployable by a µPnP manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.dsl.bytecode import DriverImage
from repro.dsl.compiler import compile_source
from repro.dsl.sloc import count_c_sloc, count_sloc
from repro.drivers.native_model import NativeSizeEstimate, estimate_native_bytes
from repro.hw.connector import BusKind
from repro.hw.device_id import DeviceId
from repro.peripherals.base import Environment
from repro.peripherals.bmp180 import Bmp180
from repro.peripherals.hih4030 import Hih4030
from repro.peripherals.id20la import Id20La
from repro.peripherals.max6675 import Max6675
from repro.peripherals.relay import Relay
from repro.peripherals.tmp36 import Tmp36

_UPNP_DIR = Path(__file__).parent / "upnp"
_C_DIR = Path(__file__).parent / "c"

# Device ids taken from the paper's own figures (Figure 8, 10, 11).
TMP36_ID = DeviceId.from_hex("0xad1cbe01")
BMP180_ID = DeviceId.from_hex("0x0a0bbf03")
ID20LA_ID = DeviceId.from_hex("0xbe03af0e")
HIH4030_ID = DeviceId.from_hex("0xed3f0ac1")
RELAY_ID = DeviceId.from_hex("0xed3fbda1")
MAX6675_ID = DeviceId.from_hex("0x1c4e5a21")


@dataclass(frozen=True)
class DriverSpec:
    """One catalogue entry."""

    name: str
    device_id: DeviceId
    bus: BusKind
    dsl_file: str
    c_file: Optional[str]
    device_factory: Callable[[Environment], object]
    #: Driver-specific constant tables in the native build (Table 3 model).
    native_extra_data_bytes: int = 0

    # ------------------------------------------------------------- sources
    def dsl_source(self) -> str:
        return (_UPNP_DIR / self.dsl_file).read_text()

    def c_source(self) -> Optional[str]:
        if self.c_file is None:
            return None
        return (_C_DIR / self.c_file).read_text()

    # ------------------------------------------------------------- products
    def compile(self) -> DriverImage:
        return compile_source(self.dsl_source(), self.device_id.value)

    def dsl_sloc(self) -> int:
        return count_sloc(self.dsl_source())

    def c_sloc(self) -> Optional[int]:
        source = self.c_source()
        return None if source is None else count_c_sloc(source)

    def native_estimate(self) -> Optional[NativeSizeEstimate]:
        source = self.c_source()
        if source is None:
            return None
        return estimate_native_bytes(
            source, count_c_sloc(source),
            extra_data_bytes=self.native_extra_data_bytes,
        )

    def make_device(self, env: Optional[Environment] = None) -> object:
        return self.device_factory(env or Environment())


#: HIH-4030's native build carries a temperature-compensation lookup
#: table that the integer DSL driver replaces with scaled arithmetic.
CATALOG: Dict[str, DriverSpec] = {
    "tmp36": DriverSpec(
        name="TMP36 (ADC)",
        device_id=TMP36_ID,
        bus=BusKind.ADC,
        dsl_file="tmp36.udrv",
        c_file="tmp36.c",
        device_factory=lambda env: Tmp36(env=env),
    ),
    "hih4030": DriverSpec(
        name="HIH-4030 (ADC)",
        device_id=HIH4030_ID,
        bus=BusKind.ADC,
        dsl_file="hih4030.udrv",
        c_file="hih4030.c",
        device_factory=lambda env: Hih4030(env=env),
        native_extra_data_bytes=320,
    ),
    "id20la": DriverSpec(
        name="ID-20LA RFID (UART)",
        device_id=ID20LA_ID,
        bus=BusKind.UART,
        dsl_file="id20la.udrv",
        c_file="id20la.c",
        device_factory=lambda env: Id20La(),
    ),
    "bmp180": DriverSpec(
        name="BMP180 Pressure (I2C)",
        device_id=BMP180_ID,
        bus=BusKind.I2C,
        dsl_file="bmp180.udrv",
        c_file="bmp180.c",
        device_factory=lambda env: Bmp180(env=env),
    ),
    "relay": DriverSpec(
        name="Relay (I2C)",
        device_id=RELAY_ID,
        bus=BusKind.I2C,
        dsl_file="relay.udrv",
        c_file=None,
        device_factory=lambda env: Relay(),
    ),
    "max6675": DriverSpec(
        name="MAX6675 Thermocouple (SPI)",
        device_id=MAX6675_ID,
        bus=BusKind.SPI,
        dsl_file="max6675.udrv",
        c_file=None,
        device_factory=lambda env: Max6675(env=env),
    ),
}

#: The four drivers evaluated in Table 3, in the paper's row order.
TABLE3_DRIVERS: Tuple[str, ...] = ("tmp36", "hih4030", "id20la", "bmp180")


def spec_for_id(device_id: DeviceId | int) -> Optional[DriverSpec]:
    key = int(getattr(device_id, "value", device_id))
    for spec in CATALOG.values():
        if spec.device_id.value == key:
            return spec
    return None


def populate_registry(registry) -> None:
    """Allocate + upload every catalogue driver into *registry*."""
    for spec in CATALOG.values():
        if registry.record(spec.device_id) is None:
            registry.request_address(
                name=spec.name,
                organization="iMinds-DistriNet, KU Leuven",
                email="upnp@micropnp.example",
                url=f"https://micropnp.example/peripherals/{spec.dsl_file}",
                bus=spec.bus,
                label=spec.name,
                preferred_id=spec.device_id,
            )
        registry.upload_driver(spec.device_id, spec.dsl_source())


def make_peripheral_board(key: str, env: Optional[Environment] = None,
                          rng=None, codec=None):
    """Manufacture a plug-ready :class:`PeripheralBoard` for *key*."""
    from repro.hw.idcodec import DEFAULT_CODEC
    from repro.hw.peripheral_board import PeripheralBoard

    spec = CATALOG[key]
    return PeripheralBoard.manufacture(
        spec.device_id,
        spec.bus,
        device=spec.make_device(env),
        label=spec.name,
        params=codec or DEFAULT_CODEC,
        rng=rng,
    )


__all__ = [
    "DriverSpec",
    "CATALOG",
    "TABLE3_DRIVERS",
    "TMP36_ID",
    "MAX6675_ID",
    "BMP180_ID",
    "ID20LA_ID",
    "HIH4030_ID",
    "RELAY_ID",
    "spec_for_id",
    "populate_registry",
    "make_peripheral_board",
]
