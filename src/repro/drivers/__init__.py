"""Driver catalogue: µPnP DSL drivers + native C baselines (Table 3)."""

from repro.drivers.catalog import (
    BMP180_ID,
    CATALOG,
    HIH4030_ID,
    ID20LA_ID,
    MAX6675_ID,
    RELAY_ID,
    TABLE3_DRIVERS,
    TMP36_ID,
    DriverSpec,
    make_peripheral_board,
    populate_registry,
    spec_for_id,
)
from repro.drivers.native_model import (
    NativeSizeEstimate,
    estimate_native_bytes,
    uses_float,
)

__all__ = [
    "BMP180_ID",
    "CATALOG",
    "HIH4030_ID",
    "ID20LA_ID",
    "MAX6675_ID",
    "RELAY_ID",
    "TABLE3_DRIVERS",
    "TMP36_ID",
    "DriverSpec",
    "make_peripheral_board",
    "populate_registry",
    "spec_for_id",
    "NativeSizeEstimate",
    "estimate_native_bytes",
    "uses_float",
]
