/*
 * Native Contiki driver: HIH-4030 analog humidity sensor.
 * Platform-specific baseline for Table 3 (ATMega128RFA1).
 *
 * Uses the datasheet transfer function with floating point math and
 * temperature compensation, pulling in the AVR soft-float library.
 */
#include "contiki.h"
#include "dev/adc.h"
#include <avr/io.h>
#include <stdint.h>

#define HIH4030_ADC_CHANNEL  1
#define HIH4030_SUPPLY_MV    3300.0f
#define HIH4030_SLOPE        0.0062f
#define HIH4030_OFFSET       0.16f
#define HIH4030_COMP_A       1.0546f
#define HIH4030_COMP_B       0.00216f

static uint8_t initialized;

static void
hih4030_arch_init(void)
{
  ADMUX = _BV(REFS0) | (HIH4030_ADC_CHANNEL & 0x1f);
  ADCSRA = _BV(ADEN) | _BV(ADPS2) | _BV(ADPS1) | _BV(ADPS0);
  initialized = 1;
}

static uint16_t
hih4030_arch_sample(void)
{
  uint16_t result;

  ADCSRA |= _BV(ADSC);
  while(ADCSRA & _BV(ADSC)) {
  }
  result = ADCL;
  result |= (uint16_t)ADCH << 8;
  return result;
}

float
hih4030_read_rh(float temperature_c)
{
  uint16_t counts;
  float vout, rh_sensor, rh_true;

  if(!initialized) {
    hih4030_arch_init();
  }
  counts = hih4030_arch_sample();
  vout = (float)counts * HIH4030_SUPPLY_MV / 1023.0f / 1000.0f;
  rh_sensor = (vout / (HIH4030_SUPPLY_MV / 1000.0f) - HIH4030_OFFSET)
              / HIH4030_SLOPE;
  rh_true = rh_sensor / (HIH4030_COMP_A - HIH4030_COMP_B * temperature_c);
  if(rh_true < 0.0f) {
    rh_true = 0.0f;
  } else if(rh_true > 100.0f) {
    rh_true = 100.0f;
  }
  return rh_true;
}

uint16_t
hih4030_read_rh_tenths(float temperature_c)
{
  return (uint16_t)(hih4030_read_rh(temperature_c) * 10.0f);
}

void
hih4030_deactivate(void)
{
  ADCSRA &= ~_BV(ADEN);
  initialized = 0;
}
