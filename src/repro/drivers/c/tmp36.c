/*
 * Native Contiki driver: TMP36 analog temperature sensor.
 * Platform-specific baseline for Table 3 (ATMega128RFA1).
 *
 * Note the floating point conversion: with no hardware FPU, linking
 * this driver pulls in the AVR soft-float library, which dominates the
 * compiled size.
 */
#include "contiki.h"
#include "dev/adc.h"
#include <avr/io.h>
#include <stdint.h>

#define TMP36_ADC_CHANNEL   0
#define TMP36_VREF_MV       3300.0f
#define TMP36_OFFSET_MV     500.0f
#define TMP36_MV_PER_DEG    10.0f

static uint8_t initialized;

static void
tmp36_arch_init(void)
{
  /* Select AVcc reference, right-adjusted result, channel 0. */
  ADMUX = _BV(REFS0) | (TMP36_ADC_CHANNEL & 0x1f);
  /* Enable ADC, prescaler 128 -> 125 kHz ADC clock at 16 MHz. */
  ADCSRA = _BV(ADEN) | _BV(ADPS2) | _BV(ADPS1) | _BV(ADPS0);
  initialized = 1;
}

static uint16_t
tmp36_arch_sample(void)
{
  uint16_t result;

  ADCSRA |= _BV(ADSC);                 /* start conversion */
  while(ADCSRA & _BV(ADSC)) {          /* wait ~13 ADC cycles */
  }
  result = ADCL;
  result |= (uint16_t)ADCH << 8;
  return result;
}

float
tmp36_read_celsius(void)
{
  uint16_t counts;
  float millivolts;

  if(!initialized) {
    tmp36_arch_init();
  }
  counts = tmp36_arch_sample();
  millivolts = (float)counts * TMP36_VREF_MV / 1023.0f;
  return (millivolts - TMP36_OFFSET_MV) / TMP36_MV_PER_DEG;
}

int16_t
tmp36_read_decidegrees(void)
{
  return (int16_t)(tmp36_read_celsius() * 10.0f);
}

void
tmp36_deactivate(void)
{
  ADCSRA &= ~_BV(ADEN);                /* power the ADC back down */
  initialized = 0;
}
