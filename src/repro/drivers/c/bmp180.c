/*
 * Native Contiki driver: BMP180 barometric pressure sensor (I2C).
 * Platform-specific baseline for Table 3 (ATMega128RFA1).
 *
 * Blocking TWI master implementation plus the datasheet's integer
 * compensation algorithm (oss = 0).
 */
#include "contiki.h"
#include <avr/io.h>
#include <util/twi.h>
#include <stdint.h>

#define BMP180_ADDR         0x77
#define BMP180_REG_CALIB    0xaa
#define BMP180_REG_ID       0xd0
#define BMP180_REG_CTRL     0xf4
#define BMP180_REG_OUT      0xf6
#define BMP180_CMD_TEMP     0x2e
#define BMP180_CMD_PRESS    0x34
#define BMP180_CHIP_ID      0x55

static int16_t ac1, ac2, ac3;
static uint16_t ac4, ac5, ac6;
static int16_t b1, b2, mb, mc, md;
static int32_t b5;
static uint8_t calibrated;

/* ------------------------------------------------------------ TWI master */

static void
twi_init(void)
{
  TWSR = 0;                              /* prescaler 1 */
  TWBR = (uint8_t)((F_CPU / 100000UL - 16) / 2);
  TWCR = _BV(TWEN);
}

static int
twi_start(uint8_t address_rw)
{
  TWCR = _BV(TWINT) | _BV(TWSTA) | _BV(TWEN);
  while(!(TWCR & _BV(TWINT))) {
  }
  TWDR = address_rw;
  TWCR = _BV(TWINT) | _BV(TWEN);
  while(!(TWCR & _BV(TWINT))) {
  }
  if(TW_STATUS != TW_MT_SLA_ACK && TW_STATUS != TW_MR_SLA_ACK) {
    return -1;
  }
  return 0;
}

static void
twi_stop(void)
{
  TWCR = _BV(TWINT) | _BV(TWSTO) | _BV(TWEN);
}

static void
twi_write(uint8_t data)
{
  TWDR = data;
  TWCR = _BV(TWINT) | _BV(TWEN);
  while(!(TWCR & _BV(TWINT))) {
  }
}

static uint8_t
twi_read(uint8_t ack)
{
  TWCR = _BV(TWINT) | _BV(TWEN) | (ack ? _BV(TWEA) : 0);
  while(!(TWCR & _BV(TWINT))) {
  }
  return TWDR;
}

/* ------------------------------------------------------- register access */

static int
bmp180_read_regs(uint8_t reg, uint8_t *buf, uint8_t len)
{
  uint8_t i;

  if(twi_start((BMP180_ADDR << 1) | TW_WRITE) < 0) {
    return -1;
  }
  twi_write(reg);
  if(twi_start((BMP180_ADDR << 1) | TW_READ) < 0) {
    return -1;
  }
  for(i = 0; i < len; i++) {
    buf[i] = twi_read(i + 1 < len);
  }
  twi_stop();
  return 0;
}

static int
bmp180_write_reg(uint8_t reg, uint8_t value)
{
  if(twi_start((BMP180_ADDR << 1) | TW_WRITE) < 0) {
    return -1;
  }
  twi_write(reg);
  twi_write(value);
  twi_stop();
  return 0;
}

static void
bmp180_wait_conversion(void)
{
  uint8_t ctrl;

  do {
    if(bmp180_read_regs(BMP180_REG_CTRL, &ctrl, 1) < 0) {
      return;
    }
  } while(ctrl & 0x20);                 /* Sco clears when done */
}

/* ----------------------------------------------------------- public API */

int
bmp180_init(void)
{
  uint8_t cal[22];
  uint8_t id;

  twi_init();
  if(bmp180_read_regs(BMP180_REG_ID, &id, 1) < 0 || id != BMP180_CHIP_ID) {
    return -1;
  }
  if(bmp180_read_regs(BMP180_REG_CALIB, cal, sizeof(cal)) < 0) {
    return -1;
  }
  ac1 = (int16_t)((cal[0] << 8) | cal[1]);
  ac2 = (int16_t)((cal[2] << 8) | cal[3]);
  ac3 = (int16_t)((cal[4] << 8) | cal[5]);
  ac4 = (uint16_t)((cal[6] << 8) | cal[7]);
  ac5 = (uint16_t)((cal[8] << 8) | cal[9]);
  ac6 = (uint16_t)((cal[10] << 8) | cal[11]);
  b1 = (int16_t)((cal[12] << 8) | cal[13]);
  b2 = (int16_t)((cal[14] << 8) | cal[15]);
  mb = (int16_t)((cal[16] << 8) | cal[17]);
  mc = (int16_t)((cal[18] << 8) | cal[19]);
  md = (int16_t)((cal[20] << 8) | cal[21]);
  calibrated = 1;
  return 0;
}

int16_t
bmp180_read_temperature(void)
{
  uint8_t raw[2];
  int32_t ut, x1, x2;

  if(!calibrated) {
    return 0;
  }
  bmp180_write_reg(BMP180_REG_CTRL, BMP180_CMD_TEMP);
  bmp180_wait_conversion();
  bmp180_read_regs(BMP180_REG_OUT, raw, 2);
  ut = ((int32_t)raw[0] << 8) | raw[1];
  x1 = ((ut - (int32_t)ac6) * (int32_t)ac5) >> 15;
  x2 = ((int32_t)mc << 11) / (x1 + md);
  b5 = x1 + x2;
  return (int16_t)((b5 + 8) >> 4);      /* 0.1 degC */
}

int32_t
bmp180_read_pressure(void)
{
  uint8_t raw[3];
  int32_t up, x1, x2, x3, b3, b6, p;
  uint32_t b4, b7;

  /* Pressure compensation needs a fresh B5 from the temperature path. */
  bmp180_read_temperature();
  bmp180_write_reg(BMP180_REG_CTRL, BMP180_CMD_PRESS);
  bmp180_wait_conversion();
  bmp180_read_regs(BMP180_REG_OUT, raw, 3);
  up = (((int32_t)raw[0] << 16) | ((int32_t)raw[1] << 8) | raw[2]) >> 8;

  b6 = b5 - 4000;
  x1 = ((int32_t)b2 * ((b6 * b6) >> 12)) >> 11;
  x2 = ((int32_t)ac2 * b6) >> 11;
  x3 = x1 + x2;
  b3 = (((int32_t)ac1 * 4 + x3) + 2) / 4;
  x1 = ((int32_t)ac3 * b6) >> 13;
  x2 = ((int32_t)b1 * ((b6 * b6) >> 12)) >> 16;
  x3 = ((x1 + x2) + 2) >> 2;
  b4 = ((uint32_t)ac4 * (uint32_t)(x3 + 32768)) >> 15;
  b7 = ((uint32_t)up - b3) * 50000UL;
  if(b7 < 0x80000000UL) {
    p = (b7 * 2) / b4;
  } else {
    p = (b7 / b4) * 2;
  }
  x1 = (p >> 8) * (p >> 8);
  x1 = (x1 * 3038) >> 16;
  x2 = (-7357 * p) >> 16;
  return p + ((x1 + x2 + 3791) >> 4);   /* pascal */
}
