/*
 * Native Contiki driver: ID-20LA 125 kHz RFID reader (UART).
 * Platform-specific baseline for Table 3 (ATMega128RFA1).
 *
 * Interrupt-driven receive on USART1; frames are parsed in the ISR and
 * a completed card id is handed to the registered callback from the
 * Contiki process context.
 */
#include "contiki.h"
#include <avr/io.h>
#include <avr/interrupt.h>
#include <stdint.h>

#define ID20LA_BAUD        9600UL
#define ID20LA_UBRR        ((F_CPU / (16UL * ID20LA_BAUD)) - 1)
#define ID20LA_STX         0x02
#define ID20LA_ETX         0x03
#define ID20LA_CR          0x0d
#define ID20LA_LF          0x0a
#define ID20LA_ID_LENGTH   12

static volatile uint8_t rfid[ID20LA_ID_LENGTH];
static volatile uint8_t idx;
static volatile uint8_t frame_ready;
static uint8_t busy;

static void (*card_callback)(const uint8_t *id, uint8_t len);

void
id20la_init(void)
{
  /* 9600 8N1 on USART1, RX interrupt enabled. */
  UBRR1H = (uint8_t)(ID20LA_UBRR >> 8);
  UBRR1L = (uint8_t)ID20LA_UBRR;
  UCSR1C = _BV(UCSZ11) | _BV(UCSZ10);   /* 8 data, no parity, 1 stop */
  UCSR1B = _BV(RXEN1) | _BV(RXCIE1);
  idx = 0;
  frame_ready = 0;
  busy = 0;
}

void
id20la_deactivate(void)
{
  UCSR1B = 0;                           /* disable receiver + interrupt */
  card_callback = 0;
}

void
id20la_set_callback(void (*cb)(const uint8_t *id, uint8_t len))
{
  card_callback = cb;
}

int
id20la_start_read(void)
{
  if(busy) {
    return -1;
  }
  busy = 1;
  idx = 0;
  frame_ready = 0;
  return 0;
}

ISR(USART1_RX_vect)
{
  uint8_t c = UDR1;

  if(!busy) {
    return;                             /* drop bytes outside of a read */
  }
  if(c == ID20LA_STX || c == ID20LA_ETX || c == ID20LA_CR || c == ID20LA_LF) {
    return;                             /* framing characters */
  }
  if(idx < ID20LA_ID_LENGTH) {
    rfid[idx++] = c;
  }
  if(idx == ID20LA_ID_LENGTH) {
    frame_ready = 1;
  }
}

void
id20la_poll(void)
{
  /* Called from the driver process; delivers a completed frame. */
  if(frame_ready) {
    frame_ready = 0;
    busy = 0;
    idx = 0;
    if(card_callback) {
      card_callback((const uint8_t *)rfid, ID20LA_ID_LENGTH);
    }
  }
}
