"""Compiled-size model for native C drivers (Table 3 'Native Variant').

We cannot run avr-gcc offline, so native driver flash sizes come from a
documented linear model calibrated against the paper's measurements
(DESIGN.md §4.5):

    size = BASE + K * SLoC + SOFTFLOAT (if the source uses floats)
                + EXTRA_DATA (driver-specific constant tables)

The decisive term is SOFTFLOAT: the ATMega128RFA1 has no FPU, so "all
floating point operations are executed in software [and] drivers
involving floating point operations must include a software floating
point library" (§6.3) — which is why the two tiny analog drivers
compile to ~3 KB while the much longer BMP180 integer driver stays
under 700 bytes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Fixed per-driver overhead: init/IO scaffolding, vectors, literals.
BASE_BYTES = 540

#: Marginal flash per source line of straightforward integer C.
BYTES_PER_SLOC = 0.58

#: The AVR soft-float library pulled in by any float arithmetic.
SOFTFLOAT_BYTES = 2380

_FLOAT_PATTERN = re.compile(r"\bfloat\b|\bdouble\b|\d\.\d+f?")
_COMMENT_PATTERN = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)


def uses_float(source: str) -> bool:
    """Heuristic: does this C source perform floating point math?

    Comments are stripped first so prose like "0.1 degC" doesn't count.
    """
    return bool(_FLOAT_PATTERN.search(_COMMENT_PATTERN.sub("", source)))


@dataclass(frozen=True)
class NativeSizeEstimate:
    """Modelled flash footprint of one compiled C driver."""

    sloc: int
    float_math: bool
    extra_data_bytes: int

    @property
    def flash_bytes(self) -> int:
        size = BASE_BYTES + BYTES_PER_SLOC * self.sloc + self.extra_data_bytes
        if self.float_math:
            size += SOFTFLOAT_BYTES
        return round(size)


def estimate_native_bytes(
    source: str, sloc: int, *, extra_data_bytes: int = 0
) -> NativeSizeEstimate:
    """Model the compiled size of *source* (already SLoC-counted)."""
    return NativeSizeEstimate(
        sloc=sloc,
        float_math=uses_float(source),
        extra_data_bytes=extra_data_bytes,
    )


__all__ = [
    "estimate_native_bytes",
    "uses_float",
    "NativeSizeEstimate",
    "BASE_BYTES",
    "BYTES_PER_SLOC",
    "SOFTFLOAT_BYTES",
]
