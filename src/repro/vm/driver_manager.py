"""The µPnP driver manager (§4.2).

Keeps track of which driver images are installed on the Thing (the
local driver repository), which drivers are *active* on which channel,
and brokers read/write requests from the network stack to the matching
driver runtime.  Remote deployment/removal (§5.3) goes through
:meth:`install` / :meth:`remove`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dsl.bytecode import DriverImage
from repro.hw.device_id import DeviceId
from repro.sim.kernel import Simulator
from repro.vm.machine import VirtualMachine
from repro.vm.native.bindings import binding_for
from repro.vm.router import EventRouter
from repro.vm.runtime import DriverRuntime, RequestCallback


class DriverManagerError(Exception):
    """Raised for invalid install/activate/remove operations."""


@dataclass
class ManagerStats:
    installs: int = 0
    removals: int = 0
    activations: int = 0
    deactivations: int = 0
    failed_requests: int = 0


class DriverManager:
    """Driver repository + active-driver registry for one µPnP Thing."""

    def __init__(
        self,
        sim: Simulator,
        router: EventRouter,
        vm: Optional[VirtualMachine] = None,
    ) -> None:
        self._sim = sim
        self._router = router
        self._vm = vm or VirtualMachine(router.profile)
        self._repo: Dict[int, DriverImage] = {}
        self._active: Dict[int, DriverRuntime] = {}  # channel -> runtime
        self.stats = ManagerStats()

    @property
    def vm(self) -> VirtualMachine:
        """The VM running this manager's drivers (profiler attach point)."""
        return self._vm

    # ------------------------------------------------------------ repository
    def install(self, image: DriverImage) -> None:
        """Add (or update) a driver image in the local repository."""
        self._repo[image.device_id] = image
        self.stats.installs += 1

    def remove(self, device_id: DeviceId | int) -> bool:
        """Drop a driver from the repository; deactivates it first."""
        key = int(getattr(device_id, "value", device_id))
        for channel, runtime in list(self._active.items()):
            if runtime.instance.image.device_id == key:
                self.deactivate(channel)
        if key in self._repo:
            del self._repo[key]
            self.stats.removals += 1
            return True
        return False

    def has_driver(self, device_id: DeviceId | int) -> bool:
        key = int(getattr(device_id, "value", device_id))
        return key in self._repo

    def image_for(self, device_id: DeviceId | int) -> Optional[DriverImage]:
        key = int(getattr(device_id, "value", device_id))
        return self._repo.get(key)

    def installed_ids(self) -> List[int]:
        """Device ids with locally available drivers (driver advertisement)."""
        return sorted(self._repo)

    # ------------------------------------------------------------ activation
    def activate(self, channel: int, device_id: DeviceId | int, bus) -> DriverRuntime:
        """Instantiate and start the driver for *device_id* on *channel*.

        *bus* is the channel's multiplexed interconnect; bindings are
        created for each library the driver imports that matches it.
        """
        key = int(getattr(device_id, "value", device_id))
        image = self._repo.get(key)
        if image is None:
            raise DriverManagerError(f"no driver installed for {key:#010x}")
        if channel in self._active:
            raise DriverManagerError(f"channel {channel} already has an active driver")
        bindings = {}
        for lib_id in image.imports:
            binding = binding_for(lib_id, self._sim, bus)
            if binding is not None:
                bindings[lib_id] = binding
        runtime = DriverRuntime(
            image, bindings, self._router, self._vm,
            label=f"ch{channel}:{key:08x}",
        )
        self._active[channel] = runtime
        runtime.activate()
        self.stats.activations += 1
        return runtime

    def deactivate(self, channel: int) -> bool:
        """Stop the driver on *channel* (fires ``destroy``)."""
        runtime = self._active.pop(channel, None)
        if runtime is None:
            return False
        runtime.deactivate()
        self.stats.deactivations += 1
        return True

    # -------------------------------------------------------------- queries
    def runtime_at(self, channel: int) -> Optional[DriverRuntime]:
        return self._active.get(channel)

    def runtime_for(self, device_id: DeviceId | int) -> Optional[DriverRuntime]:
        key = int(getattr(device_id, "value", device_id))
        for runtime in self._active.values():
            if runtime.instance.image.device_id == key:
                return runtime
        return None

    def active_channels(self) -> Dict[int, int]:
        """channel -> device id for every active driver."""
        return {
            channel: runtime.instance.image.device_id
            for channel, runtime in self._active.items()
        }

    # -------------------------------------------------------------- requests
    def read(self, device_id: DeviceId | int, callback: RequestCallback) -> bool:
        """Read one value from the peripheral driven for *device_id*."""
        runtime = self.runtime_for(device_id)
        if runtime is None or not runtime.request_read(callback):
            self.stats.failed_requests += 1
            return False
        return True

    def write(
        self, device_id: DeviceId | int, value: int, callback: RequestCallback
    ) -> bool:
        """Write *value* to the peripheral driven for *device_id*."""
        runtime = self.runtime_for(device_id)
        if runtime is None or not runtime.request_write(value, callback):
            self.stats.failed_requests += 1
            return False
        return True


__all__ = ["DriverManager", "DriverManagerError", "ManagerStats"]
