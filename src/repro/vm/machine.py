"""The µPnP stack-based virtual machine (§4.2).

A single operand stack; handlers run to completion; no locking or
context switching — concurrency comes entirely from the event router.
``execute`` interprets one handler invocation and reports the cycle
count so callers can charge the simulated MCU for the time.

Side effects leave the VM through two sinks:

* ``signal_sink(target, symbol, args)`` for every SIG instruction
  (target 0 = the driver itself, otherwise a native library id);
* ``return_sink(ReturnValue)`` for RETV/RETA, completing the pending
  read/write request (§4.1's ``return`` keyword).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.dsl.bytecode import DriverImage, HandlerDef, Op, decode, operand_size
from repro.dsl.types import wrap32
from repro.vm.cost import DEFAULT_COST, VmCostProfile

#: Pre-computed operand widths so the reference loop can reject truncated
#: instruction tails without a per-step operand_size() call.
_OPERAND_SIZE: Dict[Op, int] = {op: operand_size(op) for op in Op}


class VmTrap(Exception):
    """A fault the real VM would treat as a fatal driver error
    (stack overflow/underflow, bad index, division by zero, runaway)."""


@dataclass(frozen=True)
class ReturnValue:
    """Value a driver returned for the pending request."""

    scalar: Optional[int] = None
    array: Optional[Tuple[int, ...]] = None

    @property
    def is_array(self) -> bool:
        return self.array is not None

    def to_payload(self) -> bytes:
        """Wire encoding used by the network data messages."""
        if self.array is not None:
            return bytes(b & 0xFF for b in self.array)
        value = wrap32(self.scalar or 0)
        return value.to_bytes(4, "big", signed=True)

    @classmethod
    def from_payload(cls, payload: bytes, *, as_array: bool) -> "ReturnValue":
        if as_array:
            return cls(array=tuple(payload))
        return cls(scalar=int.from_bytes(payload, "big", signed=True))


class DriverInstance:
    """An installed driver's mutable state: its global variable slots."""

    def __init__(self, image: DriverImage) -> None:
        self.image = image
        self.globals: List[Union[int, List[int]]] = []
        for slot in image.slots:
            if slot.is_array:
                self.globals.append([0] * slot.length)
            else:
                self.globals.append(0)

    def reset(self) -> None:
        """Re-zero all state (driver re-activation)."""
        for index, slot in enumerate(self.image.slots):
            if slot.is_array:
                self.globals[index] = [0] * slot.length
            else:
                self.globals[index] = 0

    # ------------------------------------------------------------- accessors
    def scalar(self, slot: int) -> int:
        if slot >= len(self.globals):
            raise VmTrap(f"slot {slot} out of range")
        value = self.globals[slot]
        if isinstance(value, list):
            raise VmTrap(f"slot {slot} is an array")
        return value

    def set_scalar(self, slot: int, value: int) -> None:
        if slot >= len(self.globals):
            raise VmTrap(f"slot {slot} out of range")
        if isinstance(self.globals[slot], list):
            raise VmTrap(f"slot {slot} is an array")
        self.globals[slot] = self.image.slots[slot].type.truncate(wrap32(value))

    def element(self, slot: int, index: int) -> int:
        if slot >= len(self.globals):
            raise VmTrap(f"slot {slot} out of range")
        array = self.globals[slot]
        if not isinstance(array, list):
            raise VmTrap(f"slot {slot} is not an array")
        if not 0 <= index < len(array):
            raise VmTrap(f"index {index} out of bounds for slot {slot}")
        return array[index]

    def set_element(self, slot: int, index: int, value: int) -> None:
        if slot >= len(self.globals):
            raise VmTrap(f"slot {slot} out of range")
        array = self.globals[slot]
        if not isinstance(array, list):
            raise VmTrap(f"slot {slot} is not an array")
        if not 0 <= index < len(array):
            raise VmTrap(f"index {index} out of bounds for slot {slot}")
        array[index] = self.image.slots[slot].type.truncate(wrap32(value))

    def array(self, slot: int) -> Tuple[int, ...]:
        if slot >= len(self.globals):
            raise VmTrap(f"slot {slot} out of range")
        array = self.globals[slot]
        if not isinstance(array, list):
            raise VmTrap(f"slot {slot} is not an array")
        return tuple(array)


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one handler invocation."""

    cycles: int
    steps: int

    def seconds(self, profile: VmCostProfile = DEFAULT_COST) -> float:
        return profile.mcu.cycles_to_seconds(self.cycles)


SignalSink = Callable[[int, int, Tuple[int, ...]], None]
ReturnSink = Callable[[ReturnValue], None]


def _cdiv(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if b == 0:
        raise VmTrap("division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _cmod(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - _cdiv(a, b) * b


class VirtualMachine:
    """Interprets driver bytecode with a bounded operand stack.

    Two interchangeable execution engines share one semantics:

    * ``mode="fast"`` (the default) runs the pre-decoded threaded
      dispatch from :mod:`repro.vm.fastpath` — bytecode is translated
      once per image and cached, then executed with no per-step decode.
    * ``mode="trace"`` layers superinstruction compilation from
      :mod:`repro.vm.tracecomp` on the threaded tables: hot basic
      blocks run as single fused closures, trap-for-trap identical.
    * ``mode="reference"`` runs the original decode-as-you-go
      interpreter below; it is the executable specification the
      differential test checks both compiled engines against.

    The ``REPRO_VM_MODE`` environment variable overrides the default
    for whole-process runs (fleet workers inherit it), and
    ``REPRO_VM_TRACE=1`` promotes the default "fast" engine to
    "trace" without touching an explicit mode choice.
    """

    #: Checkpoint contract: the id-keyed translation map is derived
    #: state and is rebuilt lazily after restore, never serialized.
    #: v2 added the optional ``_hit_recorder`` (opcode heat profiling);
    #: v3 admits mode == "trace" (superinstruction compilation).
    SNAPSHOT_SCHEMA = {
        "layer": "vm",
        "version": 3,
        "fields": ("_profile", "_stack_limit", "_step_limit", "_mode",
                   "_hit_recorder"),
    }

    def __init__(
        self,
        profile: VmCostProfile = DEFAULT_COST,
        *,
        stack_limit: int = 32,
        step_limit: int = 200_000,
        mode: Optional[str] = None,
    ) -> None:
        if mode is None:
            mode = os.environ.get("REPRO_VM_MODE", "fast")
            if mode == "fast" and os.environ.get("REPRO_VM_TRACE") == "1":
                mode = "trace"
        if mode not in ("fast", "reference", "trace"):
            raise ValueError(f"unknown VM mode: {mode!r}")
        self._profile = profile
        self._stack_limit = stack_limit
        self._step_limit = step_limit
        self._mode = mode
        #: Optional :class:`repro.profile.vmheat.OpcodeHeatRecorder`.
        #: None (the default) keeps both engines recorder-free: the
        #: reference loop skips its counting lines and the fast engine
        #: stays the uninstrumented :func:`fastpath.execute_fast`.
        self._hit_recorder = None
        #: id(image) -> (image, Translation); identity-guarded fast map
        #: in front of the module-level shared translation cache.
        self._translations: Dict[int, tuple] = {}
        self._bind_engine()

    def _bind_engine(self) -> None:
        """Select the compiled execution engine for the current mode and
        instrumentation.  A hit recorder wins over trace compilation:
        opcode-heat profiling needs per-instruction counts, which fused
        blocks do not produce, so profiled runs drop back to the
        counting copy of the plain threaded loop."""
        if self._mode == "reference":
            return
        if self._hit_recorder is not None:
            from repro.profile.vmheat import execute_fast_counting

            self._execute_fast = execute_fast_counting
        elif self._mode == "trace":
            from repro.vm.tracecomp import execute_traced

            self._execute_fast = execute_traced
        else:
            from repro.vm import fastpath

            self._execute_fast = fastpath.execute_fast

    @property
    def profile(self) -> VmCostProfile:
        return self._profile

    @property
    def mode(self) -> str:
        return self._mode

    # -------------------------------------------------------------- profiling
    def attach_hit_recorder(self, recorder) -> None:
        """Count executed opcodes into *recorder* (opcode heat maps).

        In fast mode this swaps the execution engine for the counting
        copy of the threaded-dispatch loop; in reference mode the
        interpreter checks ``_hit_recorder`` per invocation.  Both
        engines increment at the same point of the step (after the
        step-limit check, before dispatch), so fast and reference
        counts agree trap-for-trap.
        """
        self._hit_recorder = recorder
        # The counting engine reads plain translations; drop any traced
        # tables this VM cached so the swap can never mix entry kinds.
        self._translations = {}
        self._bind_engine()

    def detach_hit_recorder(self) -> None:
        """Stop counting; restore the uninstrumented engine."""
        self._hit_recorder = None
        self._translations = {}
        self._bind_engine()

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        """Restorable VM state: configuration and engine choice only.

        ``_translations`` is an ``id()``-keyed cache — meaningless in a
        new process — and ``_execute_fast`` is a module function both of
        which restore_state rebuilds, so checkpoints stay engine-portable
        and never go stale against the shared translation cache.
        """
        state = dict(self.__dict__)
        state.pop("_translations", None)
        state.pop("_execute_fast", None)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)
        self._translations = {}
        self._bind_engine()

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def execute(
        self,
        instance: DriverInstance,
        handler: HandlerDef,
        args: Sequence[int] = (),
        *,
        signal_sink: Optional[SignalSink] = None,
        return_sink: Optional[ReturnSink] = None,
    ) -> ExecutionResult:
        """Run *handler* to completion.  Raises :class:`VmTrap` on fault."""
        if len(args) != handler.n_params:
            raise VmTrap(
                f"handler expects {handler.n_params} args, got {len(args)}"
            )
        if self._mode != "reference":
            return self._execute_fast(
                self, instance, handler, args, signal_sink, return_sink
            )
        code = instance.image.code
        params = [wrap32(int(a)) for a in args]
        stack: List[int] = []
        pc = handler.offset
        cycles = 0
        steps = 0
        cost = self._profile.table
        recorder = self._hit_recorder
        hits = None
        if recorder is not None:
            recorder.executions += 1
            hits = recorder.hits_for(instance.image)

        def push(value: int) -> None:
            if len(stack) >= self._stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(wrap32(value))

        def pop() -> int:
            if not stack:
                raise VmTrap("operand stack underflow")
            return stack.pop()

        while True:
            if pc < 0 or pc >= len(code):
                raise VmTrap(f"pc {pc} ran off the end of code")
            steps += 1
            if steps > self._step_limit:
                raise VmTrap("step limit exceeded (runaway handler)")
            if hits is not None:
                hits[pc] += 1
            try:
                op = Op(code[pc])
            except ValueError:
                raise VmTrap(
                    f"invalid opcode {code[pc]:#04x} at pc {pc}"
                ) from None
            if pc + 1 + _OPERAND_SIZE[op] > len(code):
                raise VmTrap(f"truncated operands for {op.name} at pc {pc}")
            cycles += cost[op]
            operand_start = pc + 1

            if op == Op.RET:
                break
            elif op == Op.NOP:
                pc += 1
            elif op == Op.PUSH0:
                push(0)
                pc += 1
            elif op == Op.PUSH1:
                push(1)
                pc += 1
            elif op == Op.PUSH8:
                push(int.from_bytes(code[operand_start : operand_start + 1],
                                    "little", signed=True))
                pc += 2
            elif op == Op.PUSH16:
                push(int.from_bytes(code[operand_start : operand_start + 2],
                                    "little", signed=True))
                pc += 3
            elif op == Op.PUSH32:
                push(int.from_bytes(code[operand_start : operand_start + 4],
                                    "little", signed=True))
                pc += 5
            elif op == Op.DUP:
                value = pop()
                push(value)
                push(value)
                pc += 1
            elif op == Op.DROP:
                pop()
                pc += 1
            elif op == Op.LDG:
                push(instance.scalar(code[operand_start]))
                pc += 2
            elif op == Op.STG:
                instance.set_scalar(code[operand_start], pop())
                pc += 2
            elif Op.LDG0 <= op <= Op.LDG3:
                push(instance.scalar(op - Op.LDG0))
                pc += 1
            elif Op.LDG4 <= op <= Op.LDG7:
                push(instance.scalar(op - Op.LDG4 + 4))
                pc += 1
            elif Op.STG0 <= op <= Op.STG3:
                instance.set_scalar(op - Op.STG0, pop())
                pc += 1
            elif Op.STG4 <= op <= Op.STG7:
                instance.set_scalar(op - Op.STG4 + 4, pop())
                pc += 1
            elif op == Op.LDEI:
                push(instance.element(code[operand_start], code[operand_start + 1]))
                pc += 3
            elif op == Op.LDE:
                index = pop()
                push(instance.element(code[operand_start], index))
                pc += 2
            elif op == Op.STE:
                value = pop()
                index = pop()
                instance.set_element(code[operand_start], index, value)
                pc += 2
            elif op == Op.LDP:
                param = code[operand_start]
                if param >= len(params):
                    raise VmTrap(f"parameter {param} out of range")
                push(params[param])
                pc += 2
            elif op in (Op.INCG, Op.DECG):
                slot = code[operand_start]
                old = instance.scalar(slot)
                push(old)
                delta = 1 if op == Op.INCG else -1
                instance.set_scalar(slot, old + delta)
                pc += 2
            elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.BAND,
                        Op.BOR, Op.BXOR, Op.SHL, Op.SHR):
                right = pop()
                left = pop()
                push(self._binary(op, left, right))
                pc += 1
            elif op == Op.NEG:
                push(-pop())
                pc += 1
            elif op == Op.BINV:
                push(~pop())
                pc += 1
            elif op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE):
                right = pop()
                left = pop()
                push(1 if self._compare(op, left, right) else 0)
                pc += 1
            elif op == Op.LNOT:
                push(0 if pop() != 0 else 1)
                pc += 1
            elif op in (Op.JMP, Op.JMPS):
                width = 2 if op == Op.JMP else 1
                displacement = int.from_bytes(
                    code[operand_start : operand_start + width], "little", signed=True
                )
                pc += 1 + width + displacement
            elif op in (Op.JZ, Op.JNZ, Op.JZS, Op.JNZS):
                width = 2 if op in (Op.JZ, Op.JNZ) else 1
                displacement = int.from_bytes(
                    code[operand_start : operand_start + width], "little", signed=True
                )
                value = pop()
                taken = (value == 0) if op in (Op.JZ, Op.JZS) else (value != 0)
                pc += 1 + width + (displacement if taken else 0)
            elif op == Op.SIG:
                target = code[operand_start]
                symbol = code[operand_start + 1]
                argc = code[operand_start + 2]
                if argc > len(stack):
                    raise VmTrap("SIG argc exceeds stack depth")
                sig_args = tuple(stack[len(stack) - argc :])
                del stack[len(stack) - argc :]
                if signal_sink is not None:
                    signal_sink(target, symbol, sig_args)
                pc += 4
            elif op == Op.RETV:
                value = pop()
                if return_sink is not None:
                    return_sink(ReturnValue(scalar=value))
                pc += 1
            elif op == Op.RETA:
                slot = code[operand_start]
                if return_sink is not None:
                    return_sink(ReturnValue(array=instance.array(slot)))
                pc += 2
            else:  # pragma: no cover - all opcodes handled above
                raise VmTrap(f"unimplemented opcode {op.name}")

        return ExecutionResult(cycles=cycles, steps=steps)

    # ------------------------------------------------------------- operators
    @staticmethod
    def _binary(op: Op, left: int, right: int) -> int:
        if op == Op.ADD:
            return left + right
        if op == Op.SUB:
            return left - right
        if op == Op.MUL:
            return left * right
        if op == Op.DIV:
            return _cdiv(left, right)
        if op == Op.MOD:
            return _cmod(left, right)
        if op == Op.BAND:
            return left & right
        if op == Op.BOR:
            return left | right
        if op == Op.BXOR:
            return left ^ right
        if op == Op.SHL:
            return left << (right & 31)
        if op == Op.SHR:
            return left >> (right & 31)
        raise VmTrap(f"not a binary op: {op.name}")  # pragma: no cover

    @staticmethod
    def _compare(op: Op, left: int, right: int) -> bool:
        if op == Op.EQ:
            return left == right
        if op == Op.NE:
            return left != right
        if op == Op.LT:
            return left < right
        if op == Op.LE:
            return left <= right
        if op == Op.GT:
            return left > right
        return left >= right


__all__ = [
    "VirtualMachine",
    "DriverInstance",
    "ExecutionResult",
    "ReturnValue",
    "VmTrap",
]
