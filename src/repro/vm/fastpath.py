"""Pre-decoded threaded dispatch for the µPnP virtual machine.

The reference interpreter in :mod:`repro.vm.machine` re-decodes the
bytecode stream on every step: an :class:`~repro.dsl.bytecode.Op` enum
construction, operand slicing + ``int.from_bytes``, a cost-table lookup
and a ~40-arm dispatch chain, per instruction executed.  At fleet scale
that decode tax dominates the simulator's hot path.

This module translates a driver's code blob **once** — at first
execution after install — into a *threaded* program: a flat table with
one pre-compiled entry per byte offset, where each entry carries

* a small integer dispatch kind (a dozen generic entry shapes cover the
  whole ISA),
* the pre-decoded operands (constants sign-extended, slots resolved,
  per-slot store-truncation functions bound, SIG operands split),
* the pre-computed cycle cost from the active
  :class:`~repro.vm.cost.VmCostProfile`, and
* the *next byte offset(s)* — branch displacements are resolved to
  absolute offsets at translate time, so taken/not-taken become plain
  integer assignments.

Because the table has an entry for **every** byte offset (not just the
offsets a linear decode visits), a jump into the middle of what the
assembler considered an instruction behaves exactly like the reference
interpreter re-decoding from that offset — including the traps corrupt
images produce.  Slot/type validation that is static per image (bad
slot numbers, scalar/array confusion, constant indices out of bounds)
is folded into dedicated trap entries at translate time, preserving the
reference trap messages and the pop-before-trap ordering.

Translations are cached at module level keyed by ``(sha1(code), slots,
cost-profile fingerprint)``, so hot-update reinstalls of the same image
and every driver instance across a fleet share a single translation.
Each :class:`~repro.vm.machine.VirtualMachine` additionally keeps an
identity-keyed fast map so the steady-state lookup is one dict probe.

Correctness bar (enforced by ``tests/unit/test_vm_differential.py``):
identical cycle counts, step counts, signals, returns, global mutations
and trap messages versus the reference interpreter, for every opcode
and every trap path.
"""

from __future__ import annotations

import hashlib
import operator
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dsl.bytecode import OPERANDS, Op, operand_size
from repro.dsl.types import wrap32
from repro.vm.cost import VmCostProfile
from repro.vm.machine import ExecutionResult, ReturnValue, VmTrap, _cdiv, _cmod

# ------------------------------------------------------------- entry kinds
# Ordered by expected dynamic frequency in real driver code; the run
# loop's dispatch chain tests them in this order.
K_PUSH = 0    # (k, cost, value, next)
K_LDG = 1     # (k, cost, slot, next)
K_BIN = 2     # (k, cost, fn, next)
K_CMP = 3     # (k, cost, fn, next)
K_JZ = 4      # (k, cost, taken, fallthrough)
K_STG = 5     # (k, cost, slot, truncate, next)
K_JMP = 6     # (k, cost, target)            [also NOP]
K_JNZ = 7     # (k, cost, taken, fallthrough)
K_LDP = 8     # (k, cost, param, next)
K_UN = 9      # (k, cost, fn, next)
K_INCG = 10   # (k, cost, slot, truncate, delta, next)
K_LDE = 11    # (k, cost, slot, next)
K_STE = 12    # (k, cost, slot, truncate, next)
K_LDEI = 13   # (k, cost, slot, index, next)
K_DUP = 14    # (k, cost, next)
K_DROP = 15   # (k, cost, next)
K_SIG = 16    # (k, cost, target, symbol, argc, next)
K_RETV = 17   # (k, cost, next)
K_RETA = 18   # (k, cost, slot, next)
K_RET = 19    # (k, cost)
K_TRAP = 20   # (k, 0, message, pops-before-trap)
# uint32 slots store truncate() output (0..2**32-1); the reference
# interpreter's push() wraps those into the signed compute domain on
# load, so uint32 loads get dedicated wrapping variants — every other
# slot type's stored values already sit inside int32 range.
K_LDGW = 21   # (k, cost, slot, next)
K_LDEW = 22   # (k, cost, slot, next)
K_LDEIW = 23  # (k, cost, slot, index, next)
K_INCGW = 24  # (k, cost, slot, truncate, delta, next)

_OP_SIZE: Dict[int, int] = {op.value: operand_size(op) for op in Op}
_OP_BY_VALUE = dict(Op._value2member_map_)

_BINARY_FNS: Dict[Op, Callable[[int, int], int]] = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.DIV: _cdiv,
    Op.MOD: _cmod,
    Op.BAND: operator.and_,
    Op.BOR: operator.or_,
    Op.BXOR: operator.xor,
    Op.SHL: lambda a, b: a << (b & 31),
    Op.SHR: lambda a, b: a >> (b & 31),
}

_COMPARE_FNS: Dict[Op, Callable[[int, int], bool]] = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}

_UNARY_FNS: Dict[Op, Callable[[int], int]] = {
    Op.NEG: operator.neg,
    Op.BINV: operator.invert,
    Op.LNOT: lambda a: 0 if a != 0 else 1,
}

_SHORT_LDG = {Op.LDG0: 0, Op.LDG1: 1, Op.LDG2: 2, Op.LDG3: 3,
              Op.LDG4: 4, Op.LDG5: 5, Op.LDG6: 6, Op.LDG7: 7}
_SHORT_STG = {Op.STG0: 0, Op.STG1: 1, Op.STG2: 2, Op.STG3: 3,
              Op.STG4: 4, Op.STG5: 5, Op.STG6: 6, Op.STG7: 7}


class Translation:
    """One image's threaded program: an entry per byte offset."""

    __slots__ = ("table", "n")

    def __init__(self, table: List[tuple], n: int) -> None:
        self.table = table
        self.n = n


# ------------------------------------------------------------- translation
def _scalar_trap(slot: int, slots, pops: int) -> Optional[tuple]:
    """Static validation for scalar-slot access; None when the slot is OK."""
    if slot >= len(slots):
        return (K_TRAP, 0, f"slot {slot} out of range", pops)
    if slots[slot].is_array:
        return (K_TRAP, 0, f"slot {slot} is an array", pops)
    return None


def _array_trap(slot: int, slots, pops: int) -> Optional[tuple]:
    """Static validation for array-slot access; None when the slot is OK."""
    if slot >= len(slots):
        return (K_TRAP, 0, f"slot {slot} out of range", pops)
    if not slots[slot].is_array:
        return (K_TRAP, 0, f"slot {slot} is not an array", pops)
    return None


def _wraps_on_load(slot_def) -> bool:
    """True when stored values can exceed int32 (uint32 slots only)."""
    return slot_def.type.bits == 32 and not slot_def.type.signed


def _entry_for(op: Op, code: bytes, pos: int, cost: int, slots) -> tuple:
    """Compile the instruction at byte offset *pos* into one table entry."""
    nxt = pos + 1 + _OP_SIZE[op.value]
    a = pos + 1  # first operand byte

    if op is Op.RET:
        return (K_RET, cost)
    if op is Op.NOP:
        return (K_JMP, cost, nxt)
    if op is Op.PUSH0:
        return (K_PUSH, cost, 0, nxt)
    if op is Op.PUSH1:
        return (K_PUSH, cost, 1, nxt)
    if op in (Op.PUSH8, Op.PUSH16, Op.PUSH32):
        width = {Op.PUSH8: 1, Op.PUSH16: 2, Op.PUSH32: 4}[op]
        value = int.from_bytes(code[a:a + width], "little", signed=True)
        return (K_PUSH, cost, value, nxt)
    if op is Op.DUP:
        return (K_DUP, cost, nxt)
    if op is Op.DROP:
        return (K_DROP, cost, nxt)

    if op is Op.LDG or op in _SHORT_LDG:
        slot = code[a] if op is Op.LDG else _SHORT_LDG[op]
        trap = _scalar_trap(slot, slots, 0)
        if trap is not None:
            return trap
        kind = K_LDGW if _wraps_on_load(slots[slot]) else K_LDG
        return (kind, cost, slot, nxt)
    if op is Op.STG or op in _SHORT_STG:
        slot = code[a] if op is Op.STG else _SHORT_STG[op]
        trap = _scalar_trap(slot, slots, 1)
        if trap is not None:
            return trap
        return (K_STG, cost, slot, slots[slot].type.truncate, nxt)
    if op in (Op.INCG, Op.DECG):
        slot = code[a]
        trap = _scalar_trap(slot, slots, 0)
        if trap is not None:
            return trap
        delta = 1 if op is Op.INCG else -1
        kind = K_INCGW if _wraps_on_load(slots[slot]) else K_INCG
        return (kind, cost, slot, slots[slot].type.truncate, delta, nxt)
    if op is Op.LDE:
        slot = code[a]
        trap = _array_trap(slot, slots, 1)
        if trap is not None:
            return trap
        kind = K_LDEW if _wraps_on_load(slots[slot]) else K_LDE
        return (kind, cost, slot, nxt)
    if op is Op.STE:
        slot = code[a]
        trap = _array_trap(slot, slots, 2)
        if trap is not None:
            return trap
        return (K_STE, cost, slot, slots[slot].type.truncate, nxt)
    if op is Op.LDEI:
        slot, index = code[a], code[a + 1]
        trap = _array_trap(slot, slots, 0)
        if trap is not None:
            return trap
        if index >= slots[slot].length:
            return (K_TRAP, 0,
                    f"index {index} out of bounds for slot {slot}", 0)
        kind = K_LDEIW if _wraps_on_load(slots[slot]) else K_LDEI
        return (kind, cost, slot, index, nxt)
    if op is Op.LDP:
        return (K_LDP, cost, code[a], nxt)

    fn = _BINARY_FNS.get(op)
    if fn is not None:
        return (K_BIN, cost, fn, nxt)
    fn = _COMPARE_FNS.get(op)
    if fn is not None:
        return (K_CMP, cost, fn, nxt)
    fn = _UNARY_FNS.get(op)
    if fn is not None:
        return (K_UN, cost, fn, nxt)

    if op in (Op.JMP, Op.JMPS):
        width = 2 if op is Op.JMP else 1
        displacement = int.from_bytes(code[a:a + width], "little", signed=True)
        return (K_JMP, cost, pos + 1 + width + displacement)
    if op in (Op.JZ, Op.JNZ, Op.JZS, Op.JNZS):
        width = 2 if op in (Op.JZ, Op.JNZ) else 1
        displacement = int.from_bytes(code[a:a + width], "little", signed=True)
        taken = pos + 1 + width + displacement
        fall = pos + 1 + width
        kind = K_JZ if op in (Op.JZ, Op.JZS) else K_JNZ
        return (kind, cost, taken, fall)

    if op is Op.SIG:
        return (K_SIG, cost, code[a], code[a + 1], code[a + 2], nxt)
    if op is Op.RETV:
        return (K_RETV, cost, nxt)
    if op is Op.RETA:
        slot = code[a]
        return _array_trap(slot, slots, 0) or (K_RETA, cost, slot, nxt)

    raise AssertionError(f"unhandled opcode {op.name}")  # pragma: no cover


def translate(image, profile: VmCostProfile) -> Translation:
    """Translate *image*'s code blob into a threaded program.

    One entry per byte offset, so any jump target — aligned or not —
    dispatches identically to the reference interpreter decoding at
    that offset.
    """
    code = image.code
    slots = image.slots
    cost = profile.table
    n = len(code)
    table: List[tuple] = []
    for pos in range(n):
        byte = code[pos]
        op = _OP_BY_VALUE.get(byte)
        if op is None:
            table.append(
                (K_TRAP, 0, f"invalid opcode {byte:#04x} at pc {pos}", 0))
            continue
        if pos + 1 + _OP_SIZE[byte] > n:
            table.append(
                (K_TRAP, 0, f"truncated operands for {op.name} at pc {pos}", 0))
            continue
        table.append(_entry_for(op, code, pos, cost[op], slots))
    return Translation(table, n)


# ------------------------------------------------------------ shared cache
#: (sha1(code), slots, profile fingerprint) -> Translation.  Shared by
#: every VM so reinstalls and multi-instance fleets translate once.
_SHARED: Dict[tuple, Translation] = {}
#: id(profile) -> (profile, fingerprint); the strong profile reference
#: keeps the id stable for the lifetime of the cache entry.
_PROFILE_FPS: Dict[int, tuple] = {}


def _profile_fingerprint(profile: VmCostProfile) -> tuple:
    rec = _PROFILE_FPS.get(id(profile))
    if rec is None or rec[0] is not profile:
        fp = tuple(sorted((int(op), c) for op, c in profile.table.items()))
        _PROFILE_FPS[id(profile)] = (profile, fp)
        return fp
    return rec[1]


def shared_translation(image, profile: VmCostProfile) -> Translation:
    """The cached translation for (*image*, *profile*), translating once."""
    key = (hashlib.sha1(image.code).digest(), image.slots,
           _profile_fingerprint(profile))
    translation = _SHARED.get(key)
    if translation is None:
        translation = translate(image, profile)
        _SHARED[key] = translation
    return translation


def cache_size() -> int:
    """Number of distinct translations currently shared (for tests)."""
    return len(_SHARED)


def clear_cache() -> None:
    """Drop all shared translations (tests / benchmarks)."""
    _SHARED.clear()
    _PROFILE_FPS.clear()


# --------------------------------------------------------------- execution
def execute_fast(
    vm,
    instance,
    handler,
    args: Sequence[int],
    signal_sink,
    return_sink,
) -> ExecutionResult:
    """Threaded-dispatch execution; drop-in for the reference ``execute``."""
    image = instance.image
    cached = vm._translations.get(id(image))
    if cached is not None and cached[0] is image:
        translation = cached[1]
    else:
        translation = shared_translation(image, vm._profile)
        vm._translations[id(image)] = (image, translation)

    table = translation.table
    n = translation.n
    g = instance.globals
    params = [wrap32(int(a)) for a in args]
    nparams = len(params)
    stack: List[int] = []
    stack_limit = vm._stack_limit
    step_limit = vm._step_limit
    pc = handler.offset
    cycles = 0
    steps = 0

    while True:
        if pc < 0 or pc >= n:
            raise VmTrap(f"pc {pc} ran off the end of code")
        steps += 1
        if steps > step_limit:
            raise VmTrap("step limit exceeded (runaway handler)")
        e = table[pc]
        k = e[0]
        cycles += e[1]
        if k == 0:  # PUSH const
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(e[2])
            pc = e[3]
        elif k == 1:  # LDG
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]])
            pc = e[3]
        elif k == 2:  # binary arithmetic
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            v = e[2](left, right) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 3:  # comparison
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            stack.append(1 if e[2](left, right) else 0)
            pc = e[3]
        elif k == 4:  # JZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() == 0 else e[3]
        elif k == 5:  # STG
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop() & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[4]
        elif k == 6:  # JMP / NOP
            pc = e[2]
        elif k == 7:  # JNZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() != 0 else e[3]
        elif k == 8:  # LDP
            p = e[2]
            if p >= nparams:
                raise VmTrap(f"parameter {p} out of range")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(params[p])
            pc = e[3]
        elif k == 9:  # unary
            if not stack:
                raise VmTrap("operand stack underflow")
            v = e[2](stack.pop()) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 10:  # INCG / DECG
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(old)
            v = (old + e[4]) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[5]
        elif k == 11:  # LDE
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            stack.append(arr[index])
            pc = e[3]
        elif k == 12:  # STE
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v &= 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            arr[index] = e[3](v)
            pc = e[4]
        elif k == 13:  # LDEI
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]][e[3]])
            pc = e[4]
        elif k == 14:  # DUP
            if not stack:
                raise VmTrap("operand stack underflow")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(stack[-1])
            pc = e[2]
        elif k == 15:  # DROP
            if not stack:
                raise VmTrap("operand stack underflow")
            stack.pop()
            pc = e[2]
        elif k == 16:  # SIG
            argc = e[4]
            if argc > len(stack):
                raise VmTrap("SIG argc exceeds stack depth")
            if argc:
                sig_args = tuple(stack[len(stack) - argc:])
                del stack[len(stack) - argc:]
            else:
                sig_args = ()
            if signal_sink is not None:
                signal_sink(e[2], e[3], sig_args)
            pc = e[5]
        elif k == 17:  # RETV
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            if return_sink is not None:
                return_sink(ReturnValue(scalar=v))
            pc = e[2]
        elif k == 18:  # RETA
            if return_sink is not None:
                return_sink(ReturnValue(array=tuple(g[e[2]])))
            pc = e[3]
        elif k == 19:  # RET
            break
        elif k == 20:  # statically resolved fault at this offset
            if len(stack) < e[3]:
                raise VmTrap("operand stack underflow")
            raise VmTrap(e[2])
        elif k == 21:  # LDG, uint32 slot (wrap into compute domain)
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 22:  # LDE, uint32 slot
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v = arr[index]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 23:  # LDEI, uint32 slot
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]][e[3]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[4]
        elif k == 24:  # INCG/DECG, uint32 slot
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            pushed = old
            if pushed >= 0x80000000:
                pushed -= 0x100000000
            stack.append(pushed)
            v = (old + e[4]) & 0xFFFFFFFF
            g[e[2]] = e[3](v)
            pc = e[5]
        else:  # pragma: no cover - every kind handled above
            raise AssertionError(f"unknown entry kind {k}")

    return ExecutionResult(cycles=cycles, steps=steps)


__all__ = [
    "Translation",
    "translate",
    "shared_translation",
    "execute_fast",
    "cache_size",
    "clear_cache",
]
