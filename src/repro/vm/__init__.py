"""The µPnP execution environment (Section 4.2 of the paper).

Virtual machine, event router, native interconnect bindings, driver
manager and peripheral controller.
"""

from repro.vm.cost import DEFAULT_COST, VmCostProfile
from repro.vm.driver_manager import DriverManager, DriverManagerError
from repro.vm.fastpath import Translation, shared_translation, translate
from repro.vm.machine import (
    DriverInstance,
    ExecutionResult,
    ReturnValue,
    VirtualMachine,
    VmTrap,
)
from repro.vm.peripheral_controller import (
    IdentificationOutcome,
    PeripheralController,
)
from repro.vm.router import CallbackDelivery, EventRouter, RouterStats
from repro.vm.runtime import DriverRuntime

__all__ = [
    "DEFAULT_COST",
    "VmCostProfile",
    "DriverManager",
    "DriverManagerError",
    "DriverInstance",
    "ExecutionResult",
    "ReturnValue",
    "VirtualMachine",
    "VmTrap",
    "Translation",
    "translate",
    "shared_translation",
    "IdentificationOutcome",
    "PeripheralController",
    "CallbackDelivery",
    "EventRouter",
    "RouterStats",
    "DriverRuntime",
]
