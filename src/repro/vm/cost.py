"""Cycle-cost model of the µPnP virtual machine (§6.2 calibration).

The paper measures, on the 16 MHz ATMega128RFA1:

* average bytecode instruction execution: **39.7 µs** (= 635 cycles),
* ``push()`` stack operation: **11.1 µs** (= 178 cycles),
* ``pop()`` stack operation: **8.9 µs** (= 142 cycles),
* event-router dispatch: **77.79 µs** per event (= 1245 cycles).

Those magnitudes are what an interpreted 32-bit stack machine costs on
an 8-bit AVR: every stack cell is 4 bytes moved one byte at a time, and
arithmetic is a library call.  The per-opcode table below embeds the
measured push/pop costs in the stack opcodes and distributes the rest
so the *unweighted ISA average* matches the paper's 39.7 µs figure —
``tests/unit/test_vm_cost.py`` pins this calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.dsl.bytecode import Op
from repro.mcu.spec import ATMEGA128RFA1, McuSpec

#: Cycles to push one 32-bit value onto the operand stack (11.1 µs).
PUSH_CYCLES = 178
#: Cycles to pop one 32-bit value off the operand stack (8.9 µs).
POP_CYCLES = 142
#: Cycles for the event router to dispatch one event (77.79 µs).
ROUTER_DISPATCH_CYCLES = 1245

#: Fetch/decode overhead common to every instruction.
DISPATCH_CYCLES = 197

_DEFAULT_TABLE: Dict[Op, int] = {
    # Constants / stack: dominated by the push cost.
    Op.NOP: DISPATCH_CYCLES,
    Op.PUSH0: DISPATCH_CYCLES + PUSH_CYCLES,
    Op.PUSH1: DISPATCH_CYCLES + PUSH_CYCLES,
    Op.PUSH8: DISPATCH_CYCLES + PUSH_CYCLES + 12,
    Op.PUSH16: DISPATCH_CYCLES + PUSH_CYCLES + 20,
    Op.PUSH32: DISPATCH_CYCLES + PUSH_CYCLES + 36,
    Op.DUP: DISPATCH_CYCLES + POP_CYCLES + 2 * PUSH_CYCLES,
    Op.DROP: DISPATCH_CYCLES + POP_CYCLES,
    # Variable access: push/pop plus RAM addressing.
    Op.LDG: DISPATCH_CYCLES + PUSH_CYCLES + 40,
    Op.STG: DISPATCH_CYCLES + POP_CYCLES + 56,
    Op.LDE: DISPATCH_CYCLES + POP_CYCLES + PUSH_CYCLES + 90,
    Op.STE: DISPATCH_CYCLES + 2 * POP_CYCLES + 100,
    Op.LDP: DISPATCH_CYCLES + PUSH_CYCLES + 30,
    Op.INCG: DISPATCH_CYCLES + PUSH_CYCLES + 110,
    Op.DECG: DISPATCH_CYCLES + PUSH_CYCLES + 110,
    Op.LDEI: DISPATCH_CYCLES + PUSH_CYCLES + 70,
    Op.LDG0: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG1: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG2: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG3: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG4: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG5: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG6: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.LDG7: DISPATCH_CYCLES + PUSH_CYCLES + 16,
    Op.STG0: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG1: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG2: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG3: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG4: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG5: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG6: DISPATCH_CYCLES + POP_CYCLES + 24,
    Op.STG7: DISPATCH_CYCLES + POP_CYCLES + 24,
    # 32-bit arithmetic in software on an 8-bit core.
    Op.ADD: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 60,
    Op.SUB: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 60,
    Op.MUL: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 920,
    Op.DIV: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 2700,
    Op.MOD: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 2700,
    Op.NEG: DISPATCH_CYCLES + POP_CYCLES + PUSH_CYCLES + 40,
    Op.BAND: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 32,
    Op.BOR: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 32,
    Op.BXOR: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 32,
    Op.BINV: DISPATCH_CYCLES + POP_CYCLES + PUSH_CYCLES + 24,
    Op.SHL: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 560,
    Op.SHR: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 560,
    # Comparisons.
    Op.EQ: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 48,
    Op.NE: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 48,
    Op.LT: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 56,
    Op.LE: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 56,
    Op.GT: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 56,
    Op.GE: DISPATCH_CYCLES + 2 * POP_CYCLES + PUSH_CYCLES + 56,
    Op.LNOT: DISPATCH_CYCLES + POP_CYCLES + PUSH_CYCLES + 24,
    # Control flow.
    Op.JMP: DISPATCH_CYCLES + 60,
    Op.JZ: DISPATCH_CYCLES + POP_CYCLES + 70,
    Op.JNZ: DISPATCH_CYCLES + POP_CYCLES + 70,
    Op.JMPS: DISPATCH_CYCLES + 52,
    Op.JZS: DISPATCH_CYCLES + POP_CYCLES + 62,
    Op.JNZS: DISPATCH_CYCLES + POP_CYCLES + 62,
    # Events and completion.
    Op.SIG: DISPATCH_CYCLES + ROUTER_DISPATCH_CYCLES,
    Op.RETV: DISPATCH_CYCLES + POP_CYCLES + 380,
    Op.RETA: DISPATCH_CYCLES + 870,
    Op.RET: DISPATCH_CYCLES + 30,
}


@dataclass(frozen=True)
class VmCostProfile:
    """Per-opcode cycle costs plus derived timing helpers."""

    mcu: McuSpec = ATMEGA128RFA1
    table: Mapping[Op, int] = field(default_factory=lambda: dict(_DEFAULT_TABLE))
    router_dispatch_cycles: int = ROUTER_DISPATCH_CYCLES

    def cycles(self, op: Op) -> int:
        try:
            return self.table[op]
        except KeyError:
            raise KeyError(f"no cost defined for opcode {op.name}") from None

    def seconds(self, op: Op) -> float:
        return self.mcu.cycles_to_seconds(self.cycles(op))

    def average_instruction_cycles(self) -> float:
        """Unweighted mean over the whole ISA (the paper's §6.2 metric)."""
        return sum(self.table[op] for op in Op) / len(Op)

    def average_instruction_seconds(self) -> float:
        return self.mcu.cycles_to_seconds(self.average_instruction_cycles())

    @property
    def push_seconds(self) -> float:
        return self.mcu.cycles_to_seconds(PUSH_CYCLES)

    @property
    def pop_seconds(self) -> float:
        return self.mcu.cycles_to_seconds(POP_CYCLES)

    @property
    def router_dispatch_seconds(self) -> float:
        return self.mcu.cycles_to_seconds(self.router_dispatch_cycles)


DEFAULT_COST = VmCostProfile()

__all__ = [
    "VmCostProfile",
    "DEFAULT_COST",
    "PUSH_CYCLES",
    "POP_CYCLES",
    "ROUTER_DISPATCH_CYCLES",
    "DISPATCH_CYCLES",
]
