"""Per-driver runtime context: instance state, bindings, pending requests.

A :class:`DriverRuntime` is the living form of an installed driver on a
channel: the VM-visible global state, the native library bindings wired
to that channel's bus, and the queue of outstanding remote requests
whose replies arrive via the driver's ``return`` statement (§4.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_ERROR,
    HANDLER_KIND_EVENT,
)
from repro.dsl.symbols import name_for_id, well_known_id
from repro.vm.machine import DriverInstance, ReturnValue, VirtualMachine
from repro.vm.router import EventRouter

#: Callback invoked when a request completes: (value or None on ack-only).
RequestCallback = Callable[[Optional[ReturnValue]], None]


@dataclass
class DriverEventDelivery:
    """Router delivery that invokes one driver handler via the VM."""

    runtime: "DriverRuntime"
    kind: int
    name_id: int
    args: Tuple[int, ...] = ()
    after: Optional[Callable[[], None]] = None

    def execute(self) -> int:
        handler = self.runtime.instance.image.find_handler(self.kind, self.name_id)
        cycles = 0
        try:
            if handler is not None:
                result = self.runtime.vm.execute(
                    self.runtime.instance,
                    handler,
                    self.args,
                    signal_sink=self.runtime.on_signal,
                    return_sink=self.runtime.on_return,
                )
                cycles = result.cycles
            else:
                self.runtime.unhandled_events += 1
        finally:
            if self.after is not None:
                self.after()
        return cycles

    def describe(self) -> str:
        kind = "error" if self.kind == HANDLER_KIND_ERROR else "event"
        name = name_for_id(self.name_id, self.runtime.instance.image.local_names)
        return f"{self.runtime.label}.{kind}:{name}"


@dataclass
class NativeCommandDelivery:
    """Router delivery that invokes a native library command."""

    runtime: "DriverRuntime"
    lib_id: int
    command_index: int
    args: Tuple[int, ...] = ()

    def execute(self) -> int:
        binding = self.runtime.bindings.get(self.lib_id)
        if binding is None:
            self.runtime.unhandled_events += 1
            return 0
        return binding.invoke(self.command_index, self.args)

    def describe(self) -> str:
        return f"{self.runtime.label}.lib{self.lib_id}:cmd{self.command_index}"


class DriverRuntime:
    """One activated driver: state + bindings + request bookkeeping."""

    def __init__(
        self,
        image: DriverImage,
        bindings: Dict[int, "object"],
        router: EventRouter,
        vm: VirtualMachine,
        label: str = "",
    ) -> None:
        self.instance = DriverInstance(image)
        self.bindings = dict(bindings)
        self.router = router
        self.vm = vm
        self.label = label or f"driver-{image.device_id:08x}"
        self.active = False
        self.unhandled_events = 0
        self.unsolicited_returns = 0
        self._pending: Deque[RequestCallback] = deque()
        for binding in self.bindings.values():
            binding.claim(self)

    # -------------------------------------------------------------- lifecycle
    def activate(self) -> None:
        """Fire the driver's ``init`` event (§4.1 control flow)."""
        self.instance.reset()
        self.active = True
        self.post_event("init")

    def deactivate(self, after: Optional[Callable[[], None]] = None) -> None:
        """Fire ``destroy`` and release bindings once it has run."""
        self.active = False

        def _release() -> None:
            for binding in self.bindings.values():
                binding.release()
            while self._pending:
                self._pending.popleft()(None)
            if after is not None:
                after()

        self.post_event("destroy", after=_release)

    # ---------------------------------------------------------------- events
    def post_event(
        self,
        name: str,
        args: Tuple[int, ...] = (),
        *,
        error: bool = False,
        after: Optional[Callable[[], None]] = None,
    ) -> None:
        """Post a named event (or error) to this driver via the router."""
        name_id = self._resolve_name(name)
        kind = HANDLER_KIND_ERROR if error else HANDLER_KIND_EVENT
        self.router.post(
            DriverEventDelivery(self, kind, name_id, tuple(args), after),
            error=error,
        )

    def _resolve_name(self, name: str) -> int:
        known = well_known_id(name)
        if known is not None:
            return known
        try:
            local_index = self.instance.image.local_names.index(name)
        except ValueError:
            raise KeyError(f"driver {self.label} has no event name {name!r}") from None
        from repro.dsl.symbols import LOCAL_NAME_BASE

        return LOCAL_NAME_BASE + local_index

    # --------------------------------------------------------------- requests
    def has_handler(self, name: str) -> bool:
        known = well_known_id(name)
        if known is None:
            return False
        return self.instance.image.find_handler(HANDLER_KIND_EVENT, known) is not None

    def request_read(self, callback: RequestCallback) -> bool:
        """Post a ``read`` event; *callback* fires on the driver's return."""
        if not self.has_handler("read"):
            return False
        self._pending.append(callback)
        self.post_event("read")
        return True

    def request_write(self, value: int, callback: RequestCallback) -> bool:
        """Post a ``write`` event; acked when the handler completes
        (or earlier, with a value, if the driver returns one)."""
        if not self.has_handler("write"):
            return False
        state = {"done": False}

        def once(result: Optional[ReturnValue]) -> None:
            if not state["done"]:
                state["done"] = True
                callback(result)

        self._pending.append(once)

        def on_complete() -> None:
            if not state["done"]:
                try:
                    self._pending.remove(once)
                except ValueError:  # pragma: no cover - already completed
                    pass
                once(None)

        self.post_event("write", (value,), after=on_complete)
        return True

    # ------------------------------------------------------------------ sinks
    def on_signal(self, target: int, symbol: int, args: Tuple[int, ...]) -> None:
        """VM SIG sink: route to self or to a native library."""
        if target == 0:
            self.router.post(
                DriverEventDelivery(self, HANDLER_KIND_EVENT, symbol, args)
            )
            return
        self.router.post(NativeCommandDelivery(self, target, symbol, args))

    def on_return(self, value: ReturnValue) -> None:
        """VM return sink: complete the oldest pending request (FIFO)."""
        if self._pending:
            self._pending.popleft()(value)
        else:
            self.unsolicited_returns += 1

    @property
    def pending_requests(self) -> int:
        return len(self._pending)


__all__ = [
    "DriverRuntime",
    "DriverEventDelivery",
    "NativeCommandDelivery",
    "RequestCallback",
]
