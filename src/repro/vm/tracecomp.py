"""Superinstruction (trace) compilation on top of the threaded fastpath.

:mod:`repro.vm.fastpath` removed the per-step *decode* tax; what is
left in its run loop is per-step *dispatch* tax — a table index, a
kind test chain, and stack push/pop traffic through list methods for
every instruction retired.  This module removes most of that too, for
the straight-line runs that dominate hot driver code: it folds each
basic block of a translated image into one **fused Python closure**
(a superinstruction), compiled with :func:`exec` from generated
source.  Inside a fused block

* the operand stack is *virtualized*: values flow through local
  temporaries, and the real stack list is only touched for the
  block's net consumption (pops) and net production (a final
  ``extend``), not for every intermediate push/pop;
* constants, slot numbers, and branch targets are baked into the
  source, so a block executes as straight-line local-variable
  arithmetic with zero dispatch.

Trap-for-trap parity is preserved by construction:

* A **prologue guard** checks the worst-case stack deficit and growth
  of the whole block against the entry stack depth *before any side
  effect*.  If the block would overflow or underflow anywhere, the
  closure returns ``None`` and the caller re-executes the block
  per-entry through the original table entries, trapping at exactly
  the instruction — and with exactly the message — the reference
  interpreter would.  (The guard is exact, not conservative: the
  virtual-stack simulation tracks the same depth trajectory the real
  stack would follow, so the fused path is taken whenever and only
  whenever no stack trap occurs.)
* Runtime faults that are *not* stack-shape faults (division by zero,
  dynamic array indices, parameter range) are raised inline mid-block
  with the reference messages; earlier side effects stand, exactly as
  under stepping.
* The caller checks the block's step count against the remaining step
  budget first, so step-limit traps also fall back to per-entry
  execution and fire at the precise instruction.

Fused blocks are keyed into the table as ``K_FUSED`` entries **only at
basic-block leader offsets** (handler entries and branch targets,
found by BFS): every other offset keeps its original entry, so jumps
into block middles — and the per-entry fallback — behave identically
to the plain fastpath.  A hot self-loop (countdown body ending in
JNZS) therefore costs one closure call per iteration.

Traced translations are cached alongside the plain ones, keyed by
``(sha1(code), slots, cost-profile fingerprint)``; the per-block
closures bake no per-VM state (the stack limit is an argument), so a
single compilation serves every VM and every fleet shard in process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dsl.bytecode import Op
from repro.dsl.types import wrap32
from repro.vm.cost import VmCostProfile
from repro.vm.fastpath import (
    K_BIN, K_CMP, K_DROP, K_DUP, K_INCG, K_INCGW, K_JMP, K_JNZ, K_JZ,
    K_LDE, K_LDEI, K_LDEIW, K_LDEW, K_LDG, K_LDGW, K_LDP, K_PUSH, K_RET,
    K_RETA, K_RETV, K_SIG, K_STE, K_STG, K_TRAP, K_UN, Translation,
    _BINARY_FNS, _COMPARE_FNS, _UNARY_FNS, _profile_fingerprint,
    shared_translation,
)
from repro.vm.machine import ExecutionResult, ReturnValue, VmTrap, _cdiv, _cmod

#: Fused-block entry: (K_FUSED, total_cycles, closure, n_steps, original).
#: ``closure(stack, g, params, nparams, stack_limit)`` returns the next
#: pc, or None when the prologue guard demands per-entry fallback.
K_FUSED = 25

#: Fuse only blocks of at least this many instructions; shorter runs
#: gain nothing over the threaded dispatch they replace.
MIN_FUSE_LEN = 3

# Source templates for the operator objects the fastpath entries carry.
_BIN_SRC: Dict[object, str] = {
    _BINARY_FNS[Op.ADD]: "{a} + {b}",
    _BINARY_FNS[Op.SUB]: "{a} - {b}",
    _BINARY_FNS[Op.MUL]: "{a} * {b}",
    _BINARY_FNS[Op.DIV]: "_cdiv({a}, {b})",
    _BINARY_FNS[Op.MOD]: "_cmod({a}, {b})",
    _BINARY_FNS[Op.BAND]: "{a} & {b}",
    _BINARY_FNS[Op.BOR]: "{a} | {b}",
    _BINARY_FNS[Op.BXOR]: "{a} ^ {b}",
    _BINARY_FNS[Op.SHL]: "{a} << ({b} & 31)",
    _BINARY_FNS[Op.SHR]: "{a} >> ({b} & 31)",
}
_CMP_SRC: Dict[object, str] = {
    _COMPARE_FNS[Op.EQ]: "==",
    _COMPARE_FNS[Op.NE]: "!=",
    _COMPARE_FNS[Op.LT]: "<",
    _COMPARE_FNS[Op.LE]: "<=",
    _COMPARE_FNS[Op.GT]: ">",
    _COMPARE_FNS[Op.GE]: ">=",
}
_UN_SRC: Dict[object, str] = {
    _UNARY_FNS[Op.NEG]: "-{a}",
    _UNARY_FNS[Op.BINV]: "~{a}",
    _UNARY_FNS[Op.LNOT]: "(0 if {a} != 0 else 1)",
}

#: Entry kinds a fused block may contain (branch terminators aside).
_STRAIGHT = frozenset((
    K_PUSH, K_LDG, K_BIN, K_CMP, K_STG, K_LDP, K_UN, K_INCG, K_LDE,
    K_STE, K_LDEI, K_DUP, K_DROP, K_LDGW, K_LDEW, K_LDEIW, K_INCGW,
))
#: Index of the fall-through/next-pc element per straight-line kind.
_NEXT_AT = {
    K_PUSH: 3, K_LDG: 3, K_BIN: 3, K_CMP: 3, K_STG: 4, K_LDP: 3,
    K_UN: 3, K_INCG: 5, K_LDE: 3, K_STE: 4, K_LDEI: 4, K_DUP: 2,
    K_DROP: 2, K_LDGW: 3, K_LDEW: 3, K_LDEIW: 4, K_INCGW: 5,
}

_COMPILE_STATS = {"images": 0, "blocks": 0, "instructions": 0}


class _BlockCompiler:
    """Generates the source of one fused-block closure."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.virt: List[str] = []   # expression strings, bottom -> top
        self.depth = 0              # net stack height vs block entry
        self.min_depth = 0
        self.max_depth = 0
        self._tmp = 0

    def temp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def vpush(self, expr: str) -> None:
        self.virt.append(expr)
        self.depth += 1
        if self.depth > self.max_depth:
            self.max_depth = self.depth

    def vpop(self) -> str:
        self.depth -= 1
        if self.depth < self.min_depth:
            self.min_depth = self.depth
        if self.virt:
            return self.virt.pop()
        t = self.temp()
        self.lines.append(f"{t} = stack.pop()")
        return t

    def wrap(self, expr: str) -> str:
        """Emit the int32 wrap of *expr* into a temp (the fastpath's
        ``& 0xFFFFFFFF`` + sign-fold sequence)."""
        t = self.temp()
        self.lines.append(f"{t} = ({expr}) & 0xFFFFFFFF")
        self.lines.append(f"if {t} >= 0x80000000: {t} -= 0x100000000")
        return t

    def signfold(self, expr: str) -> str:
        """Emit the uint32 load fold (value already in 0..2**32-1)."""
        t = self.temp()
        self.lines.append(f"{t} = {expr}")
        self.lines.append(f"if {t} >= 0x80000000: {t} -= 0x100000000")
        return t

    def flush(self) -> None:
        """Push every live virtual value back onto the real stack."""
        if not self.virt:
            return
        if len(self.virt) == 1:
            self.lines.append(f"stack.append({self.virt[0]})")
        else:
            self.lines.append(f"stack.extend(({', '.join(self.virt)}))")
        self.virt = []


def _compile_block(table: List[tuple], leader: int, leaders: frozenset,
                   consts: Dict[str, object]) -> Optional[tuple]:
    """Compile the basic block at *leader*; None when too short to fuse.

    Returns the ``K_FUSED`` table entry.  *consts* collects the
    non-literal objects (per-slot truncate functions) the generated
    source references by name; it is the exec-namespace of every block
    in the image, shared so identical slots bind once.
    """
    c = _BlockCompiler()
    pc = leader
    n_steps = 0
    cycles = 0
    tail = ""

    while True:
        e = table[pc]
        k = e[0]
        if k in _STRAIGHT:
            cycles += e[1]
            n_steps += 1
            _emit(c, e, k, consts)
            pc = e[_NEXT_AT[k]]
            if pc in leaders or pc < 0 or pc >= len(table):
                c.flush()
                tail = f"return {pc}"
                break
            continue
        if k == K_JMP:
            cycles += e[1]
            n_steps += 1
            c.flush()
            tail = f"return {e[2]}"
            break
        if k in (K_JZ, K_JNZ):
            cycles += e[1]
            n_steps += 1
            cond = c.vpop()
            c.flush()
            rel = "==" if k == K_JZ else "!="
            tail = f"return {e[2]} if {cond} {rel} 0 else {e[3]}"
            break
        # SIG / RETV / RETA / RET / TRAP (and anything new): end the
        # block here; the run loop executes the terminator per-entry.
        c.flush()
        tail = f"return {pc}"
        break

    if n_steps < MIN_FUSE_LEN:
        return None

    deficit = -c.min_depth
    name = f"_fused_{leader}"
    src_lines = [f"def {name}(stack, g, params, nparams, limit):",
                 "    n = len(stack)"]
    guard = []
    if deficit:
        guard.append(f"n < {deficit}")
    if c.max_depth > 0:
        guard.append(f"n + {c.max_depth} > limit")
    if guard:
        src_lines.append(f"    if {' or '.join(guard)}: return None")
    src_lines.extend(f"    {line}" for line in c.lines)
    src_lines.append(f"    {tail}")
    code = compile("\n".join(src_lines), f"<fused block @{leader}>", "exec")
    ns = dict(consts)
    exec(code, ns)
    return (K_FUSED, cycles, ns[name], n_steps, table[leader])


def _const_name(consts: Dict[str, object], obj: object) -> str:
    """Bind *obj* into the exec namespace, reusing an existing binding."""
    for known, val in consts.items():
        if val is obj:
            return known
    name = f"C{len(consts)}"
    consts[name] = obj
    return name


def _emit(c: _BlockCompiler, e: tuple, k: int,
          consts: Dict[str, object]) -> None:
    """Emit the source for one straight-line entry (semantics mirror
    :func:`repro.vm.fastpath.execute_fast` arm for arm)."""
    if k == K_PUSH:
        c.vpush(repr(e[2]))
    elif k == K_LDG:
        t = c.temp()
        c.lines.append(f"{t} = g[{e[2]}]")
        c.vpush(t)
    elif k == K_LDGW:
        c.vpush(c.signfold(f"g[{e[2]}]"))
    elif k == K_BIN:
        b = c.vpop()
        a = c.vpop()
        src = _BIN_SRC[e[2]].format(a=a, b=b)
        c.vpush(c.wrap(src))
    elif k == K_CMP:
        b = c.vpop()
        a = c.vpop()
        t = c.temp()
        c.lines.append(f"{t} = 1 if {a} {_CMP_SRC[e[2]]} {b} else 0")
        c.vpush(t)
    elif k == K_STG:
        v = c.wrap(c.vpop())
        fn = _const_name(consts, e[3])
        c.lines.append(f"g[{e[2]}] = {fn}({v})")
    elif k == K_LDP:
        p = e[2]
        c.lines.append(
            f"if {p} >= nparams: "
            f"raise VmTrap('parameter {p} out of range')")
        t = c.temp()
        c.lines.append(f"{t} = params[{p}]")
        c.vpush(t)
    elif k == K_UN:
        a = c.vpop()
        c.vpush(c.wrap(_UN_SRC[e[2]].format(a=a)))
    elif k == K_INCG:
        slot, fn = e[2], _const_name(consts, e[3])
        old = c.temp()
        c.lines.append(f"{old} = g[{slot}]")
        c.vpush(old)
        v = c.wrap(f"{old} + {e[4]}")
        c.lines.append(f"g[{slot}] = {fn}({v})")
    elif k == K_INCGW:
        slot, fn = e[2], _const_name(consts, e[3])
        old = c.temp()
        c.lines.append(f"{old} = g[{slot}]")
        c.vpush(c.signfold(old))
        v = c.temp()
        c.lines.append(f"{v} = ({old} + {e[4]}) & 0xFFFFFFFF")
        c.lines.append(f"g[{slot}] = {fn}({v})")
    elif k in (K_LDE, K_LDEW):
        slot = e[2]
        idx = c.vpop()
        arr = c.temp()
        c.lines.append(f"{arr} = g[{slot}]")
        c.lines.append(
            f"if {idx} < 0 or {idx} >= len({arr}): raise VmTrap("
            f"'index %s out of bounds for slot {slot}' % ({idx},))")
        load = f"{arr}[{idx}]"
        c.vpush(c.signfold(load) if k == K_LDEW else _load(c, load))
    elif k == K_STE:
        slot, fn = e[2], _const_name(consts, e[3])
        v = c.vpop()
        idx = c.vpop()
        arr = c.temp()
        c.lines.append(f"{arr} = g[{slot}]")
        c.lines.append(
            f"if {idx} < 0 or {idx} >= len({arr}): raise VmTrap("
            f"'index %s out of bounds for slot {slot}' % ({idx},))")
        w = c.wrap(v)
        c.lines.append(f"{arr}[{idx}] = {fn}({w})")
    elif k == K_LDEI:
        c.vpush(_load(c, f"g[{e[2]}][{e[3]}]"))
    elif k == K_LDEIW:
        c.vpush(c.signfold(f"g[{e[2]}][{e[3]}]"))
    elif k == K_DUP:
        a = c.vpop()
        c.vpush(a)
        c.vpush(a)
    elif k == K_DROP:
        c.vpop()
    else:  # pragma: no cover - _STRAIGHT and _emit kept in lockstep
        raise AssertionError(f"unfusable kind {k}")


def _load(c: _BlockCompiler, expr: str) -> str:
    t = c.temp()
    c.lines.append(f"{t} = {expr}")
    return t


def compile_traces(translation: Translation, image,
                   heat: Optional[Sequence[int]] = None,
                   min_heat: int = 1) -> Translation:
    """Return a copy of *translation* with fused entries at hot leaders.

    Leaders are handler entry offsets plus every branch target/arm
    reachable from them (BFS over the threaded table).  With *heat* —
    a per-byte-offset hit array as recorded by
    :mod:`repro.profile.vmheat` — only leaders whose counter reaches
    *min_heat* are fused; without it every eligible leader is, which
    is the right default when no profile has been captured yet.
    """
    table = translation.table
    n = translation.n
    leaders = set()
    seen = set()
    work = [h.offset for h in image.handlers]
    for off in work:
        leaders.add(off)
    while work:
        pc = work.pop()
        while 0 <= pc < n and pc not in seen:
            seen.add(pc)
            e = table[pc]
            k = e[0]
            if k in _STRAIGHT:
                pc = e[_NEXT_AT[k]]
                continue
            succs = ()
            if k == K_JMP:
                succs = (e[2],)
            elif k in (K_JZ, K_JNZ):
                succs = (e[2], e[3])
            elif k == K_SIG:
                succs = (e[5],)
            elif k == K_RETV:
                succs = (e[2],)
            elif k == K_RETA:
                succs = (e[3],)
            # K_RET / K_TRAP end the walk.
            for s in succs:
                if 0 <= s < n:
                    leaders.add(s)
                    if s not in seen:
                        work.append(s)
            break

    frozen = frozenset(leaders)
    fused_table = list(table)
    consts: Dict[str, object] = {
        "VmTrap": VmTrap, "_cdiv": _cdiv, "_cmod": _cmod,
    }
    blocks = 0
    instructions = 0
    for leader in sorted(frozen):
        if not 0 <= leader < n:
            continue
        if heat is not None and (leader >= len(heat)
                                 or heat[leader] < min_heat):
            continue
        entry = _compile_block(table, leader, frozen, consts)
        if entry is not None:
            fused_table[leader] = entry
            blocks += 1
            instructions += entry[3]
    _COMPILE_STATS["images"] += 1
    _COMPILE_STATS["blocks"] += blocks
    _COMPILE_STATS["instructions"] += instructions
    return Translation(fused_table, n)


# ------------------------------------------------------------ shared cache
_TRACED: Dict[tuple, Translation] = {}


def shared_traced_translation(image, profile: VmCostProfile) -> Translation:
    """Cached traced translation, layered on the plain shared cache."""
    import hashlib

    key = (hashlib.sha1(image.code).digest(), image.slots,
           _profile_fingerprint(profile))
    translation = _TRACED.get(key)
    if translation is None:
        translation = compile_traces(
            shared_translation(image, profile), image)
        _TRACED[key] = translation
    return translation


def trace_stats() -> dict:
    """Cumulative compilation counters (benchmarks / CI smoke)."""
    return dict(_COMPILE_STATS, cached=len(_TRACED))


def clear_traces() -> None:
    _TRACED.clear()
    for k in _COMPILE_STATS:
        _COMPILE_STATS[k] = 0


# --------------------------------------------------------------- execution
def execute_traced(
    vm,
    instance,
    handler,
    args: Sequence[int],
    signal_sink,
    return_sink,
) -> ExecutionResult:
    """Trace-compiled execution; drop-in for ``execute_fast``.

    The dispatch chain below is a verbatim copy of
    :func:`repro.vm.fastpath.execute_fast`'s (kept in lockstep by the
    differential suite) with one addition at the loop head: a fused
    entry runs its whole block in a single closure call when the step
    budget allows and the prologue guard passes, and otherwise falls
    back to its original entry so traps fire per-instruction.
    """
    image = instance.image
    cached = vm._translations.get(id(image))
    if cached is not None and cached[0] is image:
        translation = cached[1]
    else:
        translation = shared_traced_translation(image, vm._profile)
        vm._translations[id(image)] = (image, translation)

    table = translation.table
    n = translation.n
    g = instance.globals
    params = [wrap32(int(a)) for a in args]
    nparams = len(params)
    stack: List[int] = []
    stack_limit = vm._stack_limit
    step_limit = vm._step_limit
    pc = handler.offset
    cycles = 0
    steps = 0

    while True:
        if pc < 0 or pc >= n:
            raise VmTrap(f"pc {pc} ran off the end of code")
        e = table[pc]
        k = e[0]
        if k == 25:  # fused block
            if steps + e[3] <= step_limit:
                npc = e[2](stack, g, params, nparams, stack_limit)
                if npc is not None:
                    steps += e[3]
                    cycles += e[1]
                    pc = npc
                    continue
            e = e[4]
            k = e[0]
        steps += 1
        if steps > step_limit:
            raise VmTrap("step limit exceeded (runaway handler)")
        cycles += e[1]
        if k == 0:  # PUSH const
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(e[2])
            pc = e[3]
        elif k == 1:  # LDG
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]])
            pc = e[3]
        elif k == 2:  # binary arithmetic
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            v = e[2](left, right) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 3:  # comparison
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            right = stack.pop()
            left = stack.pop()
            stack.append(1 if e[2](left, right) else 0)
            pc = e[3]
        elif k == 4:  # JZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() == 0 else e[3]
        elif k == 5:  # STG
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop() & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[4]
        elif k == 6:  # JMP / NOP
            pc = e[2]
        elif k == 7:  # JNZ
            if not stack:
                raise VmTrap("operand stack underflow")
            pc = e[2] if stack.pop() != 0 else e[3]
        elif k == 8:  # LDP
            p = e[2]
            if p >= nparams:
                raise VmTrap(f"parameter {p} out of range")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(params[p])
            pc = e[3]
        elif k == 9:  # unary
            if not stack:
                raise VmTrap("operand stack underflow")
            v = e[2](stack.pop()) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 10:  # INCG / DECG
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(old)
            v = (old + e[4]) & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            g[e[2]] = e[3](v)
            pc = e[5]
        elif k == 11:  # LDE
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            stack.append(arr[index])
            pc = e[3]
        elif k == 12:  # STE
            if len(stack) < 2:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v &= 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 0x100000000
            arr[index] = e[3](v)
            pc = e[4]
        elif k == 13:  # LDEI
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(g[e[2]][e[3]])
            pc = e[4]
        elif k == 14:  # DUP
            if not stack:
                raise VmTrap("operand stack underflow")
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            stack.append(stack[-1])
            pc = e[2]
        elif k == 15:  # DROP
            if not stack:
                raise VmTrap("operand stack underflow")
            stack.pop()
            pc = e[2]
        elif k == 16:  # SIG
            argc = e[4]
            if argc > len(stack):
                raise VmTrap("SIG argc exceeds stack depth")
            if argc:
                sig_args = tuple(stack[len(stack) - argc:])
                del stack[len(stack) - argc:]
            else:
                sig_args = ()
            if signal_sink is not None:
                signal_sink(e[2], e[3], sig_args)
            pc = e[5]
        elif k == 17:  # RETV
            if not stack:
                raise VmTrap("operand stack underflow")
            v = stack.pop()
            if return_sink is not None:
                return_sink(ReturnValue(scalar=v))
            pc = e[2]
        elif k == 18:  # RETA
            if return_sink is not None:
                return_sink(ReturnValue(array=tuple(g[e[2]])))
            pc = e[3]
        elif k == 19:  # RET
            break
        elif k == 20:  # statically resolved fault at this offset
            if len(stack) < e[3]:
                raise VmTrap("operand stack underflow")
            raise VmTrap(e[2])
        elif k == 21:  # LDG, uint32 slot (wrap into compute domain)
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 22:  # LDE, uint32 slot
            if not stack:
                raise VmTrap("operand stack underflow")
            index = stack.pop()
            arr = g[e[2]]
            if index < 0 or index >= len(arr):
                raise VmTrap(f"index {index} out of bounds for slot {e[2]}")
            v = arr[index]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[3]
        elif k == 23:  # LDEI, uint32 slot
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            v = g[e[2]][e[3]]
            if v >= 0x80000000:
                v -= 0x100000000
            stack.append(v)
            pc = e[4]
        elif k == 24:  # INCG/DECG, uint32 slot
            old = g[e[2]]
            if len(stack) >= stack_limit:
                raise VmTrap("operand stack overflow")
            pushed = old
            if pushed >= 0x80000000:
                pushed -= 0x100000000
            stack.append(pushed)
            v = (old + e[4]) & 0xFFFFFFFF
            g[e[2]] = e[3](v)
            pc = e[5]
        else:  # pragma: no cover - every kind handled above
            raise AssertionError(f"unknown entry kind {k}")

    return ExecutionResult(cycles=cycles, steps=steps)


__all__ = [
    "K_FUSED",
    "MIN_FUSE_LEN",
    "compile_traces",
    "shared_traced_translation",
    "execute_traced",
    "trace_stats",
    "clear_traces",
]
