"""The µPnP event router (§4.2).

The router exchanges events between drivers, native interconnect
libraries and the network stack.  It owns two queues: a FIFO for
regular events and a priority queue for error messages (§4.1 — "Regular
events are handled on a first-come, first-served basis, while error
events are prioritized").  Handlers run to completion; posting an event
returns immediately to the originator.

Each dispatch charges the simulated MCU the measured router cost
(77.79 µs) plus the executed handler's own cycle count, so everything
that happens downstream of an event is correctly placed in simulated
time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Protocol

from repro.hw.power import EnergyMeter
from repro.mcu.spec import McuSpec
from repro.sim.kernel import Simulator, ns_from_s
from repro.vm.cost import DEFAULT_COST, VmCostProfile
from repro.vm.machine import VmTrap


class Delivery(Protocol):
    """Something the router can dispatch: runs and reports cycles."""

    def execute(self) -> int: ...

    def describe(self) -> str: ...


@dataclass
class CallbackDelivery:
    """Wraps a plain callable as a delivery (used by the network stack)."""

    callback: Callable[[], None]
    cycles: int = 400
    label: str = "callback"

    def execute(self) -> int:
        self.callback()
        return self.cycles

    def describe(self) -> str:
        return self.label


@dataclass
class RouterStats:
    """Observable router behaviour, for tests and benchmarks."""

    posted: int = 0
    dispatched: int = 0
    errors_dispatched: int = 0
    traps: List[str] = field(default_factory=list)
    busy_seconds: float = 0.0
    #: Total VM + router cycles retired by dispatched deliveries.
    cycles: int = 0


class EventRouter:
    """FIFO + priority event dispatch on top of the simulator."""

    def __init__(
        self,
        sim: Simulator,
        *,
        profile: VmCostProfile = DEFAULT_COST,
        meter: Optional[EnergyMeter] = None,
        queue_limit: int = 64,
        label: str = "",
    ) -> None:
        self._sim = sim
        self._profile = profile
        self._meter = meter
        self._queue_limit = queue_limit
        self._fifo: Deque[Delivery] = deque()
        self._priority: Deque[Delivery] = deque()
        self._busy = False
        #: Owning node's label; names this router's trace track.
        self.label = label
        self.stats = RouterStats()
        self.dropped = 0

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def profile(self) -> VmCostProfile:
        return self._profile

    @property
    def queue_depth(self) -> int:
        return len(self._fifo) + len(self._priority)

    # ---------------------------------------------------------------- posting
    def post(self, delivery: Delivery, *, error: bool = False) -> bool:
        """Queue *delivery*; control returns to the caller immediately.

        Returns False (and counts a drop) when the queue is full — the
        bounded-queue behaviour of a real embedded router.
        """
        if self.queue_depth >= self._queue_limit:
            self.dropped += 1
            return False
        if error:
            self._priority.append(delivery)
        else:
            self._fifo.append(delivery)
        tracer = self._sim.tracer
        if tracer is not None and tracer.current is not None:
            # Remember which causal trace queued this delivery; the
            # dispatch event fires under whatever context scheduled the
            # previous _done, so the delivery carries its own.
            delivery._obs_trace = tracer.current  # type: ignore[attr-defined]
        self.stats.posted += 1
        self._pump()
        return True

    # ------------------------------------------------------------ dispatching
    def _pump(self) -> None:
        if self._busy or self.queue_depth == 0:
            return
        self._busy = True
        self._sim.call_soon(self._dispatch_next, name="router-dispatch")

    def _dispatch_next(self) -> None:
        if self.queue_depth == 0:  # pragma: no cover - defensive
            self._busy = False
            return
        from_priority = bool(self._priority)
        delivery = self._priority.popleft() if from_priority else self._fifo.popleft()

        tracer = self._sim.tracer
        if tracer is not None:
            tracer.current = getattr(delivery, "_obs_trace", None)

        cycles = self._profile.router_dispatch_cycles
        try:
            handler_cycles = delivery.execute()
            cycles += handler_cycles
        except VmTrap as trap:
            handler_cycles = 0
            self.stats.traps.append(f"{delivery.describe()}: {trap}")
        self.stats.dispatched += 1
        self.stats.cycles += cycles
        if from_priority:
            self.stats.errors_dispatched += 1

        duration_s = self._profile.mcu.cycles_to_seconds(cycles)
        if tracer is not None and tracer.enabled_for("vm"):
            tracer.complete(
                delivery.describe(), "vm",
                tracer.track(f"{self.label or 'router'} vm"),
                ns_from_s(duration_s),
                args={"cycles": cycles,
                      "router_cycles": self._profile.router_dispatch_cycles,
                      "handler_cycles": handler_cycles,
                      "priority": from_priority},
            )
        self.stats.busy_seconds += duration_s
        if self._meter is not None:
            self._meter.add_draw("mcu", self._profile.mcu.active_draw, duration_s)

        # The router stays busy until the handler completes, then takes
        # the next event (run-to-completion semantics).
        def _done() -> None:
            self._busy = False
            self._pump()

        self._sim.schedule(ns_from_s(duration_s), _done, name="router-done")


__all__ = ["EventRouter", "RouterStats", "Delivery", "CallbackDelivery"]
