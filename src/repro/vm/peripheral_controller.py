"""The peripheral controller (§4.2): identification software routine.

Interfaces with the µPnP control board.  A connect/disconnect interrupt
powers the board and starts an identification round; when the round's
electrical duration has elapsed on the simulator, the decoded channel
map is diffed against the previous state and the outcome (peripherals
added/removed) is reported to the Thing.  Interrupts arriving while a
round is in flight coalesce into one follow-up round — exactly the
debouncing a real implementation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hw.control_board import ControlBoard, IdentificationReport
from repro.hw.device_id import DeviceId
from repro.hw.power import EnergyMeter
from repro.mcu.spec import ATMEGA128RFA1, McuSpec
from repro.sim.kernel import Simulator, ns_from_s


@dataclass(frozen=True)
class IdentificationOutcome:
    """Result of one identification round, as seen by the Thing."""

    report: IdentificationReport
    connected: Dict[int, DeviceId]           # current channel -> id map
    added: Dict[int, DeviceId]               # newly appeared
    removed: Dict[int, DeviceId]             # newly gone
    completed_at_s: float


ChangeListener = Callable[[IdentificationOutcome], None]


class PeripheralController:
    """Runs the hardware identification algorithm on plug interrupts."""

    def __init__(
        self,
        sim: Simulator,
        board: ControlBoard,
        *,
        mcu: McuSpec = ATMEGA128RFA1,
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        self._sim = sim
        self._board = board
        self._mcu = mcu
        self._meter = meter
        self._known: Dict[int, DeviceId] = {}
        self._listeners: List[ChangeListener] = []
        self._identifying = False
        self._rerun_needed = False
        self._epoch = 0
        self.rounds_run = 0
        board.on_interrupt(self._on_interrupt)

    @property
    def board(self) -> ControlBoard:
        return self._board

    def known_peripherals(self) -> Dict[int, DeviceId]:
        """Last identified channel -> device id map."""
        return dict(self._known)

    def on_change(self, listener: ChangeListener) -> None:
        """Register for identification outcomes (the Thing subscribes)."""
        self._listeners.append(listener)

    # -------------------------------------------------------------- interrupt
    def _on_interrupt(self, channel: int, connected: bool) -> None:
        del channel, connected  # the round re-scans every channel anyway
        if self._identifying:
            self._rerun_needed = True
            return
        self._start_round()

    def trigger(self) -> None:
        """Force an identification round (e.g. at boot)."""
        if self._identifying:
            self._rerun_needed = True
        else:
            self._start_round()

    def reset(self) -> None:
        """Forget every identified peripheral (power loss wipes RAM).

        No removal callbacks fire — the node is dead, nobody is
        listening.  The next round (boot :meth:`trigger`) reports every
        still-attached board as newly added, replaying the full plug
        pipeline from scratch.
        """
        self._known = {}
        self._rerun_needed = False
        self._identifying = False
        # Invalidate any round already in flight: its completion event
        # belongs to the pre-crash epoch and must report nothing.
        self._epoch += 1

    def _start_round(self) -> None:
        self._identifying = True
        epoch = self._epoch
        report = self._board.run_identification()
        self.rounds_run += 1
        if self._meter is not None:
            # The MCU busy-waits on the identification GPIOs for the round.
            self._meter.add_draw("mcu", self._mcu.active_draw, report.total_seconds)
        self._sim.schedule(
            ns_from_s(report.total_seconds),
            lambda: self._finish_round(report, epoch),
            name="identification-done",
        )

    def _finish_round(self, report: IdentificationReport, epoch: int) -> None:
        if epoch != self._epoch:
            return  # round predates a reset (power loss); results are void
        current = report.identified()
        added = {
            ch: dev for ch, dev in current.items()
            if self._known.get(ch) != dev
        }
        removed = {
            ch: dev for ch, dev in self._known.items()
            if current.get(ch) != dev
        }
        self._known = current
        outcome = IdentificationOutcome(
            report=report,
            connected=dict(current),
            added=added,
            removed=removed,
            completed_at_s=self._sim.now_s,
        )
        for listener in list(self._listeners):
            listener(outcome)
        self._identifying = False
        if self._rerun_needed:
            self._rerun_needed = False
            self._start_round()


__all__ = ["PeripheralController", "IdentificationOutcome", "ChangeListener"]
