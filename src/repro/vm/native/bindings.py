"""Native interconnect library bindings (§4.2).

Each binding implements one native library's commands against the
simulated bus of the channel the driver is plugged into, and posts the
library's completion/error events back to the owning driver through the
event router — the split-phase pattern of §4.1.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dsl.symbols import (
    ADC_LIB,
    I2C_LIB,
    NativeLibSpec,
    SPI_LIB,
    UART_LIB,
)
from repro.interconnect.adc import AdcBus
from repro.interconnect.base import (
    BusError,
    InvalidConfigurationError,
    NackError,
)
from repro.interconnect.i2c import I2cBus
from repro.interconnect.spi import SpiBus
from repro.interconnect.uart import (
    PARITY_EVEN,
    PARITY_NONE,
    PARITY_ODD,
    UartBus,
    UartConfig,
)
from repro.sim.kernel import Simulator, ns_from_s

#: Approximate cycles for a native command body (register pokes + setup).
COMMAND_CYCLES = 500


class NativeBinding:
    """Base class: command dispatch by index + event emission."""

    spec: NativeLibSpec

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._owner = None  # DriverRuntime once claimed

    # ---------------------------------------------------------------- wiring
    def claim(self, runtime) -> None:
        self._owner = runtime

    def release(self) -> None:
        self._on_release()
        self._owner = None

    def _on_release(self) -> None:
        """Subclasses restore bus defaults here."""

    # --------------------------------------------------------------- tracing
    def _trace_transaction(self, name: str, transaction, **extra) -> None:
        """Record one bus transaction as a slice on this library's track."""
        tracer = self._sim.tracer
        if tracer is not None and tracer.enabled_for("interconnect"):
            owner = self._owner
            label = owner.label if owner is not None else "bus"
            args = {"duration_us": transaction.duration_s * 1e6,
                    "energy_uj": transaction.energy_j * 1e6}
            args.update(extra)
            tracer.complete(
                name, "interconnect",
                tracer.track(f"{label} {self.spec.name}"),
                ns_from_s(transaction.duration_s), args=args,
            )

    # -------------------------------------------------------------- dispatch
    def invoke(self, command_index: int, args: Tuple[int, ...]) -> int:
        """Run command *command_index* (order of spec.commands)."""
        names = list(self.spec.commands)
        if not 0 <= command_index < len(names):
            self.emit_error("invalidConfiguration")
            return COMMAND_CYCLES
        handler = getattr(self, f"_cmd_{names[command_index]}")
        handler(*args)
        return COMMAND_CYCLES

    # -------------------------------------------------------------- emission
    def emit(self, name: str, args: Tuple[int, ...] = (), *, delay_s: float = 0.0) -> None:
        """Post event *name* to the owning driver, optionally later."""
        owner = self._owner
        if owner is None:
            return

        def _post() -> None:
            if self._owner is owner:  # driver may have been unplugged meanwhile
                owner.post_event(name, args)

        if delay_s > 0:
            self._sim.schedule(ns_from_s(delay_s), _post, name=f"{self.spec.name}-emit")
        else:
            _post()

    def emit_error(self, name: str, *, delay_s: float = 0.0) -> None:
        owner = self._owner
        if owner is None:
            return

        def _post() -> None:
            if self._owner is owner:
                owner.post_event(name, error=True)

        if delay_s > 0:
            self._sim.schedule(ns_from_s(delay_s), _post, name=f"{self.spec.name}-err")
        else:
            _post()


class UartBinding(NativeBinding):
    """``import uart;`` — asynchronous serial."""

    spec = UART_LIB
    _PARITIES = {0: PARITY_NONE, 1: PARITY_EVEN, 2: PARITY_ODD}

    def __init__(self, sim: Simulator, bus: UartBus) -> None:
        super().__init__(sim)
        self._bus = bus
        self._reading = False

    def _on_release(self) -> None:
        self._bus.set_rx_handler(None)
        self._reading = False
        self._bus.reset()

    def _cmd_init(self, baud: int, parity: int, stop: int, data: int) -> None:
        parity_code = self._PARITIES.get(parity)
        if parity_code is None:
            self.emit_error("invalidConfiguration")
            return
        try:
            self._bus.configure(UartConfig(baud, parity_code, stop, data))
        except InvalidConfigurationError:
            self.emit_error("invalidConfiguration")

    def _cmd_reset(self) -> None:
        self._on_release()

    def _cmd_read(self) -> None:
        if self._reading:
            return  # re-arming is idempotent (Listing 1 never stops reading)
        try:
            self._bus.set_rx_handler(lambda byte: self.emit("newdata", (byte,)))
        except BusError:
            self.emit_error("uartInUse")
            return
        self._reading = True

    def _cmd_stop(self) -> None:
        self._bus.set_rx_handler(None)
        self._reading = False

    def _cmd_write(self, byte: int) -> None:
        try:
            transaction = self._bus.host_write(bytes([byte & 0xFF]))
        except BusError:
            self.emit_error("timeOut")
            return
        self._trace_transaction("uart.write", transaction, bytes=1)
        self.emit("writeDone", delay_s=transaction.duration_s)


class AdcBinding(NativeBinding):
    """``import adc;`` — single-ended analog sampling."""

    spec = ADC_LIB

    def __init__(self, sim: Simulator, bus: AdcBus) -> None:
        super().__init__(sim)
        self._bus = bus
        self._busy = False

    def _on_release(self) -> None:
        self._busy = False

    def _cmd_init(self, resolution: int, vref_mv: int) -> None:
        try:
            self._bus.configure(resolution, vref_mv / 1000.0)
        except InvalidConfigurationError:
            self.emit_error("invalidConfiguration")

    def _cmd_reset(self) -> None:
        self._busy = False

    def _cmd_read(self) -> None:
        if self._busy:
            self.emit_error("busInUse")
            return
        try:
            transaction = self._bus.sample()
        except BusError:
            self.emit_error("timeOut")
            return
        self._busy = True
        self._trace_transaction("adc.sample", transaction,
                                value=transaction.value)

        def _complete() -> None:
            self._busy = False
            self.emit("data", (transaction.value,))

        self._sim.schedule(ns_from_s(transaction.duration_s), _complete, name="adc-done")


class I2cBinding(NativeBinding):
    """``import i2c;`` — two-wire master transfers."""

    spec = I2C_LIB

    def __init__(self, sim: Simulator, bus: I2cBus) -> None:
        super().__init__(sim)
        self._bus = bus
        self._busy = False

    def _on_release(self) -> None:
        self._busy = False

    def _cmd_init(self, frequency: int) -> None:
        try:
            self._bus.configure(frequency)
        except InvalidConfigurationError:
            self.emit_error("invalidConfiguration")

    def _cmd_reset(self) -> None:
        self._busy = False

    def _begin(self) -> bool:
        if self._busy:
            self.emit_error("busInUse")
            return False
        self._busy = True
        return True

    def _finish(self, delay_s: float, action) -> None:
        def _complete() -> None:
            self._busy = False
            action()

        self._sim.schedule(ns_from_s(delay_s), _complete, name="i2c-done")

    def _cmd_write1(self, address: int, b0: int) -> None:
        self._write(address, bytes([b0 & 0xFF]))

    def _cmd_write2(self, address: int, b0: int, b1: int) -> None:
        self._write(address, bytes([b0 & 0xFF, b1 & 0xFF]))

    def _write(self, address: int, payload: bytes) -> None:
        if not self._begin():
            return
        try:
            transaction = self._bus.write(address & 0x7F, payload)
        except NackError:
            self._busy = False
            self.emit_error("nack")
            return
        except BusError:
            self._busy = False
            self.emit_error("timeOut")
            return
        self._trace_transaction("i2c.write", transaction,
                                address=address & 0x7F, bytes=len(payload))
        self._finish(transaction.duration_s, lambda: self.emit("writeDone"))

    def _cmd_read(self, address: int, count: int) -> None:
        if not self._begin():
            return
        try:
            transaction = self._bus.read(address & 0x7F, count)
        except NackError:
            self._busy = False
            self.emit_error("nack")
            return
        except BusError:
            self._busy = False
            self.emit_error("timeOut")
            return
        self._trace_transaction("i2c.read", transaction,
                                address=address & 0x7F, bytes=count)
        data = transaction.value

        def _deliver() -> None:
            for byte in data:
                self.emit("newdata", (byte,))
            self.emit("readDone")

        self._finish(transaction.duration_s, _deliver)


class SpiBinding(NativeBinding):
    """``import spi;`` — full-duplex byte transfers."""

    spec = SPI_LIB

    def __init__(self, sim: Simulator, bus: SpiBus) -> None:
        super().__init__(sim)
        self._bus = bus

    def _cmd_init(self, clock: int, mode: int) -> None:
        try:
            self._bus.configure(clock, mode)
        except InvalidConfigurationError:
            self.emit_error("invalidConfiguration")

    def _cmd_reset(self) -> None:
        pass

    def _cmd_transfer(self, byte: int) -> None:
        try:
            transaction = self._bus.transfer(bytes([byte & 0xFF]))
        except BusError:
            self.emit_error("busInUse")
            return
        self._trace_transaction("spi.transfer", transaction, bytes=1)
        self.emit("data", (transaction.value[0],), delay_s=transaction.duration_s)


def binding_for(lib_id: int, sim: Simulator, bus) -> Optional[NativeBinding]:
    """Construct the binding for *lib_id* over *bus* (None if mismatched)."""
    if lib_id == UART_LIB.lib_id and isinstance(bus, UartBus):
        return UartBinding(sim, bus)
    if lib_id == ADC_LIB.lib_id and isinstance(bus, AdcBus):
        return AdcBinding(sim, bus)
    if lib_id == I2C_LIB.lib_id and isinstance(bus, I2cBus):
        return I2cBinding(sim, bus)
    if lib_id == SPI_LIB.lib_id and isinstance(bus, SpiBus):
        return SpiBinding(sim, bus)
    return None


__all__ = [
    "NativeBinding",
    "UartBinding",
    "AdcBinding",
    "I2cBinding",
    "SpiBinding",
    "binding_for",
    "COMMAND_CYCLES",
]
