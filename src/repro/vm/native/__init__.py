"""Native interconnect library bindings for the µPnP runtime."""

from repro.vm.native.bindings import (
    AdcBinding,
    I2cBinding,
    NativeBinding,
    SpiBinding,
    UartBinding,
    binding_for,
)

__all__ = [
    "AdcBinding",
    "I2cBinding",
    "NativeBinding",
    "SpiBinding",
    "UartBinding",
    "binding_for",
]
