"""µPnP: Plug and Play Peripherals for the Internet of Things.

A full-system reproduction of Yang et al., EuroSys 2015, on top of a
discrete-event simulation substrate.  The public API re-exports the
pieces a downstream user composes:

* :class:`Simulator` / :class:`RngRegistry` — the simulation substrate;
* :class:`Network`, :class:`Thing`, :class:`Client`, :class:`Manager`,
  :class:`Registry` — the µPnP system entities (§5);
* the driver toolchain (:func:`compile_source`, :func:`disassemble`);
* the peripheral catalogue (:data:`CATALOG`, :func:`make_peripheral_board`);
* behavioural peripheral models and the physical :class:`Environment`.

Quickstart: see ``examples/quickstart.py``.
"""

from repro.core import (
    Client,
    DiscoveredPeripheral,
    Manager,
    ReadResult,
    Registry,
    StreamHandle,
    Thing,
)
from repro.drivers import CATALOG, make_peripheral_board, populate_registry
from repro.dsl import compile_source, disassemble
from repro.hw import BusKind, DeviceId, PeripheralBoard
from repro.net import Ipv6Address, Network
from repro.peripherals import Environment
from repro.sim import RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "Client",
    "DiscoveredPeripheral",
    "Manager",
    "ReadResult",
    "Registry",
    "StreamHandle",
    "Thing",
    "CATALOG",
    "make_peripheral_board",
    "populate_registry",
    "compile_source",
    "disassemble",
    "BusKind",
    "DeviceId",
    "PeripheralBoard",
    "Ipv6Address",
    "Network",
    "Environment",
    "RngRegistry",
    "Simulator",
    "__version__",
]
