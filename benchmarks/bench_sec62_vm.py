"""§6.2 — VM instruction timing and event-router throughput.

The paper: executing each bytecode instruction 500 times gives an
average of 39.7 µs/instruction (push 11.1 µs, pop 8.9 µs); the event
router takes 77.79 µs per event and scales linearly.
"""

import pytest

from repro.analysis.vmperf import (
    measure,
    measure_instructions,
    measure_router_event_us,
    render_report,
    router_scaling_series,
)


def test_sec62_vm_instruction_timing(benchmark):
    timings = benchmark.pedantic(
        measure_instructions, kwargs=dict(repeats=100), iterations=1, rounds=3
    )
    mean_us = sum(t.seconds for t in timings) / len(timings) * 1e6
    print()
    print(render_report(measure(repeats=100)))
    slowest = max(timings, key=lambda t: t.seconds)
    fastest = min(timings, key=lambda t: t.seconds)
    print(f"slowest opcode: {slowest.op.name} ({slowest.seconds * 1e6:.1f} us); "
          f"fastest: {fastest.op.name} ({fastest.seconds * 1e6:.1f} us)")
    assert mean_us == pytest.approx(39.7, abs=0.5)


def test_sec62_router_throughput(benchmark):
    per_event_us = benchmark(measure_router_event_us, 200)
    print(f"\nevent router: {per_event_us:.2f} us/event (paper: 77.79 us)")
    assert per_event_us == pytest.approx(77.79, abs=0.5)


def test_sec62_router_scales_linearly(benchmark):
    series = benchmark(router_scaling_series, (10, 50, 100, 200, 400))
    print("\nrouter drain time vs queue depth:")
    for count, total_ms in series:
        print(f"  {count:4d} events -> {total_ms:8.3f} ms")
    per_event = [total / count for count, total in series]
    assert max(per_event) / min(per_event) < 1.01


def test_sec62_real_driver_handler_execution(benchmark):
    """Wall-clock of the heaviest real handler: BMP180 compensation."""
    from repro.dsl.bytecode import HANDLER_KIND_EVENT
    from repro.drivers.catalog import CATALOG
    from repro.vm.machine import DriverInstance, VirtualMachine

    from repro.peripherals.bmp180 import (
        Calibration,
        compensate_temperature,
        uncompensated_pressure,
        uncompensated_temperature,
    )

    image = CATALOG["bmp180"].compile()
    instance = DriverInstance(image)
    vm = VirtualMachine()
    sink = lambda *a: None  # noqa: E731

    def handler_named(name):
        local = 128 + list(image.local_names).index(name)
        return image.find_handler(HANDLER_KIND_EVENT, local)

    # Stage realistic state: load the calibration EEPROM and run the
    # temperature phase so B5 is established, exactly as a live read does.
    cal = Calibration()
    cal_slot = next(i for i, s in enumerate(image.slots) if s.length == 22)
    buf_slot = next(i for i, s in enumerate(image.slots) if s.length == 4)
    instance.globals[cal_slot][:] = list(cal.to_eeprom())
    vm.execute(instance, handler_named("parseCalibration"), (),
               signal_sink=sink, return_sink=sink)
    ut = uncompensated_temperature(21.0, cal)
    instance.globals[buf_slot][0:2] = [ut >> 8, ut & 0xFF]
    vm.execute(instance, handler_named("temperatureReady"), (),
               signal_sink=sink, return_sink=sink)
    _, b5 = compensate_temperature(ut, cal)
    up = uncompensated_pressure(101_325.0, b5, 0, cal)
    raw = up << 8
    instance.globals[buf_slot][0:3] = [(raw >> 16) & 0xFF, (raw >> 8) & 0xFF,
                                       raw & 0xFF]
    handler = handler_named("pressureReady")

    def run():
        return vm.execute(instance, handler, (),
                          signal_sink=sink, return_sink=sink)

    result = benchmark(run)
    simulated_us = result.seconds() * 1e6
    print(f"\nBMP180 pressure compensation: {result.steps} instructions, "
          f"{simulated_us:.0f} us simulated on the 16 MHz target")
    assert result.steps > 50
    assert simulated_us < 10_000  # well under one sample period
