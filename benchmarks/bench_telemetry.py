"""Engineering bench: telemetry overhead in disabled and enabled modes.

The telemetry layer promises a near-free disabled mode: a scenario
without a :class:`TelemetryConfig` constructs no collector, schedules
no sampling ticks, and leaves the kernel untouched.  The only additions
that live on always-hot paths are two integer accumulations — the
network's ``mac_payload_bytes`` (one ``+=`` per 802.15.4 frame, which
is what makes exact airtime a closed form) and the event router's
``stats.cycles`` (one ``+=`` per VM dispatch) — plus an empty-list
check for delivery monitors.

This bench verifies the promise:

1. **Disabled-mode gate.**  The full fleet smoke workload, telemetry
   off, timed against a baseline with pre-telemetry method copies
   monkeypatched in (``_hop_delay`` without the payload accumulation,
   ``_dispatch_next`` without the cycle accumulation).  Rounds
   alternate modes so machine drift hits both equally; min-of-N
   discards stalls.  **Fails (exit 1) if overhead exceeds 3%.**

2. **Enabled mode (reported).**  The same workload with 1 Hz sampling,
   plus cross-checks: enabled-mode merged metrics equal disabled-mode
   metrics except ``sim.events`` (the sampling ticks), and the merged
   telemetry document is byte-identical across worker counts.

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--fast] [--out PATH]

Writes ``BENCH_telemetry.json``.
"""

from __future__ import annotations

import argparse
import json
import time
import sys
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.net.network import Network  # noqa: E402
from repro.sim.kernel import ns_from_s  # noqa: E402
from repro.telemetry.config import TelemetryConfig  # noqa: E402
from repro.vm.router import EventRouter, VmTrap  # noqa: E402

DEFAULT_OUT = (Path(__file__).resolve().parent.parent
               / "BENCH_telemetry.json")

#: The acceptance gate: telemetry-disabled fleet runs must stay within
#: 3% of the pre-telemetry baseline.
MAX_DISABLED_OVERHEAD = 0.03


# --------------------------------------------------------------- baseline
# Copies of the two hot-path methods exactly as they stood before the
# telemetry counters were added.  Patched in for the baseline mode.

def _baseline_hop_delay(self, payload_bytes, a, b):
    del a, b
    delay = 0.0
    for frame_payload in self._lowpan.frame_payload_sizes(payload_bytes):
        self.stats.frames_sent += 1
        delay += self._link.frame_delay_s(frame_payload, self._rng)
    return delay


def _baseline_dispatch_next(self):
    if self.queue_depth == 0:  # pragma: no cover - defensive
        self._busy = False
        return
    from_priority = bool(self._priority)
    delivery = (self._priority.popleft() if from_priority
                else self._fifo.popleft())
    tracer = self._sim.tracer
    if tracer is not None:
        tracer.current = getattr(delivery, "_obs_trace", None)
    cycles = self._profile.router_dispatch_cycles
    try:
        handler_cycles = delivery.execute()
        cycles += handler_cycles
    except VmTrap as trap:
        handler_cycles = 0
        self.stats.traps.append(f"{delivery.describe()}: {trap}")
    self.stats.dispatched += 1
    if from_priority:
        self.stats.errors_dispatched += 1
    duration_s = self._profile.mcu.cycles_to_seconds(cycles)
    if tracer is not None and tracer.enabled_for("vm"):
        tracer.complete(
            delivery.describe(), "vm",
            tracer.track(f"{self.label or 'router'} vm"),
            ns_from_s(duration_s),
            args={"cycles": cycles,
                  "router_cycles": self._profile.router_dispatch_cycles,
                  "handler_cycles": handler_cycles,
                  "priority": from_priority},
        )
    self.stats.busy_seconds += duration_s
    if self._meter is not None:
        self._meter.add_draw("mcu", self._profile.mcu.active_draw,
                             duration_s)

    def _done() -> None:
        self._busy = False
        self._pump()

    self._sim.schedule(ns_from_s(duration_s), _done, name="router-done")


@contextmanager
def pre_telemetry_paths():
    saved = (Network._hop_delay, EventRouter._dispatch_next)
    Network._hop_delay = _baseline_hop_delay
    EventRouter._dispatch_next = _baseline_dispatch_next
    try:
        yield
    finally:
        Network._hop_delay, EventRouter._dispatch_next = saved


# ------------------------------------------------------ fleet workload
def _scenario(things, duration_s, seed, telemetry):
    return SCENARIOS["smoke"].scaled(
        things=things, duration_s=duration_s, seed=seed,
        telemetry=telemetry,
    )


def fleet_bench(things, duration_s, seed, rounds):
    config = TelemetryConfig(cadence_s=1.0)

    def run(telemetry):
        return run_scenario(
            _scenario(things, duration_s, seed, telemetry), workers=1)

    best = {"baseline": None, "disabled": None, "enabled": None}
    merged = {}
    run(None)  # warm-up
    for _ in range(rounds):
        with pre_telemetry_paths():
            started = time.perf_counter()
            result = run(None)
            wall = time.perf_counter() - started
        if best["baseline"] is None or wall < best["baseline"]:
            best["baseline"] = wall
        merged["baseline"] = result.merged
        for mode, telemetry in (("disabled", None), ("enabled", config)):
            started = time.perf_counter()
            result = run(telemetry)
            wall = time.perf_counter() - started
            if best[mode] is None or wall < best[mode]:
                best[mode] = wall
            merged[mode] = result.merged
    return best, merged


def counters_equal_except_sampling(disabled, enabled):
    """Enabled-mode counters must equal disabled-mode counters except
    ``sim.events`` (each sampling tick is one kernel event)."""
    off = dict(disabled["counters"])
    on = dict(enabled["counters"])
    if on.pop("sim.events") <= off.pop("sim.events"):
        return False
    return (on == off
            and disabled["gauges"] == enabled["gauges"]
            and disabled["histograms"] == enabled["histograms"])


def merge_determinism(things, duration_s, seed):
    """Merged telemetry must be byte-identical for any worker count."""
    blobs = set()
    scenario = _scenario(things, duration_s, seed,
                         TelemetryConfig(cadence_s=1.0))
    for workers in (1, 2):
        result = run_scenario(scenario, workers=workers)
        blobs.add(json.dumps(result.telemetry_document(),
                             sort_keys=True))
    return len(blobs) == 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="fewer rounds / smaller workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_telemetry.json")
    args = parser.parse_args(argv)
    # The effect under test is well under 1%, so each timed run must be
    # long enough that scheduler noise doesn't swamp it.
    rounds = 3 if args.fast else 7
    things = 10 if args.fast else 60
    duration_s = 10.0 if args.fast else 60.0

    best, merged = fleet_bench(things, duration_s, args.seed, rounds)
    disabled_overhead = (
        (best["disabled"] - best["baseline"]) / best["baseline"])
    enabled_overhead = (
        (best["enabled"] - best["baseline"]) / best["baseline"])
    print(f"fleet workload ({things} things, {duration_s:g}s simulated, "
          f"min of {rounds} alternating rounds):")
    print(f"  baseline (pre-telemetry): {best['baseline']:7.3f} s")
    print(f"  disabled (no config):     {best['disabled']:7.3f} s  "
          f"overhead {disabled_overhead * 100:+.2f}%")
    print(f"  enabled (1 Hz sampling):  {best['enabled']:7.3f} s  "
          f"overhead {enabled_overhead * 100:+.2f}%")

    workload_clean = counters_equal_except_sampling(
        merged["disabled"], merged["enabled"])
    deterministic = merge_determinism(things, duration_s, args.seed)
    print(f"  workload unperturbed (counters equal except sim.events): "
          f"{'yes' if workload_clean else 'NO'}")
    print(f"  merged telemetry worker-count independent: "
          f"{'yes' if deterministic else 'NO'}")

    passed = (disabled_overhead <= MAX_DISABLED_OVERHEAD
              and workload_clean and deterministic)
    document = {
        "bench": "telemetry",
        "seed": args.seed,
        "fleet": {
            "things": things,
            "duration_s": duration_s,
            "rounds": rounds,
            "baseline_wall_s": round(best["baseline"], 4),
            "disabled_wall_s": round(best["disabled"], 4),
            "enabled_wall_s": round(best["enabled"], 4),
        },
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "workload_unperturbed": workload_clean,
        "merge_deterministic": deterministic,
        "passed": passed,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    if disabled_overhead > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-mode overhead "
              f"{disabled_overhead * 100:.2f}% exceeds the "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}% budget",
              file=sys.stderr)
        return 1
    if not workload_clean:
        print("FAIL: telemetry perturbed the simulated workload",
              file=sys.stderr)
        return 1
    if not deterministic:
        print("FAIL: merged telemetry depends on worker count",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
