"""Engineering bench: gateway service latency, throughput and determinism.

Boots a fleet behind an in-process :class:`GatewayServer` and measures
the live service the way an operator would:

1. **Load test.**  The open-loop generator drives N registry lookups
   plus M property reads per minute over real sockets against a
   1k-node fleet (``--fast``: 100 nodes) and reports wall-clock
   p50/p95/p99 latency, sustained request rate and error rate, judged
   against the declarative SLOs by the telemetry health engine.
   **Fails (exit 1) if the fleet cannot sustain ≥10k property
   reads/min** (the acceptance floor; ``--fast`` scales it down) or if
   the SLO verdict is degraded.

2. **Determinism gate.**  The recorded request log of the whole load
   run is replayed against a fresh fleet; the merged-metrics digest
   must be byte-identical.  **Fails (exit 1) on mismatch.**

3. **Bridge micro-throughput.**  Serial op round-trips through the
   bridge thread without HTTP, isolating the sim-bridge cost from the
   socket cost.

4. **Observability overhead.**  The same micro workload with the
   request-obs layer on vs off; **fails (exit 1) if the enabled/
   disabled wall-clock ratio exceeds 3%** (see DESIGN.md §12).

    PYTHONPATH=src python benchmarks/bench_gateway.py [--fast] [--out PATH]

Writes ``BENCH_gateway.json`` (sentinel-diffed in CI: requests_per_s
up, p99_latency_ms / queue_wait_p95_ms / sim_exec_p95_ms down,
obs_overhead_ratio down).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.gateway.bridge import GatewayBridge, Op  # noqa: E402
from repro.gateway.loadgen import LoadConfig, run_load  # noqa: E402
from repro.gateway.obs import GatewayObsConfig  # noqa: E402
from repro.gateway.server import GatewayServer  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"

WARMUP_NS = 2_000_000_000

#: The acceptance floor the full-size bench must sustain.
READS_PER_MIN_FLOOR = 10_000.0


def bench_load(nodes: int, duration_s: float,
               reads_per_min: float) -> dict:
    scenario = SCENARIOS["gateway"].scaled(
        things=nodes, shard_size=nodes, seed=1)
    config = LoadConfig(duration_s=duration_s,
                        reads_per_min=reads_per_min,
                        lookups_per_min=600.0)

    async def drive():
        bridge = GatewayBridge(scenario)
        try:
            async with GatewayServer(bridge) as server:
                await asyncio.wrap_future(
                    bridge.submit(Op("advance", value=WARMUP_NS)))
                result = await run_load(server.host, server.port, config)
            document = result.as_dict()
            document["digest"] = bridge.run_on_thread(bridge.digest)
            ops = bridge.log.ops()
            return document, ops
        finally:
            bridge.close()

    document, ops = asyncio.run(drive())

    replay_t0 = time.perf_counter()
    replayed = GatewayBridge.replay(scenario, ops)
    document["replay"] = {
        "ops": len(ops),
        "wall_s": round(time.perf_counter() - replay_t0, 3),
        "digest": replayed.digest(),
        "deterministic": replayed.digest() == document["digest"],
    }
    document["nodes"] = nodes
    # Headline latency decomposition (observability tier): per-read
    # p95 of queue wait vs sim execution, lifted out of the server-side
    # decomposition summary so the sentinel can watch them.
    read = ((document.get("server") or {})
            .get("decomposition") or {}).get("read") or {}
    for component, key in (("queue_wait_ms", "queue_wait_p95_ms"),
                           ("sim_exec_ms", "sim_exec_p95_ms")):
        summary = read.get(component) or {}
        if summary.get("p95") is not None:
            document[key] = round(summary["p95"], 3)
    return document


def bench_bridge_ops(nodes: int, count: int, *,
                     obs_enabled: bool = True) -> dict:
    """Serial read round-trips through the bridge, no HTTP."""
    scenario = SCENARIOS["gateway"].scaled(
        things=nodes, shard_size=nodes, seed=2)
    bridge = GatewayBridge(
        scenario, obs=GatewayObsConfig(enabled=obs_enabled)).start()
    try:
        bridge.execute(Op("advance", value=WARMUP_NS), timeout=300.0)
        listing = bridge.execute(Op("list")).body["things"]
        targets = []
        for entry in listing:
            thing = int(entry["id"].rsplit(":", 1)[1])
            td = bridge.execute(Op("td", thing=thing))
            for prop in td.body.get("properties", ()):
                if bridge.execute(Op("read", thing=thing,
                                     name=prop)).status == 200:
                    targets.append((thing, prop))
            if len(targets) >= 16:
                break
        t0 = time.perf_counter()
        ok = 0
        for i in range(count):
            thing, prop = targets[i % len(targets)]
            if bridge.execute(Op("read", thing=thing, name=prop),
                              timeout=60.0).ok:
                ok += 1
        wall = time.perf_counter() - t0
        return {
            "nodes": nodes,
            "ops": count,
            "ok": ok,
            "wall_s": round(wall, 3),
            "requests_per_s": round(count / wall, 1),
        }
    finally:
        bridge.close()


#: Allowed wall-clock ratio for the obs decomposition layer (≤3%).
OBS_OVERHEAD_CEILING = 1.03

#: Absolute noise floor: deltas under this many seconds are not a
#: meaningful overhead signal on a shared CI machine.
OBS_OVERHEAD_EPSILON_S = 0.05


def bench_obs_overhead(nodes: int, count: int) -> dict:
    """Decomposition-layer cost: identical op stream, obs on vs off.

    Tracing stays off (the scenario does not trace), so this isolates
    the always-on observability layer — perf_counter stamps, SeriesBank
    records, ring/journal bookkeeping — which the gate holds to ≤3%.
    Min-of-2 repeats per arm damps scheduler noise; deltas below an
    absolute epsilon pass regardless of ratio.
    """
    def best(enabled: bool) -> float:
        return min(bench_bridge_ops(nodes, count,
                                    obs_enabled=enabled)["wall_s"]
                   for _ in range(2))

    off = best(False)
    on = best(True)
    ratio = on / off if off > 0 else 1.0
    within = (ratio <= OBS_OVERHEAD_CEILING
              or (on - off) <= OBS_OVERHEAD_EPSILON_S)
    return {
        "nodes": nodes,
        "ops": count,
        "obs_off_wall_s": round(off, 3),
        "obs_on_wall_s": round(on, 3),
        "obs_overhead_ratio": round(ratio, 4),
        "ceiling": OBS_OVERHEAD_CEILING,
        "within_ceiling": within,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small fleet, short run (CI smoke)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.fast:
        nodes, duration, reads_per_min = 100, 8.0, 4_000.0
        floor = reads_per_min
    else:
        nodes, duration, reads_per_min = 1_000, 30.0, READS_PER_MIN_FLOOR
        floor = READS_PER_MIN_FLOOR

    print(f"== gateway load: {nodes} nodes, {reads_per_min:.0f} "
          f"reads/min for {duration:.0f}s ==")
    load = bench_load(nodes, duration, reads_per_min)
    print(f"   {load['requests']} requests, "
          f"{load['requests_per_s']:.1f}/s, "
          f"reads/min {load['reads_per_min']:.0f}, "
          f"p99 {load['latency']['p99_latency_ms']:.1f} ms, "
          f"errors {load['error_rate']:.2%}, "
          f"slo {load['slo']['status']}")
    print(f"   replay: {load['replay']['ops']} ops in "
          f"{load['replay']['wall_s']}s, deterministic="
          f"{load['replay']['deterministic']}")

    print("== bridge micro (no HTTP) ==")
    micro = bench_bridge_ops(nodes=min(nodes, 200),
                             count=100 if args.fast else 400)
    print(f"   {micro['requests_per_s']:.1f} ops/s serial")

    print("== obs overhead (decomposition layer, tracing off) ==")
    overhead = bench_obs_overhead(nodes=min(nodes, 200),
                                  count=100 if args.fast else 400)
    print(f"   off {overhead['obs_off_wall_s']}s  "
          f"on {overhead['obs_on_wall_s']}s  "
          f"ratio {overhead['obs_overhead_ratio']:.4f} "
          f"(ceiling {OBS_OVERHEAD_CEILING})")

    sustained = load["reads_per_min"] >= 0.95 * floor
    deterministic = load["replay"]["deterministic"]
    slo_ok = load["slo"]["status"] in ("ok", "recovered")
    obs_ok = overhead["within_ceiling"]
    gate_passed = sustained and deterministic and slo_ok and obs_ok

    document = {
        "fast": args.fast,
        "load": load,
        "bridge_micro": micro,
        "obs_overhead": overhead,
        "gate": {
            "reads_per_min_floor": floor,
            "sustained": sustained,
            "slo_ok": slo_ok,
            "deterministic": deterministic,
            "obs_ok": obs_ok,
            "gate_passed": gate_passed,
        },
    }
    args.out.write_text(json.dumps(document, indent=1, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")
    if not gate_passed:
        print("GATE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
