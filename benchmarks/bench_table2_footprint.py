"""Table 2 — memory footprint of the µPnP software stack.

Prints the structural model's breakdown next to the paper's
measurements; asserts every row within 5% and the totals within 1%.
"""

import pytest

from repro.analysis.footprint import PAPER_TABLE2, render_table2
from repro.mcu.footprint import DEFAULT_FOOTPRINT


def test_table2_regenerate(benchmark):
    rows = benchmark(DEFAULT_FOOTPRINT.breakdown)
    print()
    print(render_table2())

    for row in rows:
        flash, ram = PAPER_TABLE2[row.name]
        assert row.flash_bytes == pytest.approx(flash, rel=0.05)
        assert row.ram_bytes == pytest.approx(ram, rel=0.05)
    totals = DEFAULT_FOOTPRINT.totals()
    assert totals.flash_bytes == pytest.approx(14231, rel=0.01)
    assert totals.ram_bytes == pytest.approx(1518, rel=0.01)
    # §6.2's framing: ~10.8% of flash, ~9.2% of RAM on the ATMega128RFA1.
    assert DEFAULT_FOOTPRINT.mcu.flash_fraction(totals.flash_bytes) < 0.12
    assert DEFAULT_FOOTPRINT.mcu.ram_fraction(totals.ram_bytes) < 0.10
