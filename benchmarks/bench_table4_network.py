"""Table 4 — peripheral announcement and driver installation timing.

Ten independent plug-in trials on an uncongested one-hop network, phase
boundaries taken from the Thing's event log (§6.4).
"""

import pytest

from repro.analysis.network import (
    PAPER_TABLE4,
    ROW_ORDER,
    render_table4,
    run_table4,
)


def test_table4_regenerate(benchmark):
    result = benchmark.pedantic(
        run_table4, kwargs=dict(trials=10), iterations=1, rounds=1
    )
    print()
    print(render_table4(result))

    for name in ROW_ORDER:
        paper_mean, _ = PAPER_TABLE4[name]
        assert result.rows[name].mean * 1e3 == pytest.approx(
            paper_mean, rel=0.10
        ), name
    # The network phase completes well under a second (§8 quotes 488 ms
    # for hardware identification + this pipeline combined).
    assert result.total_mean_ms() < 400


def test_table4_jitter_sources(benchmark):
    """Std-dev structure: tiny for local ops, large for the install row."""
    result = benchmark.pedantic(
        run_table4, kwargs=dict(trials=8, base_seed=500),
        iterations=1, rounds=1,
    )
    assert result.rows["Generate Multicast Address"].stdev < 0.2e-3
    assert result.rows["Join Multicast Group"].stdev < 0.1e-3
    assert result.rows["Install Driver"].stdev > 2e-3


def test_full_plug_to_advertise_pipeline(benchmark):
    """End-to-end (§8): identification + network pipeline < 1 s."""
    from repro.analysis.network import run_trial

    timings = benchmark.pedantic(
        run_trial, kwargs=dict(seed=900), iterations=1, rounds=3
    )
    total_ms = timings.total_s * 1e3
    print(f"\nnetwork pipeline total: {total_ms:.1f} ms "
          f"(paper rows sum to 166.8 ms; §8 quotes 488.5 ms incl. hardware)")
    assert total_ms < 400
