"""Table 3 — driver development effort and memory footprint.

Compiles all four prototype drivers through the real toolchain, counts
SLoC on both sides, and checks the headline claims: the DSL needs about
half the source lines and an order of magnitude less flash on average.
"""

import pytest

from repro.analysis.drivers import render_table3, summarize_table3, table3
from repro.drivers.catalog import CATALOG, TABLE3_DRIVERS


def test_table3_regenerate(benchmark):
    summary_rows = benchmark(table3)
    print()
    print(render_table3())

    summary = summarize_table3()
    # Every driver needs fewer source lines in the DSL (paper avg: 52%).
    for row in summary.rows:
        assert row.dsl_sloc < row.native_sloc
    assert 0.35 <= summary.average_sloc_saving <= 0.70
    # Average footprint saving is large (paper: 94%; see EXPERIMENTS.md
    # for why our BMP180 bytecode is bigger than the paper's).
    assert summary.average_bytes_saving >= 0.70
    # Float-free bus drivers: C is small; float ADC drivers blow up.
    by_key = {r.key: r for r in summary_rows}
    assert by_key["tmp36"].native_bytes > 4 * by_key["id20la"].native_bytes


def test_driver_compilation_speed(benchmark):
    """Toolchain throughput: compile the biggest driver (BMP180)."""
    spec = CATALOG["bmp180"]
    source = spec.dsl_source()
    from repro.dsl import compile_source

    image = benchmark(compile_source, source, spec.device_id.value)
    assert image.image_size < 1024  # stays OTA-friendly


def test_driver_images_fit_single_digit_fragments(benchmark):
    """OTA practicality: every image needs only a few 802.15.4 frames."""
    from repro.net.lowpan import DEFAULT_LOWPAN

    def fragment_counts():
        return {
            key: DEFAULT_LOWPAN.frame_count(CATALOG[key].compile().image_size)
            for key in TABLE3_DRIVERS
        }

    counts = benchmark(fragment_counts)
    print(f"\nOTA fragments per driver: {counts}")
    assert all(count <= 9 for count in counts.values())
