"""Figure 12 — one-year energy: USB host vs µPnP+{ADC, I2C, UART}.

Regenerates the paper's log-log energy plot as a data table and checks
its shape: USB flat at ~1e6 J; µPnP orders of magnitude lower, scaling
linearly with the rate of peripheral change; the three interconnect
curves diverging at low change rates where the communication floor
dominates (§6.1).
"""

import pytest

from repro.analysis.energy import (
    DEFAULT_CHANGE_INTERVALS_MIN,
    Figure12Model,
    render_figure12,
)
from repro.hw.connector import BusKind


@pytest.fixture(scope="module")
def model():
    return Figure12Model()


def test_fig12_regenerate(benchmark, model):
    series = benchmark(model.all_series, DEFAULT_CHANGE_INTERVALS_MIN)
    print()
    print(render_figure12(model))
    print()
    from repro.analysis.plot import figure12_ascii

    print(figure12_ascii(model))
    print()
    advantage = model.advantage_at(60.0)
    print(f"USB/uPnP energy ratio at hourly changes: {advantage:.3g}x "
          f"(paper: 'over four orders of magnitude')")

    usb = [p.mean_joules for p in series["USB host"]]
    adc = [p.mean_joules for p in series["uPnP+ADC"]]
    uart = [p.mean_joules for p in series["uPnP+UART"]]
    assert all(u > 5e5 for u in usb)                 # USB ~1e6 J, flat
    assert adc == sorted(adc, reverse=True)          # linear in change rate
    assert advantage > 1e4                           # the headline claim
    assert uart[-1] > adc[-1] * 10                   # divergence at the floor


def test_fig12_identification_energy_distribution(benchmark):
    from repro.analysis.energy import identification_energy_samples

    samples = benchmark(identification_energy_samples, trials=25)
    lo, hi = min(samples), max(samples)
    print(f"\nper-identification energy: {lo * 1e3:.2f} .. {hi * 1e3:.2f} mJ "
          f"(paper: 2.48 .. 6.756 mJ)")
    assert 1e-3 < lo < hi < 10e-3
