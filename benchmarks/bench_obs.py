"""Engineering bench: tracing overhead in disabled and enabled modes.

The tracing subsystem promises near-zero cost when off.  The kernel
keeps its hot paths literally branch-free until a tracer attaches
(:meth:`Simulator.attach_tracer` shadows ``step`` / ``schedule_at``
with traced copies on that instance only), and every other layer guards
its hooks with one ``sim.tracer`` attribute check.

This bench verifies the promise two ways:

1. **Kernel microbench (the gate).**  A tight schedule/dispatch loop —
   the path every simulated event crosses — timed against a baseline
   with guard-free method copies monkeypatched in (the pre-tracing
   kernel).  Rounds alternate modes so machine drift hits both equally;
   min-of-N discards stalls.  **Fails (exit 1) if disabled-mode
   overhead exceeds 2%.**

2. **End-to-end fleet workload (reported).**  One serial fleet smoke
   sweep, disabled vs tracing enabled, plus a cross-check that the
   merged metrics are bit-identical in every mode — instrumentation
   must never perturb simulated behaviour.

    PYTHONPATH=src python benchmarks/bench_obs.py [--fast] [--out PATH]

Writes ``BENCH_obs.json``.
"""

from __future__ import annotations

import argparse
import heapq
import json
import time
import sys
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.obs.tracer import install_tracer  # noqa: E402
from repro.sim.kernel import (  # noqa: E402
    EventHandle,
    SimulationError,
    Simulator,
    _ScheduledEvent,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: The acceptance gate: disabled-mode overhead on the kernel hot path.
MAX_DISABLED_OVERHEAD = 0.02


# --------------------------------------------------------------- baseline
# Guard-free copies of the two kernel hot paths — the kernel exactly as
# it stood before tracing support.  Patched in for the baseline mode.

def _baseline_step(self) -> bool:
    while self._queue:
        time_ns, _, event = heapq.heappop(self._queue)
        event.popped = True
        if event.cancelled:
            self._tombstones -= 1
            continue
        self._now_ns = time_ns
        for hook in self._trace_hooks:
            hook(time_ns, event.name)
        event.callback()
        return True
    return False


def _baseline_schedule_at(self, time_ns, callback, *, name=""):
    time_ns = int(time_ns)
    if time_ns < self._now_ns:
        raise SimulationError(
            f"cannot schedule in the past: {time_ns} < {self._now_ns}"
        )
    event = _ScheduledEvent(time_ns, self._seq, callback, name)
    heapq.heappush(self._queue, (time_ns, self._seq, event))
    self._seq += 1
    return EventHandle(event, self)


@contextmanager
def guard_free_kernel():
    saved = (Simulator.step, Simulator.schedule_at)
    Simulator.step = _baseline_step
    Simulator.schedule_at = _baseline_schedule_at
    try:
        yield
    finally:
        Simulator.step, Simulator.schedule_at = saved


# --------------------------------------------------- kernel microbench
def _drive_kernel(events: int, *, trace: bool) -> float:
    """Wall seconds to schedule+dispatch a chain of *events* events."""
    sim = Simulator()
    if trace:
        # Default categories exclude "kernel", matching fleet --trace.
        install_tracer(sim, limit=10_000)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < events:
            sim.schedule(10, tick)

    sim.schedule(10, tick)
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started


def kernel_bench(events: int, rounds: int) -> dict:
    best = {"baseline": None, "disabled": None, "enabled": None}

    def note(mode: str, wall: float) -> None:
        if best[mode] is None or wall < best[mode]:
            best[mode] = wall

    _drive_kernel(events, trace=False)  # warm-up
    for _ in range(rounds):
        with guard_free_kernel():
            note("baseline", _drive_kernel(events, trace=False))
        note("disabled", _drive_kernel(events, trace=False))
        note("enabled", _drive_kernel(events, trace=True))
    return best


# ------------------------------------------------------ fleet workload
def fleet_bench(things: int, duration_s: float, seed: int,
                rounds: int) -> dict:
    def run(trace: bool) -> dict:
        scenario = SCENARIOS["smoke"].scaled(
            things=things, duration_s=duration_s, seed=seed, trace=trace,
        )
        return run_scenario(scenario, workers=1)

    best = {"disabled": None, "enabled": None}
    merged = {}
    run(False)  # warm-up
    for _ in range(rounds):
        for mode, trace in (("disabled", False), ("enabled", True)):
            started = time.perf_counter()
            result = run(trace)
            wall = time.perf_counter() - started
            if best[mode] is None or wall < best[mode]:
                best[mode] = wall
            merged[mode] = result.merged
    best["metrics_identical"] = merged["disabled"] == merged["enabled"]
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="fewer rounds / smaller workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_obs.json")
    args = parser.parse_args(argv)
    kernel_events = 100_000 if args.fast else 300_000
    kernel_rounds = 5 if args.fast else 9
    fleet_rounds = 2 if args.fast else 3
    fleet_things = 10 if args.fast else 25

    kernel = kernel_bench(kernel_events, kernel_rounds)
    disabled_overhead = (
        (kernel["disabled"] - kernel["baseline"]) / kernel["baseline"])
    enabled_overhead = (
        (kernel["enabled"] - kernel["baseline"]) / kernel["baseline"])
    print(f"kernel hot path ({kernel_events:,} events, min of "
          f"{kernel_rounds} alternating rounds):")
    print(f"  baseline (guard-free): {kernel['baseline']:7.3f} s")
    print(f"  disabled (no tracer):  {kernel['disabled']:7.3f} s  "
          f"overhead {disabled_overhead * 100:+.2f}%")
    print(f"  enabled (tracer on):   {kernel['enabled']:7.3f} s  "
          f"overhead {enabled_overhead * 100:+.2f}%")

    fleet = fleet_bench(fleet_things, 10.0, args.seed, fleet_rounds)
    fleet_enabled_overhead = (
        (fleet["enabled"] - fleet["disabled"]) / fleet["disabled"])
    print(f"fleet smoke workload ({fleet_things} things):")
    print(f"  disabled: {fleet['disabled']:7.3f} s   "
          f"enabled: {fleet['enabled']:7.3f} s  "
          f"({fleet_enabled_overhead * 100:+.2f}%)")
    if not fleet["metrics_identical"]:
        print("FATAL: tracing changed the merged simulation metrics — "
              "instrumentation must never perturb behaviour",
              file=sys.stderr)
        return 1
    print("  merged metrics identical across modes: yes")

    document = {
        "bench": "obs",
        "seed": args.seed,
        "kernel": {
            "events": kernel_events,
            "rounds": kernel_rounds,
            "baseline_wall_s": round(kernel["baseline"], 4),
            "disabled_wall_s": round(kernel["disabled"], 4),
            "enabled_wall_s": round(kernel["enabled"], 4),
        },
        "fleet": {
            "things": fleet_things,
            "rounds": fleet_rounds,
            "disabled_wall_s": round(fleet["disabled"], 4),
            "enabled_wall_s": round(fleet["enabled"], 4),
            "enabled_overhead": round(fleet_enabled_overhead, 4),
            "metrics_identical": fleet["metrics_identical"],
        },
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "passed": disabled_overhead <= MAX_DISABLED_OVERHEAD,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    if disabled_overhead > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-mode overhead {disabled_overhead * 100:.2f}% "
              f"exceeds the {MAX_DISABLED_OVERHEAD * 100:.0f}% budget",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
