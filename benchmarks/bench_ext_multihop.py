"""Extension bench: multi-hop multicast performance (§9 future work).

"We are deploying a large network of µPnP devices across multiple
geographic locations in order to test the performance of multicast
service discovery in heterogeneous and multi-hop network environments."
— the paper left this to future work; the simulation substrate runs it.
"""

import pytest

from repro.analysis.multihop import (
    latency_vs_hops,
    loss_sensitivity,
    render_multihop_study,
    transmissions_vs_subscribers,
)


def test_ext_latency_vs_hops(benchmark):
    trials = benchmark.pedantic(
        latency_vs_hops, kwargs=dict(hop_counts=(1, 2, 3, 4, 5)),
        iterations=1, rounds=1,
    )
    print()
    for trial in trials:
        print(f"  {trial.hops} hops: RTT {trial.latency_s * 1e3:7.1f} ms, "
              f"{trial.multicast_transmissions} multicast transmissions")
    assert all(t.found for t in trials)
    latencies = [t.latency_s for t in trials]
    assert latencies == sorted(latencies)            # monotone in hops
    # Roughly linear: per-hop increments within 2x of each other.
    increments = [b - a for a, b in zip(latencies, latencies[1:])]
    assert max(increments) / min(increments) < 2.0
    # Discovery multicast costs one transmission per hop (+1 downlink).
    assert [t.multicast_transmissions for t in trials] == [2, 3, 4, 5, 6]


def test_ext_loss_sensitivity(benchmark):
    results = benchmark.pedantic(loss_sensitivity, iterations=1, rounds=1)
    print()
    for loss, rate in results:
        print(f"  frame loss {loss:4.0%}: discovery success {rate:4.0%}")
    by_loss = dict(results)
    assert by_loss[0.0] == 1.0
    assert by_loss[0.4] < 0.5  # no retransmissions: fragile, as expected


def test_ext_smrf_fanout_cost(benchmark):
    results = benchmark.pedantic(transmissions_vs_subscribers,
                                 iterations=1, rounds=1)
    print()
    for count, transmissions in results:
        print(f"  {count} subscribed clients: {transmissions} transmissions")
    # SMRF pays one uplink + one transmission per member-bearing link:
    # star of 2-hop arms -> 2n + 1.
    assert [tx for _, tx in results] == [2 * n + 1 for n, _ in results]


def test_ext_render_study(benchmark):
    text = benchmark.pedantic(render_multihop_study, iterations=1, rounds=1)
    print()
    print(text)
    assert "Extension" in text


def test_ext_concurrent_plug_pipelines(benchmark):
    """Three peripherals plugged in the same instant: identification is
    one shared round, network phases pipeline through the router."""
    from tests.integration.conftest import build_world
    from repro.drivers.catalog import make_peripheral_board

    def scenario():
        world = build_world(seed=61)
        for key in ("tmp36", "bmp180", "id20la"):
            world.thing.plug(
                make_peripheral_board(key, rng=world.rng.stream(key))
            )
        world.run(6.0)
        activated = world.thing.events_of("driver-activated")
        rounds = world.thing.controller.rounds_run
        return activated, rounds

    activated, rounds = benchmark.pedantic(scenario, iterations=1, rounds=1)
    assert len(activated) == 3
    # Interrupts during the first round coalesce: at most 2 rounds total.
    assert rounds <= 2
    last_ms = max(e.time_s for e in activated) * 1e3
    print(f"\n3 concurrent plugs: all activated by {last_ms:.1f} ms "
          f"({rounds} identification rounds)")
    assert last_ms < 1500
