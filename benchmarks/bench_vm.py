"""Engineering bench: pre-decoded threaded VM dispatch vs the reference
interpreter, plus the kernel event-loop hot path.

Three sections, written to ``BENCH_vm.json``:

1. **VM microbench (the headline).**  Synthetic handler workloads —
   control-flow, arithmetic and array-memory dominated — executed
   repeatedly under both engines.  Reports steps/s per mode and the
   speedup; the tentpole target is >=3x.  Per-handler cycle counts are
   cross-checked for exact equality on every workload *and* on every
   catalogue driver handler: the fastpath must be indistinguishable
   from the reference interpreter in everything but wall-clock.

2. **Kernel microbench.**  A tight schedule/dispatch chain over the
   tuple-keyed heap (events/s) — the path every simulated event
   crosses.

3. **Fleet workload.**  One serial metro sweep per mode on the same
   scenario/seed as BENCH_fleet.json, with all translate/compile caches
   dropped before each mode so the reference number approximates the
   pre-PR interpreter.  Merged metric digests must be bit-identical
   across modes; target >=1.5x events/s.

``--smoke`` runs a reduced version and **fails (exit 1)** if the
fastpath falls below reference throughput anywhere, if any cycle count
diverges, or if the fleet digest changes between modes — the CI
regression gate.

    PYTHONPATH=src python benchmarks/bench_vm.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.vmperf import _encode, _i, _image_for  # noqa: E402
from repro.drivers.catalog import CATALOG  # noqa: E402
from repro.dsl.bytecode import Op, _unpack_cached  # noqa: E402
from repro.dsl.compiler import (  # noqa: E402
    compile_source,
    _compile_source_default,
)
from repro.dsl.lint import _lint_source_cached  # noqa: E402
from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402
from repro.vm import fastpath, tracecomp  # noqa: E402
from repro.vm.machine import (  # noqa: E402
    DriverInstance,
    VirtualMachine,
    VmTrap,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_vm.json"
FLEET_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Tentpole targets (reported; the --smoke gate only enforces >=1x).
VM_TARGET_SPEEDUP = 3.0
FLEET_TARGET_SPEEDUP = 1.5
#: Trace-compiled dispatch vs the existing fastpath, on hot-loop images
#: whose basic blocks actually fuse (>= MIN_FUSE_LEN instructions).
TRACE_TARGET_SPEEDUP = 1.3


# ----------------------------------------------------------- VM workloads
def _loop(body, iterations):
    """countdown loop: slot 7 runs *iterations* times around *body*."""
    body_code = _encode(*body)
    return _encode(
        _i(Op.PUSH16, iterations), _i(Op.STG, 7),
        *body,
        _i(Op.DECG, 7),
        _i(Op.JNZS, -(len(body_code) + 4)),
        _i(Op.RET),
    )


def vm_workloads(iterations):
    """name -> (image, args): synthetic handlers dominated by different
    instruction classes."""
    control = _loop((), iterations)
    arith = _loop((
        _i(Op.LDG, 0), _i(Op.PUSH8, 3), _i(Op.MUL), _i(Op.PUSH8, 7),
        _i(Op.ADD), _i(Op.LDP, 0), _i(Op.BXOR), _i(Op.STG, 0),
    ), iterations)
    memory = _loop((
        _i(Op.LDG, 7), _i(Op.PUSH8, 7), _i(Op.BAND), _i(Op.DUP),
        _i(Op.LDE, 8), _i(Op.PUSH1), _i(Op.ADD),
        _i(Op.STE, 8),
    ), iterations)
    return {
        "control_flow": (_image_for(control, n_params=1), (1,)),
        "arithmetic": (_image_for(arith, n_params=1), (0x5A5A,)),
        "array_memory": (_image_for(memory, n_params=1), (1,)),
    }


def _time_workload(mode, image, args, repeats):
    """(wall seconds, total steps, cycles of one run) for *repeats*
    executions of handler 0 under *mode*."""
    vm = VirtualMachine(mode=mode)
    instance = DriverInstance(image)
    handler = image.handlers[0]
    # Warm once outside the clock: translation (fast mode) + allocator.
    result = vm.execute(instance, handler, args)
    started = time.perf_counter()
    for _ in range(repeats):
        vm.execute(instance, handler, args)
    wall = time.perf_counter() - started
    return wall, result.steps * repeats, result.cycles


def vm_bench(iterations, repeats, rounds):
    section = {"workloads": [], "repeats": repeats, "iterations": iterations}
    worst = None
    for name, (image, args) in vm_workloads(iterations).items():
        best = {}
        cycles = {}
        for _ in range(rounds):
            for mode in ("reference", "fast"):
                wall, steps, cyc = _time_workload(mode, image, args, repeats)
                rate = steps / wall
                if mode not in best or rate > best[mode]:
                    best[mode] = rate
                cycles[mode] = cyc
        speedup = best["fast"] / best["reference"]
        section["workloads"].append({
            "name": name,
            "reference_steps_per_s": round(best["reference"]),
            "fastpath_steps_per_s": round(best["fast"]),
            "speedup": round(speedup, 2),
            "cycles_identical": cycles["fast"] == cycles["reference"],
        })
        if worst is None or speedup < worst:
            worst = speedup
    section["worst_speedup"] = round(worst, 2)
    section["meets_3x_target"] = worst >= VM_TARGET_SPEEDUP
    return section


def trace_bench(iterations, repeats, rounds):
    """Trace-compiled dispatch vs the plain fastpath.

    Only hot-loop images whose basic blocks fuse count toward the
    speedup target: ``control_flow`` is a bare countdown (every block
    under MIN_FUSE_LEN, zero traces compiled — reported but excluded),
    while ``arithmetic`` and ``array_memory`` each fuse a long loop
    body into one superinstruction closure.
    """
    section = {"workloads": [], "repeats": repeats, "iterations": iterations}
    worst_fused = None
    for name, (image, args) in vm_workloads(iterations).items():
        tracecomp.clear_traces()
        best = {}
        cycles = {}
        for _ in range(rounds):
            for mode in ("fast", "trace"):
                wall, steps, cyc = _time_workload(mode, image, args, repeats)
                rate = steps / wall
                if mode not in best or rate > best[mode]:
                    best[mode] = rate
                cycles[mode] = cyc
        stats = tracecomp.trace_stats()
        speedup = best["trace"] / best["fast"]
        fused = stats["blocks"] > 0
        section["workloads"].append({
            "name": name,
            "fastpath_steps_per_s": round(best["fast"]),
            "trace_steps_per_s": round(best["trace"]),
            "speedup_vs_fastpath": round(speedup, 2),
            "traces_compiled": stats["images"],
            "blocks_fused": stats["blocks"],
            "cycles_identical": cycles["trace"] == cycles["fast"],
        })
        if fused and (worst_fused is None or speedup < worst_fused):
            worst_fused = speedup
    section["worst_fused_speedup"] = (
        round(worst_fused, 2) if worst_fused is not None else None)
    section["meets_1_3x_target"] = (
        worst_fused is not None and worst_fused >= TRACE_TARGET_SPEEDUP)
    return section


def cycle_parity_check():
    """Every catalogue driver handler: identical cycles/steps or the
    identical trap under both engines.  Returns list of failures."""
    failures = []
    for spec in CATALOG.values():
        image = compile_source(spec.dsl_source(), spec.device_id.value)
        for handler in image.handlers:
            outcomes = {}
            for mode in ("reference", "fast", "trace"):
                vm = VirtualMachine(mode=mode)
                instance = DriverInstance(image)
                args = tuple(range(handler.n_params))
                try:
                    result = vm.execute(
                        instance, handler, args,
                        signal_sink=lambda *_: None,
                        return_sink=lambda _: None,
                    )
                    outcomes[mode] = (result.cycles, result.steps)
                except VmTrap as trap:
                    outcomes[mode] = ("trap", str(trap))
            for mode in ("fast", "trace"):
                if outcomes[mode] != outcomes["reference"]:
                    failures.append(
                        f"{spec.name} handler {handler.name_id} [{mode}]: "
                        f"{outcomes['reference']} != {outcomes[mode]}"
                    )
    return failures


# --------------------------------------------------------- kernel section
def kernel_bench(events, rounds):
    """Schedule+dispatch chain throughput over the tuple-keyed heap."""
    best = 0.0
    for _ in range(rounds):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < events:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        best = max(best, events / wall)
    return {"chain_events": events, "events_per_s": round(best)}


# ---------------------------------------------------------- fleet section
def _clear_caches():
    fastpath.clear_cache()
    _compile_source_default.cache_clear()
    _lint_source_cached.cache_clear()
    _unpack_cached.cache_clear()


def _fleet_run(mode, nodes, duration_s, seed):
    os.environ["REPRO_VM_MODE"] = mode
    try:
        scenario = SCENARIOS["metro"].scaled(
            name=f"metro-{nodes}", things=nodes,
            duration_s=duration_s, seed=seed,
        )
        result = run_scenario(scenario, workers=1)
    finally:
        os.environ.pop("REPRO_VM_MODE", None)
    blob = json.dumps(result.merged, sort_keys=True).encode()
    return {
        "wall_s": result.wall_s,
        "sim_events": result.sim_events,
        "events_per_s": result.events_per_s,
        "merged_digest": hashlib.sha256(blob).hexdigest()[:16],
    }


def fleet_bench(nodes, duration_s, seed, rounds):
    """Reference drops every cache before each round (approximating the
    pre-PR engine, which recompiled per shard and re-decoded per step);
    fastpath drops caches once, then runs warm — the steady-state
    behaviour a deployed fleet sees after the first shard."""
    points = {}
    for mode in ("reference", "fast"):
        _clear_caches()
        if mode == "fast":
            _fleet_run(mode, nodes, duration_s, seed)  # warm translations
        best = None
        for _ in range(rounds):
            if mode == "reference":
                _clear_caches()
            point = _fleet_run(mode, nodes, duration_s, seed)
            if best is None or point["events_per_s"] > best["events_per_s"]:
                best = point
        points[mode] = best
    speedup = points["fast"]["events_per_s"] / points["reference"]["events_per_s"]
    section = {
        "scenario": "metro",
        "nodes": nodes,
        "duration_s": duration_s,
        "seed": seed,
        "reference": points["reference"],
        "fastpath": points["fast"],
        "speedup": round(speedup, 2),
        "digests_identical": (points["fast"]["merged_digest"]
                              == points["reference"]["merged_digest"]),
        "meets_1_5x_target": speedup >= FLEET_TARGET_SPEEDUP,
    }
    previous = _previous_fleet_number(nodes)
    if previous is not None:
        section["pre_pr_events_per_s"] = previous
        section["speedup_vs_pre_pr"] = round(
            points["fast"]["events_per_s"] / previous, 2)
    return section


def _previous_fleet_number(nodes):
    """The recorded pre-PR events/s for (nodes, workers=1), if any."""
    if not FLEET_BASELINE.exists():
        return None
    try:
        recorded = json.loads(FLEET_BASELINE.read_text())
        for point in recorded.get("sweep", []):
            if point["nodes"] == nodes and point["workers"] == 1:
                return point["events_per_s"]
    except (ValueError, KeyError):
        return None
    return None


# ------------------------------------------------------------------ main
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes + hard regression gate")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    if args.smoke:
        iterations, repeats, rounds = 2_000, 20, 2
        kernel_events, fleet_nodes, fleet_duration = 20_000, 20, 5.0
    else:
        iterations, repeats, rounds = 10_000, 60, 3
        kernel_events, fleet_nodes, fleet_duration = 200_000, 50, 10.0

    report = {
        "bench": "vm",
        "smoke": args.smoke,
        "vm": vm_bench(iterations, repeats, rounds),
        "trace": trace_bench(iterations, repeats, rounds),
        "kernel": kernel_bench(kernel_events, rounds),
        "fleet": fleet_bench(fleet_nodes, fleet_duration, args.seed, rounds),
    }
    parity_failures = cycle_parity_check()
    report["catalog_cycle_parity"] = not parity_failures

    failures = list(parity_failures)
    for workload in report["vm"]["workloads"]:
        if not workload["cycles_identical"]:
            failures.append(f"cycle divergence in {workload['name']}")
        if workload["speedup"] < 1.0:
            failures.append(
                f"fastpath slower than reference on {workload['name']} "
                f"({workload['speedup']}x)"
            )
    for workload in report["trace"]["workloads"]:
        if not workload["cycles_identical"]:
            failures.append(
                f"cycle divergence under trace mode in {workload['name']}")
        if workload["blocks_fused"] and workload["speedup_vs_fastpath"] < 1.0:
            failures.append(
                f"trace dispatch slower than fastpath on fused workload "
                f"{workload['name']} ({workload['speedup_vs_fastpath']}x)"
            )
    if not report["fleet"]["digests_identical"]:
        failures.append("fleet merged digest changed between VM modes")
    if report["fleet"]["speedup"] < 1.0:
        failures.append(
            f"fastpath fleet run slower than reference "
            f"({report['fleet']['speedup']}x)"
        )
    report["gate_failures"] = failures

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    vm = report["vm"]
    print(f"VM workloads (worst speedup {vm['worst_speedup']}x, "
          f"target {VM_TARGET_SPEEDUP}x):")
    for workload in vm["workloads"]:
        print(f"  {workload['name']:14s} "
              f"ref {workload['reference_steps_per_s']:>12,} steps/s   "
              f"fast {workload['fastpath_steps_per_s']:>12,} steps/s   "
              f"{workload['speedup']}x")
    trace = report["trace"]
    print(f"trace compilation (worst fused speedup "
          f"{trace['worst_fused_speedup']}x, target "
          f"{TRACE_TARGET_SPEEDUP}x):")
    for workload in trace["workloads"]:
        print(f"  {workload['name']:14s} "
              f"fast {workload['fastpath_steps_per_s']:>12,} steps/s   "
              f"trace {workload['trace_steps_per_s']:>12,} steps/s   "
              f"{workload['speedup_vs_fastpath']}x  "
              f"({workload['blocks_fused']} blocks fused)")
    print(f"kernel chain: {report['kernel']['events_per_s']:,} events/s")
    fleet = report["fleet"]
    print(f"fleet metro-{fleet['nodes']}: "
          f"ref {fleet['reference']['events_per_s']:,.0f} ev/s   "
          f"fast {fleet['fastpath']['events_per_s']:,.0f} ev/s   "
          f"{fleet['speedup']}x  digest match: {fleet['digests_identical']}")
    if "speedup_vs_pre_pr" in fleet:
        print(f"  vs recorded pre-PR number: {fleet['speedup_vs_pre_pr']}x")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
