"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper — these isolate *why* the reconstruction's design
points are where they are:

1. ratio-metric decoding vs. the board's ±5 % capacitor tolerance,
2. identification reliability vs. peripheral resistor tolerance,
3. bytecode-encoding features vs. Table 3 image sizes.
"""

import pytest

from repro.analysis.ablation import (
    decode_monte_carlo,
    encoding_ablation,
    render_ablations,
    tolerance_sweep,
)


def test_ablation_ratiometric_decoding(benchmark):
    result = benchmark.pedantic(
        decode_monte_carlo, kwargs=dict(ratiometric=False, trials=300),
        iterations=1, rounds=1,
    )
    good = decode_monte_carlo(ratiometric=True, trials=300)
    print(f"\nratio-metric: {good.failure_rate:.1%} failures; "
          f"naive reference: {result.failure_rate:.1%} failures "
          f"({result.silent_failure_rate:.1%} silently wrong)")
    assert good.failure_rate == 0.0
    assert result.failure_rate > 0.5


def test_ablation_resistor_tolerance(benchmark):
    sweep = benchmark.pedantic(tolerance_sweep, iterations=1, rounds=1)
    print()
    for tolerance, result in sweep:
        print(f"  tolerance {tolerance:6.2%}: {result.failure_rate:6.1%} failures "
              f"({result.silent_failure_rate:.1%} silent)")
    by_tolerance = dict(sweep)
    assert by_tolerance[0.005].failure_rate == 0.0   # the design point
    assert by_tolerance[0.02].failure_rate > 0.5     # past the guard band
    rates = [result.failure_rate for _, result in sweep]
    assert rates == sorted(rates)                    # monotone degradation


def test_ablation_encoding_features(benchmark):
    ablation = benchmark(encoding_ablation)
    print()
    for variant, sizes in ablation.items():
        print(f"  {variant:22s}: total {sum(sizes.values()):5d} B  {sizes}")
    totals = {variant: sum(sizes.values()) for variant, sizes in ablation.items()}
    assert totals["full"] < totals["no compact registers"]
    assert totals["full"] < totals["no short jumps"]
    assert totals["full"] <= totals["no immediate index"]
    assert totals["full"] < totals["plain encoding"]
    # The combined features are worth >= 8% on the Table 3 corpus.
    assert totals["full"] / totals["plain encoding"] < 0.92


def test_render_ablations_smoke(benchmark):
    text = benchmark.pedantic(render_ablations, iterations=1, rounds=1)
    print()
    print(text)
    assert "Ablation 1" in text and "Ablation 3" in text


def test_ablation_6lowpan_compression(benchmark):
    """Header compression's contribution to the Table 4 install path:
    with compression off, the driver upload needs more/larger fragments
    and the request/install rows stretch."""
    from repro.analysis.network import run_table4
    from repro.net.lowpan import LowpanModel

    uncompressed = benchmark.pedantic(
        run_table4,
        kwargs=dict(trials=5, lowpan=LowpanModel(compression=False)),
        iterations=1, rounds=1,
    )
    compressed = run_table4(trials=5)
    row = "Request driver"
    print(f"\n{row}: compressed {compressed.rows[row].mean * 1e3:.2f} ms, "
          f"uncompressed {uncompressed.rows[row].mean * 1e3:.2f} ms")
    assert uncompressed.rows[row].mean > compressed.rows[row].mean
    assert uncompressed.total_mean_ms() > compressed.total_mean_ms()


def test_ablation_congestion(benchmark):
    """§6.4 measures an *uncongested* one-hop network; this sweep shows
    how the pipeline's network rows degrade as the medium gets busy
    (802.15.4 binary-exponential backoff under load)."""
    from repro.analysis.network import run_table4
    from repro.net.link import LinkModel

    def sweep():
        results = {}
        for busy in (0.0, 0.3, 0.6, 0.9):
            results[busy] = run_table4(
                trials=4, link=LinkModel(busy_probability=busy)
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print()
    request_means = []
    for busy, result in results.items():
        mean_ms = result.rows["Request driver"].mean * 1e3
        request_means.append(mean_ms)
        print(f"  channel busy {busy:3.0%}: request driver "
              f"{mean_ms:7.2f} ms, total {result.total_mean_ms():7.2f} ms")
    assert request_means == sorted(request_means)          # monotone in load
    assert request_means[-1] > request_means[0] * 1.05     # visible effect
