"""Engineering bench: fleet-scale scenario engine throughput and scaling.

Not a paper result — this seeds the repo's perf trajectory for the
fleet workload.  Sweeps node count x worker count over the metro
scenario, reporting wall-clock, simulated events per second and the
parallel speedup versus one worker, then writes ``BENCH_fleet.json``.

    PYTHONPATH=src python benchmarks/bench_fleet.py [--fast] [--out PATH]

Merged metrics are also cross-checked between worker counts: the fleet
guarantees bit-identical results for any ``--workers`` setting, so a
mismatch here is a correctness failure, not a perf number.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402

NODE_SWEEP = (10, 50, 200)
WORKER_SWEEP = (1, 4, 8)
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def bench_point(nodes: int, workers: int, *, duration_s: float, seed: int) -> dict:
    scenario = SCENARIOS["metro"].scaled(
        name=f"metro-{nodes}", things=nodes, duration_s=duration_s, seed=seed,
    )
    result = run_scenario(scenario, workers=workers)
    return {
        "nodes": nodes,
        "workers": workers,
        "shards": scenario.shard_count,
        "wall_s": round(result.wall_s, 4),
        "sim_events": result.sim_events,
        "events_per_s": round(result.events_per_s, 1),
        "identifications": result.counter("identifications"),
        "used_processes": result.used_processes,
        "merged_digest": _digest(result.merged),
    }


def _digest(merged: dict) -> str:
    import hashlib

    blob = json.dumps(merged, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="shorter simulated duration (quick smoke)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_fleet.json")
    args = parser.parse_args(argv)
    duration_s = 10.0 if args.fast else 30.0

    # Carry forward the previous run's numbers so the written file
    # records before/after for the same (nodes, workers) points — the
    # repo's perf trajectory in one artifact.
    previous = {}
    out_path = Path(args.out)
    if out_path.exists():
        try:
            for point in json.loads(out_path.read_text()).get("sweep", []):
                key = (point["nodes"], point["workers"])
                previous[key] = point["events_per_s"]
        except (ValueError, KeyError):
            previous = {}

    sweep = []
    for nodes in NODE_SWEEP:
        baseline_wall = None
        baseline_digest = None
        for workers in WORKER_SWEEP:
            point = bench_point(nodes, workers,
                                duration_s=duration_s, seed=args.seed)
            if workers == 1:
                baseline_wall = point["wall_s"]
                baseline_digest = point["merged_digest"]
            point["speedup_vs_1_worker"] = (
                round(baseline_wall / point["wall_s"], 3)
                if point["wall_s"] > 0 else None
            )
            if point["merged_digest"] != baseline_digest:
                print(f"FATAL: merged metrics differ between workers=1 and "
                      f"workers={workers} at nodes={nodes}", file=sys.stderr)
                return 1
            prior = previous.get((nodes, workers))
            if prior:
                point["previous_events_per_s"] = prior
                point["speedup_vs_previous"] = round(
                    point["events_per_s"] / prior, 2)
            sweep.append(point)
            print(f"nodes={nodes:<4} workers={workers}  "
                  f"wall={point['wall_s']:>7.2f}s  "
                  f"events/s={point['events_per_s']:>10,.0f}  "
                  f"speedup={point['speedup_vs_1_worker']}")

    best_200 = max(
        (p for p in sweep if p["nodes"] == 200 and p["workers"] > 1),
        key=lambda p: p["speedup_vs_1_worker"],
        default=None,
    )
    document = {
        "bench": "fleet",
        "scenario": "metro",
        "duration_s": duration_s,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "sweep": sweep,
        "best_200_node_speedup": (
            best_200["speedup_vs_1_worker"] if best_200 else None
        ),
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    if best_200 is not None:
        print(f"best 200-node speedup: {best_200['speedup_vs_1_worker']}x "
              f"at {best_200['workers']} workers "
              f"({os.cpu_count()} CPUs visible)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
