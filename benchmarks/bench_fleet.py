"""Engineering bench: fleet-scale scenario engine throughput and scaling.

Not a paper result — this seeds the repo's perf trajectory for the
fleet workload.  Sweeps node count x worker count over the metro
scenario, reporting wall-clock, simulated events per second and the
parallel speedup versus one worker, then runs the duty-cycled
fast-forward section (FF off/on x 1/2 workers, digest-checked), then
writes ``BENCH_fleet.json``.

    PYTHONPATH=src python benchmarks/bench_fleet.py [--fast] [--out PATH]

Merged metrics are also cross-checked between worker counts and between
fast-forward off/on: the fleet guarantees bit-identical results for any
``--workers`` setting and any ``fast_forward`` setting, so a mismatch
here is a correctness failure, not a perf number.

Noise control: one warmup run absorbs cold costs (driver catalogue
compile/lint caches, interpreter warm-up) before anything is timed, and
every point is re-run until it has accumulated ``MIN_WALL_S`` of
measured work (capped at ``MAX_REPEATS``), keeping the best run.
Points whose best wall time still sits under the floor are flagged
``below_work_floor`` — their speedup ratios are dominated by fixed
per-run costs (process-pool spin-up, pickling) and must not be read as
regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.sampling import SamplingConfig  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402

NODE_SWEEP = (10, 50, 200)
WORKER_SWEEP = (1, 4, 8)
#: A point must accumulate this much measured wall time before its
#: throughput number is trusted; re-run (keeping the best) until it
#: does, up to MAX_REPEATS runs.
MIN_WALL_S = 0.75
MAX_REPEATS = 5
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _digest(merged: dict) -> str:
    import hashlib

    blob = json.dumps(merged, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _run_floored(scenario, workers: int) -> tuple:
    """Run until MIN_WALL_S of work is accumulated; keep the best run."""
    best = None
    accumulated = 0.0
    repeats = 0
    while repeats < MAX_REPEATS:
        result = run_scenario(scenario, workers=workers)
        repeats += 1
        accumulated += result.wall_s
        if best is None or result.wall_s < best.wall_s:
            best = result
        if accumulated >= MIN_WALL_S:
            break
    return best, repeats


def bench_point(nodes: int, workers: int, *, duration_s: float,
                seed: int) -> dict:
    scenario = SCENARIOS["metro"].scaled(
        name=f"metro-{nodes}", things=nodes, duration_s=duration_s, seed=seed,
    )
    result, repeats = _run_floored(scenario, workers)
    return {
        "nodes": nodes,
        "workers": workers,
        "shards": scenario.shard_count,
        "wall_s": round(result.wall_s, 4),
        "repeats": repeats,
        "below_work_floor": result.wall_s < MIN_WALL_S,
        "sim_events": result.sim_events,
        "events_per_s": round(result.events_per_s, 1),
        "identifications": result.counter("identifications"),
        "used_processes": result.used_processes,
        "merged_digest": _digest(result.merged),
    }


def bench_fastforward(*, duration_s: float, seed: int) -> dict:
    """The duty-cycled fast-forward section.

    Runs the ``duty`` scenario (and a sampler-dense variant) with the
    kernel's closed-form idle fast-forward off and on, across 1 and 2
    workers, asserting the four merged digests are byte-identical.
    """
    points = []
    variants = (
        ("duty", SCENARIOS["duty"].scaled(duration_s=duration_s, seed=seed)),
        # Sampler-dense: 2/4 ms cadences make certified windows dominate
        # utterly — the point that tracks the roadmap's 10x target.
        ("duty-dense", SCENARIOS["duty"].scaled(
            name="duty-dense", duration_s=duration_s, seed=seed,
            sampling=SamplingConfig(sensor_interval_ms=2,
                                    baseline_interval_ms=4),
        )),
    )
    for label, base in variants:
        digests = set()
        off_events_per_s = None
        for fast_forward in (False, True):
            scenario = base.scaled(fast_forward=fast_forward)
            for workers in (1, 2):
                result, repeats = _run_floored(scenario, workers)
                digests.add(_digest(result.merged))
                point = {
                    "scenario": label,
                    "fast_forward": fast_forward,
                    "workers": workers,
                    "wall_s": round(result.wall_s, 4),
                    "repeats": repeats,
                    "below_work_floor": result.wall_s < MIN_WALL_S,
                    "sim_events": result.sim_events,
                    "events_per_s": round(result.events_per_s, 1),
                    "ff_windows_skipped": result.ff_windows_skipped,
                    "ff_events_skipped": result.ff_events_skipped,
                    "merged_digest": _digest(result.merged),
                }
                if not fast_forward and workers == 1:
                    off_events_per_s = point["events_per_s"]
                if fast_forward:
                    point["events_per_s_ff"] = point["events_per_s"]
                    if workers == 1 and off_events_per_s:
                        point["speedup_vs_ff_off"] = round(
                            point["events_per_s"] / off_events_per_s, 2)
                points.append(point)
                print(f"{label:<11} ff={'on ' if fast_forward else 'off'} "
                      f"workers={workers}  wall={point['wall_s']:>7.3f}s  "
                      f"events/s={point['events_per_s']:>12,.0f}  "
                      f"skipped={point['ff_events_skipped']:,}")
        if len(digests) != 1:
            raise SystemExit(
                f"FATAL: merged metrics differ across fast-forward/workers "
                f"for {label}: {sorted(digests)}")
    return {"points": points}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="shorter simulated duration (quick smoke)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_fleet.json")
    args = parser.parse_args(argv)
    duration_s = 10.0 if args.fast else 30.0

    # Warmup: absorb cold costs (driver catalogue compile/lint caches)
    # so the first timed point isn't penalised.
    run_scenario(SCENARIOS["smoke"].scaled(duration_s=2.0), workers=1)

    # Carry forward the previous run's numbers so the written file
    # records before/after for the same (nodes, workers) points — the
    # repo's perf trajectory in one artifact.
    previous = {}
    out_path = Path(args.out)
    if out_path.exists():
        try:
            for point in json.loads(out_path.read_text()).get("sweep", []):
                key = (point["nodes"], point["workers"])
                previous[key] = point["events_per_s"]
        except (ValueError, KeyError):
            previous = {}

    sweep = []
    for nodes in NODE_SWEEP:
        baseline_wall = None
        baseline_digest = None
        for workers in WORKER_SWEEP:
            point = bench_point(nodes, workers,
                                duration_s=duration_s, seed=args.seed)
            if workers == 1:
                baseline_wall = point["wall_s"]
                baseline_digest = point["merged_digest"]
            point["speedup_vs_1_worker"] = (
                round(baseline_wall / point["wall_s"], 3)
                if point["wall_s"] > 0 else None
            )
            if point["merged_digest"] != baseline_digest:
                print(f"FATAL: merged metrics differ between workers=1 and "
                      f"workers={workers} at nodes={nodes}", file=sys.stderr)
                return 1
            prior = previous.get((nodes, workers))
            if prior:
                point["previous_events_per_s"] = prior
                point["speedup_vs_previous"] = round(
                    point["events_per_s"] / prior, 2)
            sweep.append(point)
            print(f"nodes={nodes:<4} workers={workers}  "
                  f"wall={point['wall_s']:>7.2f}s  "
                  f"events/s={point['events_per_s']:>10,.0f}  "
                  f"speedup={point['speedup_vs_1_worker']}")

    fastforward = bench_fastforward(duration_s=duration_s, seed=args.seed)

    best_200 = max(
        (p for p in sweep if p["nodes"] == 200 and p["workers"] > 1),
        key=lambda p: p["speedup_vs_1_worker"],
        default=None,
    )
    document = {
        "bench": "fleet",
        "scenario": "metro",
        "duration_s": duration_s,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "min_wall_s": MIN_WALL_S,
        "sweep": sweep,
        "fastforward": fastforward,
        "best_200_node_speedup": (
            best_200["speedup_vs_1_worker"] if best_200 else None
        ),
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    if best_200 is not None:
        print(f"best 200-node speedup: {best_200['speedup_vs_1_worker']}x "
              f"at {best_200['workers']} workers "
              f"({os.cpu_count()} CPUs visible)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
