"""Engineering bench: throughput of the simulation substrate itself.

Not a paper result — establishes that the DES kernel and the event
router sustain the event rates the experiment harnesses need.
"""

import pytest

from repro.sim.kernel import Simulator
from repro.vm.cost import DEFAULT_COST
from repro.vm.machine import DriverInstance, VirtualMachine
from repro.vm.router import CallbackDelivery, EventRouter


def test_kernel_event_throughput(benchmark):
    def drain(n=20_000):
        sim = Simulator()
        for i in range(n):
            sim.schedule(i, lambda: None)
        return sim.run()

    executed = benchmark(drain)
    assert executed == 20_000


def test_router_dispatch_throughput(benchmark):
    def drain(n=2_000):
        sim = Simulator()
        router = EventRouter(sim, queue_limit=n + 1)
        for _ in range(n):
            router.post(CallbackDelivery(lambda: None, cycles=100))
        sim.run()
        return router.stats.dispatched

    dispatched = benchmark(drain)
    assert dispatched == 2_000


def test_vm_interpretation_throughput(benchmark):
    """Host instructions/second interpreting the BMP180 hot path."""
    from repro.dsl.bytecode import HANDLER_KIND_EVENT
    from repro.drivers.catalog import CATALOG
    from repro.dsl.symbols import well_known_id

    image = CATALOG["bmp180"].compile()
    instance = DriverInstance(image)
    vm = VirtualMachine()
    handler = image.find_handler(HANDLER_KIND_EVENT,
                                 well_known_id("init"))
    sink = lambda *a: None  # noqa: E731

    result = benchmark(
        lambda: vm.execute(instance, handler, (),
                           signal_sink=sink, return_sink=sink)
    )
    assert result.steps > 0
