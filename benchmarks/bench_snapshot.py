"""Engineering bench: checkpoint cost, size and resume speedup.

Three questions about the snapshot subsystem, answered on the same
machine in the same run:

1. What does one shard checkpoint cost (``save_s``) and how fast does
   it come back (``restore_s``)?
2. How big is a checkpoint on disk — total and per simulated node —
   after the codec's zlib envelope?
3. How much wall clock does resuming from a late checkpoint save over
   rerunning from scratch (``resume_speedup``), and is the resumed
   run byte-identical (``parity``)?

    PYTHONPATH=src python benchmarks/bench_snapshot.py [--smoke] [--out PATH]

Writes ``BENCH_snapshot.json``; exits non-zero when digest parity
fails, so CI can run it directly.  The regression sentinel watches
``*bytes_per_node`` (lower), ``*resume_speedup`` (higher) and
``*parity`` (equal).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.deployment import ShardDeployment  # noqa: E402
from repro.fleet.runner import (  # noqa: E402
    CheckpointPlan,
    resume_scenario,
    run_scenario,
)
from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.sim.kernel import ns_from_s  # noqa: E402
from repro.snapshot.checkpoint import (  # noqa: E402
    digest_document,
    load_shard,
    save_shard,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"


def _dir_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def bench_shard_save_restore(scenario, at_s: float, repeats: int) -> dict:
    """Time save_shard/load_shard on one warm shard, best of *repeats*."""
    spec = scenario.shards()[0]
    deployment = ShardDeployment(spec)
    deployment.start()
    deployment.sim.run_until(ns_from_s(at_s))
    root = Path(tempfile.mkdtemp(prefix="bench-snapshot-"))
    try:
        save_s = restore_s = None
        for index in range(repeats):
            target = root / f"try-{index}"
            started = time.perf_counter()
            save_shard(deployment, target, label="bench")
            elapsed = time.perf_counter() - started
            save_s = elapsed if save_s is None else min(save_s, elapsed)
            started = time.perf_counter()
            load_shard(target)
            elapsed = time.perf_counter() - started
            restore_s = elapsed if restore_s is None \
                else min(restore_s, elapsed)
        size = _dir_bytes(root / "try-0")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "shard_things": scenario.shard_size,
        "at_s": at_s,
        "save_s": round(save_s, 4),
        "restore_s": round(restore_s, 4),
        "shard_bytes": size,
    }


def bench_resume_speedup(scenario, at_s: float, repeats: int) -> dict:
    """Full rerun vs resume-from-late-checkpoint, plus digest parity."""
    rerun_s = None
    for _ in range(repeats):
        started = time.perf_counter()
        baseline = run_scenario(scenario, workers=1)
        elapsed = time.perf_counter() - started
        rerun_s = elapsed if rerun_s is None else min(rerun_s, elapsed)
    root = Path(tempfile.mkdtemp(prefix="bench-snapshot-fleet-"))
    try:
        checkpointed = run_scenario(
            scenario, workers=1,
            checkpoint=CheckpointPlan(directory=str(root), at_s=at_s),
        )
        size = _dir_bytes(root)
        resume_s = None
        for _ in range(repeats):
            started = time.perf_counter()
            resumed = resume_scenario(root, workers=1)
            elapsed = time.perf_counter() - started
            resume_s = elapsed if resume_s is None else min(resume_s, elapsed)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    digests = {
        "uninterrupted": digest_document(baseline.merged),
        "checkpointing": digest_document(checkpointed.merged),
        "resumed": digest_document(resumed.merged),
    }
    return {
        "things": scenario.things,
        "shards": scenario.shard_count,
        "duration_s": scenario.duration_s,
        "checkpoint_at_s": at_s,
        "rerun_s": round(rerun_s, 4),
        "resume_s": round(resume_s, 4),
        "resume_speedup": round(rerun_s / resume_s, 4) if resume_s else None,
        "checkpoint_bytes": size,
        "bytes_per_node": round(size / scenario.things, 1),
        "parity": "ok" if len(set(digests.values())) == 1 else "DIVERGED",
        "digests": digests,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small scenario, fewer repeats (CI)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_snapshot.json")
    args = parser.parse_args(argv)

    # Durations are long relative to restore cost so ``resume_speedup``
    # measures the skipped simulation work, not timer noise.
    things = 12 if args.smoke else 40
    duration_s = 30.0 if args.smoke else 90.0
    repeats = 2 if args.smoke else 3
    scenario = SCENARIOS["metro"].scaled(
        name="snapshot-bench", things=things, duration_s=duration_s,
        seed=args.seed,
    )
    # A late checkpoint makes the resume arm do 25% of the simulated
    # work — the speedup metric measures restore overhead against the
    # 75% of the run the checkpoint skips.
    at_s = duration_s * 0.75

    shard = bench_shard_save_restore(scenario, at_s, repeats)
    print(f"shard save   : {shard['save_s'] * 1000:8.1f} ms")
    print(f"shard restore: {shard['restore_s'] * 1000:8.1f} ms")
    print(f"shard size   : {shard['shard_bytes']:,} bytes")

    fleet = bench_resume_speedup(scenario, at_s, repeats)
    print(f"full rerun   : {fleet['rerun_s']:.3f} s")
    print(f"resume       : {fleet['resume_s']:.3f} s "
          f"(speedup {fleet['resume_speedup']}x)")
    print(f"fleet size   : {fleet['checkpoint_bytes']:,} bytes "
          f"({fleet['bytes_per_node']:,.0f} per node)")
    print(f"parity       : {fleet['parity']}")

    document = {
        "bench": "snapshot",
        "smoke": args.smoke,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "shard": shard,
        "fleet": fleet,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")

    if fleet["parity"] != "ok":
        print(f"FATAL: resume digest parity failed: {fleet['digests']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
