"""Engineering bench: profiler overhead, determinism and idle-gap yield.

The profiler promises a zero-cost disabled mode: a scenario without a
:class:`ProfileConfig` attaches nothing, so the kernel keeps running
the branch-free original ``step``/``schedule_at`` (attach-time method
shadowing, as with tracing) and the fast VM engine stays the
uninstrumented :func:`repro.vm.fastpath.execute_fast`.  The single
always-hot addition lives in the *reference* interpreter: one
``if hits is not None`` per executed step (plus a per-invocation
recorder check).

This bench verifies the promise:

1. **Structural check (fast engine, the fleet default).**  A disabled
   deployment must carry no kernel shadows and the plain fastpath —
   the disabled hot paths are literally the pre-profile code objects.

2. **Disabled-mode gate (reference engine).**  The fleet smoke
   workload under ``REPRO_VM_MODE=reference``, profile off, timed
   against a baseline running a pre-profile ``execute`` (recorder
   lines stripped from the current source — the strip asserts the
   lines exist, so drift fails loudly).  Rounds alternate modes so
   machine drift hits both equally; min-of-N discards stalls.
   **Fails (exit 1) if overhead exceeds 3%.**

3. **Enabled mode (reported).**  The ``default`` scenario fully
   profiled: enabled overhead, merged-profile digest identical across
   worker counts, workload byte-identical to the unprofiled run, and
   the idle-gap report's skippable fraction — the fast-forward
   opportunity number the roadmap's analytic-skip item builds on.

    PYTHONPATH=src python benchmarks/bench_profile.py [--fast] [--out PATH]

Writes ``BENCH_profile.json``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import textwrap
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.deployment import ShardDeployment  # noqa: E402
from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402
from repro.profile.collector import profile_digest  # noqa: E402
from repro.profile.config import DEFAULT_PROFILE  # noqa: E402
from repro.profile.report import idle_report  # noqa: E402
from repro.vm import machine  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_profile.json"

#: The acceptance gate: profiler-disabled runs must stay within 3% of
#: the pre-profile baseline.
MAX_DISABLED_OVERHEAD = 0.03

#: The recorder lines this PR added to the reference interpreter, with
#: their in-class indentation.  Stripping them from the live source
#: reconstructs the pre-profile ``execute`` byte-for-byte.
_RECORDER_LINES = (
    "        recorder = self._hit_recorder\n",
    "        hits = None\n",
    "        if recorder is not None:\n"
    "            recorder.executions += 1\n"
    "            hits = recorder.hits_for(instance.image)\n",
    "            if hits is not None:\n"
    "                hits[pc] += 1\n",
)


def pre_profile_execute():
    """The reference ``execute`` as it stood before hit recording."""
    source = inspect.getsource(machine.VirtualMachine.execute)
    for lines in _RECORDER_LINES:
        if lines not in source:
            raise SystemExit(
                "bench_profile: VirtualMachine.execute drifted; update "
                f"_RECORDER_LINES (missing {lines.splitlines()[0]!r})")
        source = source.replace(lines, "", 1)
    namespace = vars(machine).copy()
    exec(compile(textwrap.dedent(source), "<pre-profile execute>", "exec"),
         namespace)
    return namespace["execute"]


@contextmanager
def patched(attribute, value):
    saved = getattr(machine.VirtualMachine, attribute)
    setattr(machine.VirtualMachine, attribute, value)
    try:
        yield
    finally:
        setattr(machine.VirtualMachine, attribute, saved)


@contextmanager
def reference_engine():
    saved = os.environ.get("REPRO_VM_MODE")
    os.environ["REPRO_VM_MODE"] = "reference"
    try:
        yield
    finally:
        if saved is None:
            del os.environ["REPRO_VM_MODE"]
        else:
            os.environ["REPRO_VM_MODE"] = saved


# ------------------------------------------------------ structural check
def disabled_fast_is_structurally_identical() -> bool:
    """Disabled profiling leaves the fast hot paths untouched."""
    from repro.vm import fastpath

    scenario = SCENARIOS["smoke"].scaled(things=2, shard_size=2,
                                         duration_s=1.0)
    deployment = ShardDeployment(scenario.shards()[0])
    sim_clean = ("step" not in deployment.sim.__dict__
                 and "schedule_at" not in deployment.sim.__dict__
                 and deployment.sim.profiler is None)
    vms_clean = all(
        thing.drivers.vm._hit_recorder is None
        and thing.drivers.vm._execute_fast is fastpath.execute_fast
        for thing in deployment.things
    )
    return sim_clean and vms_clean


# ------------------------------------------------------- timed workloads
def _timed(scenario):
    started = time.perf_counter()
    result = run_scenario(scenario, workers=1)
    return time.perf_counter() - started, result


def reference_gate(things, duration_s, seed, rounds):
    """Min-of-N alternating A/B: pre-profile vs current, profile off."""
    scenario = SCENARIOS["smoke"].scaled(
        things=things, duration_s=duration_s, seed=seed)
    baseline_execute = pre_profile_execute()
    best = {"baseline": None, "disabled": None}
    with reference_engine():
        _timed(scenario)  # warm-up (translation/import costs)
        for _ in range(rounds):
            with patched("execute", baseline_execute):
                wall, _ = _timed(scenario)
            if best["baseline"] is None or wall < best["baseline"]:
                best["baseline"] = wall
            wall, _ = _timed(scenario)
            if best["disabled"] is None or wall < best["disabled"]:
                best["disabled"] = wall
    return best


def enabled_stats(scenario):
    """Profile the default scenario; report overhead + idle yield."""
    wall_off, result_off = _timed(scenario.scaled(profile=None))
    wall_on, result_on = _timed(scenario)
    merged = result_on.profile_document()
    report = idle_report(merged)
    unperturbed = (
        json.dumps(result_on.merged, sort_keys=True, default=str)
        == json.dumps(result_off.merged, sort_keys=True, default=str))
    digests = set()
    for workers in (1, 2):
        result = run_scenario(scenario, workers=workers)
        digests.add(profile_digest(result.profile_document()))
    return {
        "wall_off": wall_off,
        "wall_on": wall_on,
        "overhead": (wall_on - wall_off) / wall_off if wall_off else 0.0,
        "idle": report,
        "unperturbed": unperturbed,
        "deterministic": len(digests) == 1,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="fewer rounds / smaller workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_profile.json")
    args = parser.parse_args(argv)
    rounds = 3 if args.fast else 7
    things = 8 if args.fast else 40
    duration_s = 8.0 if args.fast else 40.0

    structural = disabled_fast_is_structurally_identical()
    print(f"disabled fast engine structurally identical to pre-profile: "
          f"{'yes' if structural else 'NO'}")

    best = reference_gate(things, duration_s, args.seed, rounds)
    disabled_overhead = (
        (best["disabled"] - best["baseline"]) / best["baseline"])
    print(f"reference-engine workload ({things} things, {duration_s:g}s "
          f"simulated, min of {rounds} alternating rounds):")
    print(f"  baseline (pre-profile execute): {best['baseline']:7.3f} s")
    print(f"  disabled (recorder check, off): {best['disabled']:7.3f} s  "
          f"overhead {disabled_overhead * 100:+.2f}%")

    scenario = SCENARIOS["default"].scaled(
        seed=args.seed, profile=DEFAULT_PROFILE,
        **({"duration_s": 8.0, "things": 8, "shard_size": 4}
           if args.fast else {}))
    enabled = enabled_stats(scenario)
    idle = enabled["idle"]
    print(f"default scenario, fully profiled "
          f"({scenario.things} things, {scenario.duration_s:g}s):")
    print(f"  enabled overhead:   {enabled['overhead'] * 100:+.2f}% "
          f"({enabled['wall_off']:.3f} s -> {enabled['wall_on']:.3f} s)")
    print(f"  idle fraction:      {idle['idle_fraction']:.1%}")
    print(f"  skippable fraction: {idle['skippable_fraction']:.1%} "
          f"(projected fast-forward speedup "
          f"{idle['projected_speedup']:.2f}x)")
    print(f"  workload unperturbed: "
          f"{'yes' if enabled['unperturbed'] else 'NO'}")
    print(f"  merged profile worker-count independent: "
          f"{'yes' if enabled['deterministic'] else 'NO'}")

    passed = (structural
              and disabled_overhead <= MAX_DISABLED_OVERHEAD
              and enabled["unperturbed"]
              and enabled["deterministic"])
    document = {
        "bench": "profile",
        "seed": args.seed,
        "reference_engine": {
            "things": things,
            "duration_s": duration_s,
            "rounds": rounds,
            "baseline_wall_s": round(best["baseline"], 4),
            "disabled_wall_s": round(best["disabled"], 4),
        },
        "disabled_overhead": round(disabled_overhead, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "disabled_fast_structural": structural,
        "enabled": {
            "scenario": scenario.name,
            "things": scenario.things,
            "duration_s": scenario.duration_s,
            "wall_off_s": round(enabled["wall_off"], 4),
            "wall_on_s": round(enabled["wall_on"], 4),
            "overhead": round(enabled["overhead"], 4),
        },
        "idle_fraction": round(idle["idle_fraction"], 4),
        "skippable_fraction": round(idle["skippable_fraction"], 4),
        "projected_speedup": round(idle["projected_speedup"], 4),
        "workload_unperturbed": enabled["unperturbed"],
        "merge_deterministic": enabled["deterministic"],
        "passed": passed,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not structural:
        print("FAIL: disabled fast engine is not the pre-profile code",
              file=sys.stderr)
        return 1
    if disabled_overhead > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-mode overhead "
              f"{disabled_overhead * 100:.2f}% exceeds the "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}% budget",
              file=sys.stderr)
        return 1
    if not enabled["unperturbed"]:
        print("FAIL: profiling perturbed the simulated workload",
              file=sys.stderr)
        return 1
    if not enabled["deterministic"]:
        print("FAIL: merged profile depends on worker count",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
