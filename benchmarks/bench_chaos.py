"""Engineering bench: reliability-layer overhead + chaos campaign cost.

Two questions, answered on the same machine in the same run:

1. What does the reliability layer (retransmission timers, duplicate
   caches, reply memoisation) cost on a *lossless* network, where none
   of it ever fires?  The gate: fleet events/s with reliability on must
   stay within 10% of the same scenario with it off.
2. How expensive is a chaos campaign (fault injector on the datagram
   path, drain window, invariant sweep) in wall-clock terms?

    PYTHONPATH=src python benchmarks/bench_chaos.py [--smoke] [--out PATH]

Writes ``BENCH_chaos.json``; exits non-zero when the overhead gate
fails, so CI can run it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos.campaign import CAMPAIGNS, run_campaign  # noqa: E402
from repro.fleet.runner import run_scenario  # noqa: E402
from repro.fleet.scenario import SCENARIOS  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Lossless fleet events/s with reliability on must stay >= this
#: fraction of the reliability-off run (i.e. overhead < 10%).
OVERHEAD_GATE = 0.90


def bench_reliability_overhead(*, things: int, duration_s: float,
                               seed: int, repeats: int = 3) -> dict:
    """A/B the identical lossless scenario with reliability on/off.

    One unmeasured warm-up run absorbs import and allocator start-up
    costs; each arm then keeps the best of *repeats* measured runs so
    the comparison reflects steady-state throughput, not cold caches.
    """
    base = SCENARIOS["metro"].scaled(
        name="chaos-ab", things=things, duration_s=duration_s, seed=seed,
    )
    run_scenario(base.scaled(things=min(things, 10), duration_s=5.0),
                 workers=1)  # warm-up, discarded
    points = {}
    for label, reliability in (("off", False), ("on", True)):
        best = None
        for _ in range(repeats):
            result = run_scenario(base.scaled(reliability=reliability),
                                  workers=1)
            if best is None or result.events_per_s > best.events_per_s:
                best = result
        points[label] = {
            "wall_s": round(best.wall_s, 4),
            "sim_events": best.sim_events,
            "events_per_s": round(best.events_per_s, 1),
        }
    off_rate = points["off"]["events_per_s"]
    on_rate = points["on"]["events_per_s"]
    ratio = round(on_rate / off_rate, 4) if off_rate else None
    return {
        "things": things,
        "duration_s": duration_s,
        "reliability_off": points["off"],
        "reliability_on": points["on"],
        "on_vs_off_ratio": ratio,
        "gate": OVERHEAD_GATE,
        "gate_passed": ratio is not None and ratio >= OVERHEAD_GATE,
    }


def bench_campaigns(seeds) -> list:
    """Wall-clock + verdict summary for every named campaign."""
    rows = []
    for name in sorted(CAMPAIGNS):
        campaign = CAMPAIGNS[name]
        for seed in seeds:
            started = time.perf_counter()
            # snapshot_check off: the overhead gate measures the
            # campaign itself, not the checkpoint round-trip.
            result = run_campaign(campaign, seed, snapshot_check=False)
            wall = time.perf_counter() - started
            verdict = result.verdict
            rows.append({
                "campaign": name,
                "seed": seed,
                "wall_s": round(wall, 4),
                "faults_injected": verdict["faults"]["injected"]["total"],
                "retransmits": verdict["recoveries"]["retransmits"],
                "read_completion": round(
                    verdict["recoveries"]["read_completion"], 4),
                "violations": verdict["violations"],
                "digest": verdict["digest"],
            })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small scenario, one campaign seed (CI)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write BENCH_chaos.json")
    args = parser.parse_args(argv)

    things = 20 if args.smoke else 50
    duration_s = 10.0 if args.smoke else 30.0
    seeds = (args.seed,) if args.smoke else (args.seed, args.seed + 1)

    overhead = bench_reliability_overhead(
        things=things, duration_s=duration_s, seed=args.seed,
    )
    print(f"reliability off: {overhead['reliability_off']['events_per_s']:>12,.0f} events/s")
    print(f"reliability on : {overhead['reliability_on']['events_per_s']:>12,.0f} events/s")
    print(f"on/off ratio   : {overhead['on_vs_off_ratio']} "
          f"(gate >= {OVERHEAD_GATE})")

    campaigns = bench_campaigns(seeds)
    for row in campaigns:
        print(f"campaign {row['campaign']:<8} seed={row['seed']} "
              f"wall={row['wall_s']:.3f}s faults={row['faults_injected']} "
              f"violations={row['violations']}")

    document = {
        "bench": "chaos",
        "smoke": args.smoke,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "reliability_overhead": overhead,
        "campaigns": campaigns,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not overhead["gate_passed"]:
        print(f"FATAL: reliability overhead gate failed "
              f"(ratio {overhead['on_vs_off_ratio']} < {OVERHEAD_GATE})",
              file=sys.stderr)
        return 1
    if any(row["violations"] for row in campaigns):
        print("FATAL: campaign reported invariant violations",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
