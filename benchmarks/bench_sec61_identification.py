"""§6.1 — hardware identification duration and energy.

The paper: one identification process takes 220-300 ms and costs
2.48-6.756 mJ; variance comes from the resistor values on the
peripheral boards.
"""

import pytest

from repro.analysis.identification import render_study, run_study


def test_sec61_identification(benchmark):
    study = benchmark.pedantic(run_study, kwargs=dict(repeats=3),
                               iterations=1, rounds=3)
    print()
    print(render_study(study))

    assert study.decode_failures == 0
    # Measured band overlaps the paper's 220-300 ms window.
    assert study.duration_s.minimum < 0.300
    assert study.duration_s.maximum > 0.220
    # Energy band overlaps 2.48-6.756 mJ.
    assert study.energy_j.minimum < 6.756e-3
    assert study.energy_j.maximum > 2.48e-3


def test_sec61_single_round_cost(benchmark):
    """Micro-view: the electrical cost of one fully-populated round."""
    import random

    from repro.drivers.catalog import make_peripheral_board
    from repro.hw.control_board import ControlBoard

    def one_round():
        rng = random.Random(3)
        board = ControlBoard(3, rng=rng)
        for key in ("tmp36", "bmp180", "id20la"):
            board.connect(make_peripheral_board(key, rng=rng))
        return board.run_identification()

    report = benchmark(one_round)
    print(f"\nfull board: {report.total_seconds * 1e3:.1f} ms, "
          f"{report.energy_joules * 1e3:.2f} mJ, "
          f"{len(report.identified())} identified")
    assert len(report.identified()) == 3
