#!/usr/bin/env python3
"""Smart building: a multi-hop sensor network with hot-plugged peripherals.

The motivating scenario of the paper's introduction: a building operator
customises deployed IoT devices by plugging in third-party sensors —
no reflashing, no manual driver installation.

Topology (a line of rooms; the manager is the border router):

    manager(0) -- thing1(1) -- thing2(2) -- thing3(3)
        |
    client(4)

* TMP36 and HIH-4030 boards are plugged into different Things at
  different times;
* the client watches unsolicited advertisements to maintain a live
  inventory;
* the client subscribes to a temperature *stream* (messages 12-14) and
  tracks the diurnal temperature drift;
* one sensor is unplugged mid-run, and the inventory reflects it.

Run:  python examples/smart_building.py
"""

from collections import defaultdict

from repro import (
    Client,
    Manager,
    Network,
    Registry,
    RngRegistry,
    Simulator,
    Thing,
    make_peripheral_board,
    populate_registry,
)
from repro.drivers import HIH4030_ID, TMP36_ID
from repro.peripherals import Environment
from repro.sim.kernel import ns_from_s


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    rng = RngRegistry(seed=7)
    registry = Registry()
    populate_registry(registry)

    manager = Manager(sim, network, 0, registry)
    things = [
        Thing(sim, network, node_id, rng=rng.fork(f"thing{node_id}"))
        for node_id in (1, 2, 3)
    ]
    client = Client(sim, network, 4)
    for a, b in ((0, 1), (1, 2), (2, 3), (0, 4)):
        network.connect(a, b)
    network.build_dodag(root=0)

    # A shared physical environment with a 4 degC diurnal swing.
    env = Environment(temperature_c=21.0, humidity_rh=48.0,
                      diurnal_temp_amplitude_c=4.0, clock=lambda: sim.now_s)

    # --- live inventory from unsolicited advertisements ------------------
    inventory = defaultdict(set)

    def on_advert(src, entries):
        inventory[str(src)] = {str(e.device_id) for e in entries}
        print(f"  [{sim.now_s:7.2f} s] advertisement from {src}: "
              f"{sorted(inventory[str(src)]) or ['(empty)']}")

    client.on_advertisement(on_advert)

    # --- hot-plug sensors over time --------------------------------------
    boards = {}

    def plug(thing_index: int, kind: str) -> None:
        board = make_peripheral_board(kind, env, rng=rng.stream("mfg"))
        channel = things[thing_index].plug(board)
        boards[(thing_index, kind)] = channel
        print(f"  [{sim.now_s:7.2f} s] plugged {kind} into thing{thing_index + 1} "
              f"channel {channel}")

    sim.schedule(ns_from_s(0.5), lambda: plug(0, "tmp36"))
    sim.schedule(ns_from_s(2.0), lambda: plug(1, "hih4030"))
    sim.schedule(ns_from_s(3.5), lambda: plug(2, "tmp36"))

    print("deploying sensors:")
    sim.run_for(ns_from_s(8.0))

    # --- discover every temperature sensor in the building ---------------
    print("\ndiscovering all TMP36 sensors (one multicast):")
    discovered = []
    client.discover(TMP36_ID, lambda res: discovered.extend(res))
    sim.run_for(ns_from_s(3.0))
    for item in discovered:
        print(f"  TMP36 on {item.thing}")
    assert len(discovered) == 2, "expected two temperature sensors"

    # --- stream temperature from the farthest Thing ----------------------
    samples = []

    def on_sample(result):
        samples.append(result.value)
        print(f"  [{sim.now_s:7.2f} s] stream sample: {result.value / 10:.1f} degC")

    print("\nstreaming temperature (2 s period, multicast group):")
    client.stream(discovered[-1].thing, TMP36_ID, on_sample, interval_ms=2000)
    sim.run_for(ns_from_s(11.0))
    assert len(samples) >= 4, "stream produced too few samples"

    # --- read humidity once ----------------------------------------------
    humidity = []
    found_hih = []
    client.discover(HIH4030_ID, lambda res: found_hih.extend(res))
    sim.run_for(ns_from_s(2.0))
    client.read(found_hih[0].thing, HIH4030_ID, lambda r: humidity.append(r))
    sim.run_for(ns_from_s(2.0))
    print(f"\nhumidity on {found_hih[0].thing}: "
          f"{humidity[0].value / 10:.1f} %RH (true {env.humidity_rh} %RH)")

    # --- unplug one sensor; the inventory updates -------------------------
    print("\nunplugging the thing1 TMP36:")
    things[0].unplug(boards[(0, "tmp36")])
    sim.run_for(ns_from_s(3.0))

    total_mj = sum(sum(t.meter.by_category().values()) for t in things) * 1e3
    print(f"\ntotal Thing-side energy this run: {total_mj:.2f} mJ")


if __name__ == "__main__":
    main()
