#!/usr/bin/env python3
"""RFID access control: sensor + actuator on one µPnP Thing.

A door controller built from off-the-shelf µPnP peripherals:

* an ID-20LA RFID reader (UART) — the driver is Listing 1 of the paper;
* an I2C relay board driving the door strike.

The access-control *policy* lives on the client (e.g. a gateway): it
reads card ids from the reader and writes the relay via the µPnP
write operation (messages 16/17).  Nothing on the Thing is
application-specific — both drivers came over the air.

Run:  python examples/rfid_access_control.py
"""

from repro import (
    Client,
    Manager,
    Network,
    Registry,
    RngRegistry,
    Simulator,
    Thing,
    make_peripheral_board,
    populate_registry,
)
from repro.drivers import ID20LA_ID, RELAY_ID
from repro.sim.kernel import ns_from_s

AUTHORIZED = {"0A1B2C3D4E", "BADD00123A"}
PRESENTED = ["0A1B2C3D4E", "DEADBEEF00", "BADD00123A"]


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    rng = RngRegistry(seed=99)
    registry = Registry()
    populate_registry(registry)

    door = Thing(sim, network, 0, rng=rng.fork("door"), label="door-unit")
    gateway = Client(sim, network, 1)
    manager = Manager(sim, network, 2, registry)
    for a, b in ((0, 1), (0, 2), (1, 2)):
        network.connect(a, b)
    network.build_dodag(root=2)

    reader_board = make_peripheral_board("id20la", rng=rng.stream("mfg"))
    relay_board = make_peripheral_board("relay", rng=rng.stream("mfg"))
    reader = reader_board.device
    relay = relay_board.device
    door.plug(reader_board)
    door.plug(relay_board)
    sim.run_for(ns_from_s(3.0))
    assert len(door.connected_peripherals()) == 2, "both peripherals online"
    print(f"door unit at {door.address} with "
          f"{sorted(str(d) for d in door.connected_peripherals().values())}")

    decisions = []

    def scan_next(index: int) -> None:
        if index >= len(PRESENTED):
            return
        card = PRESENTED[index]
        print(f"\n[{sim.now_s:6.2f} s] badge {card} presented")
        # Arm the reader driver, then wave the card over the coil.
        gateway.read(door.address, ID20LA_ID,
                     lambda result: on_card(index, card, result))
        sim.schedule(ns_from_s(0.3), lambda: reader.present_card(card))

    def on_card(index: int, presented: str, result) -> None:
        assert result is not None and result.is_array, "reader returned no frame"
        payload = bytes(result.payload).decode("ascii")
        card_id, checksum = payload[:10], payload[10:]
        print(f"[{sim.now_s:6.2f} s] driver returned id={card_id} csum={checksum}")
        allowed = card_id in AUTHORIZED
        decisions.append((card_id, allowed))
        if allowed:
            print(f"[{sim.now_s:6.2f} s] access GRANTED - energising strike")
            gateway.write(door.address, RELAY_ID, 1,
                          lambda status: on_unlocked(index, status))
        else:
            print(f"[{sim.now_s:6.2f} s] access DENIED")
            sim.schedule(ns_from_s(1.0), lambda: scan_next(index + 1))

    def on_unlocked(index: int, status) -> None:
        assert status == 0, "relay write failed"
        assert relay.state, "relay coil should be energised"
        print(f"[{sim.now_s:6.2f} s] door open (relay on); relocking in 2 s")

        def relock() -> None:
            gateway.write(door.address, RELAY_ID, 0,
                          lambda _s: scan_next(index + 1))

        sim.schedule(ns_from_s(2.0), relock)

    scan_next(0)
    sim.run_for(ns_from_s(30.0))

    print("\naudit log:")
    for card, allowed in decisions:
        print(f"  {card}: {'granted' if allowed else 'denied'}")
    assert decisions == [("0A1B2C3D4E", True), ("DEADBEEF00", False),
                         ("BADD00123A", True)]
    assert not relay.state and relay.switch_count == 4
    print(f"relay switched {relay.switch_count} times; door locked again.")


if __name__ == "__main__":
    main()
