#!/usr/bin/env python3
"""Time-travel bisection: what exactly does the burst fault window do?

The `burst` chaos campaign drops 80% of datagrams between t=10s and
t=18s.  Instead of rerunning the whole campaign and staring at
end-of-run totals, checkpoint the live shard *just before* the fault
window opens, then restore it twice and run both worlds to mid-burst:

* arm A keeps the loss storm armed (what actually happened);
* arm B disarms the fault injector after restore (the what-if world).

Both worlds share every byte of pre-window state — same heap, same RNG
streams, same in-flight requests — so the structural diff of their
summaries isolates exactly the state the storm perturbed, layer by
layer.  This is the workflow EXPERIMENTS.md describes; the same diff
works from the CLI on saved checkpoints:

    python -m repro.snapshot diff ckpt-before ckpt-after

Run:  PYTHONPATH=src python examples/chaos_bisect.py
"""

from repro.chaos.campaign import CAMPAIGNS
from repro.chaos.engine import ChaosEngine
from repro.fleet.deployment import ShardDeployment
from repro.sim.kernel import ns_from_s
from repro.snapshot.codec import dumps_state, loads_state
from repro.snapshot.diff import diff_lines
from repro.snapshot.state import shard_summary

SEED = 1
CHECKPOINT_S = 9.5   # just before the storm opens at t=10s
PROBE_S = 15.0       # mid-storm


def main() -> None:
    campaign = CAMPAIGNS["burst"]
    scenario = campaign.scenario.scaled(seed=SEED)
    spec = scenario.shards()[0]

    deployment = ShardDeployment(spec)
    plan = campaign.build_plan(
        spec, scenario.duration_s + campaign.grace_s)
    engine = ChaosEngine(
        deployment.sim, deployment.network, deployment.things,
        deployment.rng.fork("chaos").stream("inject"),
    )
    engine.arm(plan)
    deployment.start()
    deployment.sim.run_until(ns_from_s(CHECKPOINT_S))
    blob = dumps_state((deployment, engine))
    print(f"checkpointed shard at t={CHECKPOINT_S}s "
          f"({len(blob):,} bytes), storm opens at t=10s")

    # Arm A: the storm happens (this is the campaign as-run).
    storm_dep, storm_eng = loads_state(blob)
    storm_dep.sim.run_until(ns_from_s(PROBE_S))
    del storm_eng

    # Arm B: same world, but the fault injector is disarmed before the
    # window opens — clean air for the same traffic.
    calm_dep, calm_eng = loads_state(blob)
    calm_eng.disarm()
    calm_dep.sim.run_until(ns_from_s(PROBE_S))

    lines = diff_lines(shard_summary(calm_dep), shard_summary(storm_dep))
    interesting = [line for line in lines
                   if not line.startswith(("~ sim.", "- sim.", "+ sim."))]
    print(f"\nmid-storm (t={PROBE_S}s) vs the storm-free what-if — "
          f"{len(lines)} divergent paths, non-kernel ones:")
    for line in interesting:
        print(f"  {line}")


if __name__ == "__main__":
    main()
