#!/usr/bin/env python3
"""Quickstart: plug a temperature sensor into a µPnP Thing and read it.

Walks the complete plug-and-play pipeline of the paper:

1. a TMP36 peripheral board is plugged into a Thing's control board;
2. the hardware identifies it from its resistor-encoded 32-bit id;
3. the Thing joins the peripheral's multicast group and fetches the
   driver over the air from the µPnP manager;
4. a client discovers the peripheral via IPv6 multicast and reads the
   temperature over the network.

Run:  python examples/quickstart.py
"""

from repro import (
    Client,
    Manager,
    Network,
    Registry,
    RngRegistry,
    Simulator,
    Thing,
    make_peripheral_board,
    populate_registry,
)
from repro.drivers import TMP36_ID
from repro.peripherals import Environment
from repro.sim.kernel import ns_from_s


def main() -> None:
    # --- the simulated world -------------------------------------------
    sim = Simulator()
    network = Network(sim)           # one IPv6 /48, RPL + SMRF multicast
    rng = RngRegistry(seed=2015)

    # The global address space already knows the paper's four prototype
    # peripherals; their drivers are uploaded and deployable.
    registry = Registry()
    populate_registry(registry)

    # --- three nodes: a Thing, a client, and the driver manager ---------
    thing = Thing(sim, network, node_id=0, rng=rng.fork("thing"))
    client = Client(sim, network, node_id=1)
    manager = Manager(sim, network, node_id=2, registry=registry)
    network.connect(0, 1)
    network.connect(0, 2)
    network.connect(1, 2)
    network.build_dodag(root=2)

    # --- plug in the sensor ---------------------------------------------
    env = Environment(temperature_c=22.5)
    board = make_peripheral_board("tmp36", env, rng=rng.stream("mfg"))
    print(f"plugging in {board.label} (id {board.device_id}) ...")
    thing.plug(board)

    sim.run_for(ns_from_s(3.0))
    print("\nplug-in pipeline on the Thing:")
    for event in thing.events:
        device = f" {event.device_id}" if event.device_id else ""
        print(f"  {event.time_s * 1e3:9.2f} ms  {event.kind}{device}  {event.detail}")

    # --- discover and read over the network ------------------------------
    def on_discovered(results):
        assert results, "discovery found nothing"
        found = results[0]
        print(f"\nclient discovered {found.device_id} on {found.thing}")
        client.read(found.thing, TMP36_ID, on_read)

    def on_read(result):
        assert result is not None and result.ok, "read failed"
        print(f"client read: {result.value / 10:.1f} degC "
              f"(environment is {env.temperature_c} degC)")

    client.discover(TMP36_ID, on_discovered)
    sim.run_for(ns_from_s(10.0))
    print(f"\nsimulated time elapsed: {sim.now_s:.2f} s")
    print(f"thing energy by source: "
          f"{ {k: f'{v * 1e3:.2f} mJ' for k, v in thing.meter.by_category().items()} }")


if __name__ == "__main__":
    main()
