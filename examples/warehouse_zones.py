#!/usr/bin/env python3
"""Warehouse zones: location-aware discovery + an SPI thermocouple.

Demonstrates two §9 future-work extensions this reproduction implements:

* **location-aware multicast groups** — Things are assigned physical
  zones; a client can discover "temperature sensors *in the cold
  store*" with a single zone-scoped multicast, without touching the
  Things in other zones;
* **structured vendor ids** — the thermocouple's address comes from the
  PCI/USB-style vendor+class+product namespace.

The cold-store probe is a MAX6675 K-type thermocouple on SPI — the
fourth interconnect of Table 1.

Run:  python examples/warehouse_zones.py
"""

from repro import (
    BusKind,
    Client,
    Manager,
    Network,
    PeripheralBoard,
    Registry,
    RngRegistry,
    Simulator,
    Thing,
    make_peripheral_board,
    populate_registry,
)
from repro.core.namespace import DeviceClass, VendorRegistry
from repro.drivers import CATALOG, MAX6675_ID, TMP36_ID
from repro.peripherals import Environment
from repro.sim.kernel import ns_from_s

ZONE_COLD_STORE = 1
ZONE_LOADING_DOCK = 2


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    rng = RngRegistry(seed=77)
    registry = Registry()
    populate_registry(registry)

    # Two zones, one Thing each; the manager is the border router.
    cold_store = Thing(sim, network, 0, rng=rng.fork("cold"),
                       zone=ZONE_COLD_STORE, label="cold-store")
    loading_dock = Thing(sim, network, 1, rng=rng.fork("dock"),
                         zone=ZONE_LOADING_DOCK, label="loading-dock")
    client = Client(sim, network, 2)
    manager = Manager(sim, network, 3, registry)
    for a in range(4):
        for b in range(a + 1, 4):
            network.connect(a, b)
    network.build_dodag(root=3)

    # Structured namespace: show where the thermocouple's id comes from.
    vendors = VendorRegistry()
    vendor = vendors.register_vendor("Maxim Integrated")
    print(f"thermocouple catalogue id {MAX6675_ID} "
          f"(vendor registry would mint e.g. "
          f"{vendors.allocate_product(vendor, DeviceClass.TEMPERATURE)})")

    cold_env = Environment(temperature_c=-18.5 + 20)  # MAX6675 reads >= 0 C
    dock_env = Environment(temperature_c=24.0)
    cold_store.plug(make_peripheral_board("max6675", cold_env,
                                          rng=rng.stream("m1")))
    cold_store.plug(make_peripheral_board("tmp36", cold_env,
                                          rng=rng.stream("m2")))
    loading_dock.plug(make_peripheral_board("tmp36", dock_env,
                                            rng=rng.stream("m3")))
    sim.run_for(ns_from_s(5.0))

    # --- zone-scoped discovery ---------------------------------------------
    print("\ndiscovering TMP36 sensors per zone:")
    per_zone = {}

    def report(zone, results):
        per_zone[zone] = [str(r.thing) for r in results]
        print(f"  zone {zone}: {per_zone[zone]}")

    client.discover(TMP36_ID, lambda r: report(ZONE_COLD_STORE, r),
                    zone=ZONE_COLD_STORE)
    sim.run_for(ns_from_s(2.0))
    client.discover(TMP36_ID, lambda r: report(ZONE_LOADING_DOCK, r),
                    zone=ZONE_LOADING_DOCK)
    sim.run_for(ns_from_s(2.0))
    assert per_zone[ZONE_COLD_STORE] == [str(cold_store.address)]
    assert per_zone[ZONE_LOADING_DOCK] == [str(loading_dock.address)]

    # --- read the cold-store thermocouple over SPI ---------------------------
    readings = []
    client.read(cold_store.address, MAX6675_ID, readings.append)
    sim.run_for(ns_from_s(2.0))
    print(f"\ncold-store thermocouple: {readings[0].value / 10:.1f} degC "
          f"(true {cold_env.temperature_c} degC)")
    assert abs(readings[0].value / 10 - cold_env.temperature_c) < 0.3

    # Zone with no sensors stays silent.
    empty = []
    client.discover(TMP36_ID, empty.extend, zone=42)
    sim.run_for(ns_from_s(2.0))
    assert empty == []
    print("zone 42 (no sensors): no responses, as expected")


if __name__ == "__main__":
    main()
