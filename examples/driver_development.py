#!/usr/bin/env python3
"""Driver development workflow: from datasheet to over-the-air deployment.

The third-party-developer story of §3.3 and §4:

1. request a *provisional* address in the global µPnP address space;
2. the online tool emits the resistor set that encodes the new id;
3. write a driver in the µPnP DSL and upload it — validation promotes
   the address to *permanent*;
4. manufacture a peripheral board with those resistors; plug it into a
   stock Thing: it identifies, fetches the brand-new driver over the
   air, and serves reads — no Thing-side code was touched.

The example peripheral is a soil-moisture probe (an analog device we
invent, as a third party would).

Run:  python examples/driver_development.py
"""

from dataclasses import dataclass

from repro import (
    BusKind,
    Client,
    Manager,
    Network,
    PeripheralBoard,
    Registry,
    RngRegistry,
    Simulator,
    Thing,
)
from repro.dsl import disassemble
from repro.sim.kernel import ns_from_s

SOIL_DRIVER = """\
# uPnP driver: capacitive soil moisture probe (ADC)
# Returns volumetric water content in tenths of a percent.
import adc;

bool busy;

event init():
    signal adc.init(ADC_RES_10BIT, ADC_REF_VDD);
    busy = false;

event destroy():
    signal adc.reset();

event read():
    if !busy:
        busy = true;
        signal adc.read();

event data(uint16_t counts):
    busy = false;
    # dry ~ 2.8 V, saturated ~ 1.2 V: vwc% = (2800 - mV) / 16
    return (2800 - counts * 3300 / 1023) * 10 / 16;

error invalidConfiguration():
    signal this.destroy();

error timeOut():
    busy = false;
"""


@dataclass
class SoilProbe:
    """Behavioural model of the invented probe (dry->wet: 2.8V->1.2V)."""

    moisture_vwc: float = 35.0  # percent volumetric water content

    def voltage_v(self) -> float:
        return max(1.2, min(2.8, 2.8 - self.moisture_vwc * 0.016))


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    rng = RngRegistry(seed=1234)
    registry = Registry()

    # --- 1. request a provisional address --------------------------------
    record = registry.request_address(
        name="SoilSense SM-200",
        organization="Example Sensing Co.",
        email="dev@example-sensing.test",
        url="https://example-sensing.test/sm200",
        bus=BusKind.ADC,
        label="SM-200 soil moisture",
    )
    print(f"allocated provisional address: {record.device_id} "
          f"({record.status.value})")

    # --- 2. the online tool: id -> resistor set ---------------------------
    resistors = registry.resistor_set_for(record.device_id)
    print("resistor set from the online tool (E96, 0.5%):")
    for index, ohms in enumerate(resistors, start=1):
        print(f"  R{index} = {ohms / 1000:.2f} kOhm")

    # --- 3. upload the driver; the address becomes permanent --------------
    image = registry.upload_driver(record.device_id, SOIL_DRIVER)
    record = registry.record(record.device_id)
    print(f"\ndriver validated and stored ({image.image_size} bytes); "
          f"address is now {record.status.value}")
    print("\ncompiled driver (excerpt):")
    print("\n".join(disassemble(image).splitlines()[:12]))

    # --- 4. plug the new peripheral into a stock Thing ---------------------
    thing = Thing(sim, network, 0, rng=rng.fork("thing"))
    client = Client(sim, network, 1)
    manager = Manager(sim, network, 2, registry)
    for a, b in ((0, 1), (0, 2), (1, 2)):
        network.connect(a, b)
    network.build_dodag(root=2)

    probe = SoilProbe(moisture_vwc=41.5)
    board = PeripheralBoard.manufacture(
        record.device_id, BusKind.ADC, device=probe,
        label="SM-200", rng=rng.stream("mfg"),
    )
    thing.plug(board)
    sim.run_for(ns_from_s(3.0))
    installed = [e for e in thing.events if e.kind == "driver-installed"]
    assert installed, "OTA installation did not happen"
    print(f"\nThing fetched the driver over the air "
          f"({installed[0].detail}) and activated it")

    readings = []
    found = []
    client.discover(record.device_id, lambda res: found.extend(res))
    sim.run_for(ns_from_s(2.0))
    client.read(found[0].thing, record.device_id,
                lambda r: readings.append(r))
    sim.run_for(ns_from_s(2.0))
    print(f"client read soil moisture: {readings[0].value / 10:.1f} %VWC "
          f"(true {probe.moisture_vwc} %VWC)")


if __name__ == "__main__":
    main()
