from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "uPnP: plug-and-play peripherals for the Internet of Things "
        "(EuroSys'15) - full-system reproduction"
    ),
    author="uPnP reproduction authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.drivers": ["upnp/*.udrv", "c/*.c"]},
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "numpy"],
    },
)
